//! Point-in-time registry snapshots and their exporters.
//!
//! Both renderers emit a **stable field order**: counters, gauges, and
//! histograms sort by metric name (they come out of `BTreeMap`s), span
//! trees render in creation order, and every struct field renders in a
//! fixed position. Two runs that record the same values therefore render
//! byte-identical output — the property the determinism suite asserts.

/// A rendered-friendly copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one extra trailing slot is the
    /// `+Inf` overflow bucket.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// One node of the aggregated span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// How many times this span closed.
    pub calls: u64,
    /// Total time spent inside, nanoseconds (children included).
    pub total_ns: u64,
    /// Child spans, in creation order.
    pub children: Vec<SpanSnapshot>,
}

/// A point-in-time copy of an [`Obs`](crate::Obs) registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Root spans, in creation order.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// True when nothing was recorded (always true for a disabled handle).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Render as a JSON object with the fixed top-level keys `counters`,
    /// `gauges`, `histograms`, and `spans` (all always present), stable
    /// member order, and a trailing newline.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": ");
            out.push_str(&json_f64(*value));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": {\"count\": ");
            out.push_str(&h.count.to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&json_f64(h.sum));
            out.push_str(", \"buckets\": [");
            for (b, &count) in h.bucket_counts.iter().enumerate() {
                if b > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"le\": ");
                match h.bounds.get(b) {
                    Some(&bound) => out.push_str(&json_f64(bound)),
                    None => out.push_str("\"+Inf\""),
                }
                out.push_str(", \"count\": ");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            json_span(&mut out, span, 2);
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render as indented human-readable text: the span tree first, then
    /// counters, gauges, and histograms, one per line.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("spans:\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for span in &self.spans {
            text_span(&mut out, span, 1);
        }
        out.push_str("counters:\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
        out.push_str("gauges:\n");
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name} = {}\n", json_f64(*value)));
        }
        out.push_str("histograms:\n");
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name}: count={} sum={}",
                h.count,
                json_f64(h.sum)
            ));
            for (b, &count) in h.bucket_counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                match h.bounds.get(b) {
                    Some(&bound) => out.push_str(&format!(" le{}={count}", json_f64(bound))),
                    None => out.push_str(&format!(" le+Inf={count}")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn json_span(out: &mut String, span: &SpanSnapshot, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push_str("{\"name\": ");
    json_string(out, &span.name);
    out.push_str(&format!(
        ", \"calls\": {}, \"total_ns\": {}, \"children\": [",
        span.calls, span.total_ns
    ));
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        json_span(out, child, depth + 1);
    }
    if !span.children.is_empty() {
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("]}");
}

fn text_span(out: &mut String, span: &SpanSnapshot, depth: usize) {
    let pad = "  ".repeat(depth);
    let label = format!("{pad}{}", span.name);
    out.push_str(&format!(
        "{label:<40} calls={:<6} total={}\n",
        span.calls,
        fmt_ns(span.total_ns)
    ));
    for child in &span.children {
        text_span(out, child, depth + 1);
    }
}

/// Human duration: picks ns/µs/ms/s by magnitude. Pure function of the
/// input, so logical-clock output stays byte-stable.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A finite f64 as a JSON number (Rust's shortest-roundtrip `Display`,
/// which is deterministic); non-finite values render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, ManualClock, Obs};
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _root = obs.span("run");
            let step = obs.span("step");
            clock.advance_us(1500);
            drop(step);
        }
        obs.incr("pages");
        obs.add("pages", 2);
        obs.gauge("threads", 4.0);
        obs.observe_in("frac", &[0.5, 1.0], 0.25);
        obs.snapshot()
    }

    #[test]
    fn empty_snapshot_renders_all_top_level_keys() {
        let json = Snapshot::default().render_json();
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn json_is_stable_across_renders() {
        let snap = sample();
        assert_eq!(snap.render_json(), snap.render_json());
        assert_eq!(snap.render_text(), snap.render_text());
    }

    #[test]
    fn json_contains_recorded_values() {
        let json = sample().render_json();
        assert!(json.contains("\"pages\": 3"), "{json}");
        assert!(json.contains("\"threads\": 4"), "{json}");
        assert!(json.contains("\"total_ns\": 1500000"), "{json}");
        assert!(json.contains("\"+Inf\""), "{json}");
    }

    #[test]
    fn text_tree_indents_children() {
        let text = sample().render_text();
        assert!(text.contains("  run"), "{text}");
        assert!(text.contains("    step"), "{text}");
        assert!(text.contains("total=1.5ms"), "{text}");
        assert!(text.contains("pages = 3"), "{text}");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
