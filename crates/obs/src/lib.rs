//! # cafc-obs
//!
//! A dependency-free observability layer for the CAFC pipeline: a metrics
//! registry (counters, gauges, fixed-bucket histograms), hierarchical span
//! timing, and stable-order text/JSON exporters.
//!
//! Two properties drive the design:
//!
//! * **Near-zero cost when disabled.** The [`Obs`] handle is an
//!   `Option<Arc<…>>`; [`Obs::disabled`] carries `None` and every
//!   instrumentation call returns immediately without reading a clock or
//!   taking a lock. Library code threads `&Obs` unconditionally and pays
//!   (almost) nothing when no sink is installed.
//! * **Deterministic snapshots under test.** Time comes from a pluggable
//!   [`Clock`]. Production uses [`MonotonicClock`] (`std::time::Instant`);
//!   tests install a [`ManualClock`] — a logical clock that only moves when
//!   the test advances it — so every duration is a pure function of the
//!   program's structure (usually zero) and rendered snapshots are
//!   byte-stable across runs *and across [`ExecPolicy`] thread counts*.
//!   All maps are `BTreeMap`s, so rendered field order never depends on
//!   insertion order.
//!
//! Concurrency contract: counters, gauges, and histograms may be touched
//! from any thread (worker closures included) — they aggregate
//! commutatively. **Spans must only be opened and closed on the
//! orchestrating thread** (between `par_*` calls): there is a single span
//! stack, and interleaved opens from multiple threads would produce a
//! nonsense tree. Every instrumented crate in this workspace follows that
//! rule.
//!
//! [`ExecPolicy`]: https://docs.rs/cafc-exec

#![warn(missing_docs)]

mod snapshot;

pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A monotonic time source reporting nanoseconds since an arbitrary origin.
///
/// Implementations must be cheap: the pipeline reads the clock around every
/// instrumented stage (and, for ingestion, around every page phase).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// Production clock: wall-clock-independent monotonic time from
/// [`std::time::Instant`], measured from the moment the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Test clock: a logical clock that advances **only** when told to.
///
/// `now_ns` never auto-increments — an auto-ticking clock read from
/// parallel workers would make durations depend on the thread schedule and
/// break snapshot determinism. With a manual clock, any span the test does
/// not straddle with [`ManualClock::advance_ns`] has duration exactly 0,
/// identically under every `ExecPolicy`.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A logical clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::SeqCst);
    }

    /// Advance the clock by `delta` microseconds.
    pub fn advance_us(&self, delta: u64) {
        self.advance_ns(delta.saturating_mul(1_000));
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Default histogram bucket upper bounds for duration metrics, in
/// microseconds (spanning 10 µs … 1 s; slower observations land in the
/// implicit `+Inf` overflow bucket).
pub const DEFAULT_DURATION_BUCKETS_US: [f64; 11] = [
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
];

/// Bucket upper bounds for fraction-valued metrics (0‥1), e.g. the k-means
/// per-iteration moved fraction.
pub const FRACTION_BUCKETS: [f64; 8] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Observability configuration.
///
/// Construct with [`ObsConfig::default`]/[`ObsConfig::new`] plus the
/// chainable `with_*` setters; the struct is `#[non_exhaustive]` so future
/// fields are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ObsConfig {
    /// Bucket upper bounds (µs) used by [`Obs::observe`] and
    /// [`Obs::observe_since`] for duration histograms.
    pub duration_buckets_us: Vec<f64>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            duration_buckets_us: DEFAULT_DURATION_BUCKETS_US.to_vec(),
        }
    }
}

impl ObsConfig {
    /// The default configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the duration-histogram bucket upper bounds (µs).
    pub fn with_duration_buckets_us(mut self, bounds: Vec<f64>) -> Self {
        self.duration_buckets_us = bounds;
        self
    }
}

/// A fixed-bucket histogram: cumulative-style counts per upper bound plus
/// an implicit `+Inf` overflow bucket, total count, and value sum.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the `+Inf` overflow bucket.
    bucket_counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            bucket_counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.bucket_counts[slot] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            bucket_counts: self.bucket_counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }
}

/// One node in the aggregated span tree: spans are keyed by
/// `(parent, name)`, so repeated entries (e.g. `kmeans.assign` once per
/// iteration) accumulate into a single node.
#[derive(Debug)]
struct SpanData {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Span arena; `roots` and `SpanData::children` index into it.
    spans: Vec<SpanData>,
    roots: Vec<usize>,
    /// Stack of currently-open spans (orchestrating thread only).
    stack: Vec<usize>,
}

impl State {
    fn find_or_create_span(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.spans[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&c| self.spans[c].name == name) {
            return idx;
        }
        let idx = self.spans.len();
        self.spans.push(SpanData {
            name: name.to_string(),
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
        });
        match parent {
            Some(p) => self.spans[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

struct Inner {
    clock: Arc<dyn Clock>,
    duration_buckets_us: Vec<f64>,
    state: Mutex<State>,
}

impl Inner {
    /// Lock the registry state, recovering from poisoning: metrics must
    /// never compound a worker panic with a second one.
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The observability handle threaded through the pipeline.
///
/// Cheap to clone (an `Option<Arc<…>>`). [`Obs::disabled`] — the default —
/// makes every method a no-op; see the crate docs for the cost and
/// concurrency contracts.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// A no-op handle: every instrumentation call returns immediately.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle on the production [`MonotonicClock`] with the
    /// default [`ObsConfig`].
    pub fn enabled() -> Obs {
        Obs::new(ObsConfig::default(), Arc::new(MonotonicClock::new()))
    }

    /// An enabled handle on an explicit clock (default config). Tests pass
    /// an `Arc<ManualClock>` here and keep a clone to advance it.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Obs {
        Obs::new(ObsConfig::default(), clock)
    }

    /// An enabled handle with explicit configuration and clock.
    pub fn new(config: ObsConfig, clock: Arc<dyn Clock>) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                clock,
                duration_buckets_us: config.duration_buckets_us,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether a sink is installed. Use to skip *preparing* instrumentation
    /// inputs (formatting metric names, cloning handles into workers) — the
    /// recording calls already self-gate.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increment counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        let slot = st.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Record `value` into histogram `name` using the configured duration
    /// buckets (µs). Bucket bounds are fixed at the histogram's first
    /// observation.
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let bounds = inner.duration_buckets_us.clone();
        let mut st = inner.lock();
        st.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&bounds))
            .observe(value);
    }

    /// Record `value` into histogram `name` with explicit bucket upper
    /// bounds (used for non-duration distributions, e.g.
    /// [`FRACTION_BUCKETS`]). Bounds are fixed at first observation.
    pub fn observe_in(&self, name: &str, bounds: &[f64], value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        st.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Read the clock for a later [`Obs::observe_since`]; `None` when
    /// disabled (no clock read at all).
    pub fn start_timer(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.clock.now_ns())
    }

    /// Record the elapsed time since `start` (from [`Obs::start_timer`])
    /// into duration histogram `name`, in microseconds.
    pub fn observe_since(&self, name: &str, start: Option<u64>) {
        let (Some(inner), Some(start)) = (&self.inner, start) else {
            return;
        };
        let elapsed_ns = inner.clock.now_ns().saturating_sub(start);
        self.observe(name, elapsed_ns as f64 / 1_000.0);
    }

    /// Open a span named `name`, nested under the currently-open span.
    ///
    /// The span closes (and its duration accrues) when the returned guard
    /// drops. Spans aggregate by `(parent, name)`: re-entering the same
    /// name under the same parent bumps `calls` on one node. Orchestrating
    /// thread only — see the crate docs.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { open: None };
        };
        let start = inner.clock.now_ns();
        let mut st = inner.lock();
        let parent = st.stack.last().copied();
        let idx = st.find_or_create_span(parent, name);
        st.stack.push(idx);
        SpanGuard {
            open: Some((Arc::clone(inner), idx, start)),
        }
    }

    /// Run `f` inside a span named `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Snapshot the registry: counters/gauges/histograms in name order and
    /// the span tree in creation order. Empty when disabled.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let st = inner.lock();
        Snapshot {
            counters: st.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: st.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: st
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            spans: st
                .roots
                .iter()
                .map(|&r| span_snapshot(&st.spans, r))
                .collect(),
        }
    }
}

fn span_snapshot(spans: &[SpanData], idx: usize) -> SpanSnapshot {
    let s = &spans[idx];
    SpanSnapshot {
        name: s.name.clone(),
        calls: s.calls,
        total_ns: s.total_ns,
        children: s
            .children
            .iter()
            .map(|&c| span_snapshot(spans, c))
            .collect(),
    }
}

/// Guard returned by [`Obs::span`]; closing happens on drop.
#[must_use = "a span measures the scope of its guard; dropping it immediately closes the span"]
pub struct SpanGuard {
    open: Option<(Arc<Inner>, usize, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, idx, start)) = self.open.take() {
            let elapsed = inner.clock.now_ns().saturating_sub(start);
            let mut st = inner.lock();
            let span = &mut st.spans[idx];
            span.calls += 1;
            span.total_ns = span.total_ns.saturating_add(elapsed);
            // Pop back to (and including) our own frame; mis-nested guards
            // dropped out of order degrade gracefully instead of panicking.
            while let Some(top) = st.stack.pop() {
                if top == idx {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.incr("a");
        obs.gauge("g", 1.0);
        obs.observe("h", 2.0);
        assert_eq!(obs.start_timer(), None);
        obs.observe_since("h", None);
        let _ = obs.span("root");
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_and_gauges() {
        let obs = Obs::enabled();
        obs.incr("b");
        obs.incr("a");
        obs.add("a", 4);
        obs.gauge("g", 2.5);
        obs.gauge("g", 3.5);
        let snap = obs.snapshot();
        // BTreeMap order, not insertion order.
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 5), ("b".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".to_string(), 3.5)]);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let obs = Obs::enabled();
        for v in [5.0, 10.0, 11.0, 1e9] {
            obs.observe_in("h", &[10.0, 100.0], v);
        }
        let snap = obs.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "h");
        assert_eq!(h.bounds, vec![10.0, 100.0]);
        assert_eq!(h.bucket_counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 5.0 + 10.0 + 11.0 + 1e9);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _root = obs.span("root");
            for _ in 0..3 {
                let inner = obs.span("step");
                clock.advance_us(10);
                drop(inner);
            }
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let root = &snap.spans[0];
        assert_eq!((root.name.as_str(), root.calls), ("root", 1));
        assert_eq!(root.total_ns, 30_000);
        assert_eq!(root.children.len(), 1, "same-name spans aggregate");
        let step = &root.children[0];
        assert_eq!(
            (step.name.as_str(), step.calls, step.total_ns),
            ("step", 3, 30_000)
        );
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0, "no auto-tick");
        clock.advance_ns(7);
        assert_eq!(clock.now_ns(), 7);
    }

    #[test]
    fn timer_measures_manual_time() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let t0 = obs.start_timer();
        clock.advance_us(250);
        obs.observe_since("d", t0);
        let snap = obs.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 250.0);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn concurrent_counters_sum_exactly() {
        let obs = Obs::enabled();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        obs.incr("n");
                    }
                });
            }
        });
        assert_eq!(obs.snapshot().counters, vec![("n".to_string(), 8000)]);
    }

    #[test]
    fn config_setter_applies() {
        let config = ObsConfig::new().with_duration_buckets_us(vec![1.0]);
        let obs = Obs::new(config, Arc::new(ManualClock::new()));
        obs.observe("h", 2.0);
        let snap = obs.snapshot();
        assert_eq!(snap.histograms[0].1.bounds, vec![1.0]);
        assert_eq!(snap.histograms[0].1.bucket_counts, vec![0, 1]);
    }
}
