//! `cafc-check` property suite for the sparse vector-space math: cosine
//! symmetry and range (Equation 2), norm and centroid identities on
//! generated vectors (duplicate term ids, negative and zero weights
//! included). Runs offline on every commit.

use cafc_check::corpus::sparse_entries;
use cafc_check::gen::{pairs, Gen};
use cafc_check::{check, require, require_close, CheckConfig};
use cafc_text::TermId;
use cafc_vsm::SparseVector;

fn vector() -> Gen<SparseVector> {
    sparse_entries(32, 12).map(|entries| {
        SparseVector::from_entries(
            entries
                .iter()
                .map(|&(t, w)| (TermId(t as u32), w))
                .collect(),
        )
    })
}

/// Cosine is exactly symmetric: the merge-join accumulates products in
/// term-id order for both argument orders.
#[test]
fn cosine_symmetric() {
    check!(CheckConfig::new(), pairs(&vector(), &vector()), |(a, b)| {
        let lr = a.cosine(b);
        let rl = b.cosine(a);
        require!(lr == rl, "cosine asymmetric: {lr} != {rl}");
        Ok(())
    });
}

/// Cosine is clamped into [0, 1] and always finite — even with negative
/// weights, empty vectors, or duplicate-id inputs.
#[test]
fn cosine_bounded() {
    check!(CheckConfig::new(), pairs(&vector(), &vector()), |(a, b)| {
        let c = a.cosine(b);
        require!(c.is_finite(), "cosine not finite: {c}");
        require!((0.0..=1.0).contains(&c), "cosine out of range: {c}");
        Ok(())
    });
}

/// A vector with positive norm is maximally similar to itself.
#[test]
fn self_cosine_is_one() {
    check!(CheckConfig::new(), vector(), |v: &SparseVector| {
        if v.norm() > 0.0 {
            require_close!(v.cosine(v), 1.0, 1e-12);
        } else {
            require_close!(v.cosine(v), 0.0, 1e-12);
        }
        Ok(())
    });
}

/// Norms are non-negative and finite, and scale linearly:
/// `‖c·v‖ = |c|·‖v‖`.
#[test]
fn norm_nonnegative_and_homogeneous() {
    check!(CheckConfig::new(), vector(), |v: &SparseVector| {
        let n = v.norm();
        require!(n.is_finite() && n >= 0.0, "norm {n}");
        let scaled = v.scale(-2.5);
        require_close!(scaled.norm(), 2.5 * n, 1e-9);
        Ok(())
    });
}

/// The centroid of a single vector is that vector.
#[test]
fn singleton_centroid_is_identity() {
    check!(CheckConfig::new(), vector(), |v: &SparseVector| {
        let c = SparseVector::centroid([v]);
        require!(
            c.entries().len() == v.entries().len(),
            "centroid changed support: {} != {}",
            c.entries().len(),
            v.entries().len()
        );
        for (&(ct, cw), &(vt, vw)) in c.entries().iter().zip(v.entries()) {
            require!(ct == vt, "term ids diverged");
            require_close!(cw, vw, 1e-12);
        }
        Ok(())
    });
}

/// Cosine against the zero/empty vector is zero, never NaN.
#[test]
fn empty_vector_cosine_is_zero() {
    check!(CheckConfig::new(), vector(), |v: &SparseVector| {
        let empty = SparseVector::empty();
        require_close!(v.cosine(&empty), 0.0, 0.0);
        require_close!(empty.cosine(v), 0.0, 0.0);
        Ok(())
    });
}
