//! Property-based tests for vector-space invariants.

use cafc_text::TermId;
use cafc_vsm::{CountsBuilder, DocumentFrequencies, SparseVector};
use proptest::prelude::*;

fn arb_vector() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..64, -10.0f64..10.0), 0..20).prop_map(|entries| {
        SparseVector::from_entries(entries.into_iter().map(|(t, w)| (TermId(t), w)).collect())
    })
}

fn arb_nonneg_vector() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..64, 0.01f64..10.0), 0..20).prop_map(|entries| {
        SparseVector::from_entries(entries.into_iter().map(|(t, w)| (TermId(t), w)).collect())
    })
}

proptest! {
    /// Entries are strictly sorted with no zero weights — the structural
    /// invariant every operation relies on.
    #[test]
    fn invariant_sorted_nonzero(v in arb_vector()) {
        for w in v.entries().windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(v.entries().iter().all(|&(_, w)| w != 0.0 && w.is_finite()));
    }

    /// Cosine is symmetric and within [0, 1] for non-negative vectors
    /// (TF-IDF weights are always non-negative).
    #[test]
    fn cosine_symmetric_bounded(a in arb_nonneg_vector(), b in arb_nonneg_vector()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// cos(v, v) = 1 for non-empty vectors.
    #[test]
    fn cosine_self_is_one(v in arb_nonneg_vector()) {
        if !v.is_empty() {
            prop_assert!((v.cosine(&v) - 1.0).abs() < 1e-9);
        }
    }

    /// Dot product distributes over addition: (a+b)·c = a·c + b·c.
    #[test]
    fn dot_distributes(a in arb_vector(), b in arb_vector(), c in arb_vector()) {
        let lhs = a.add(&b).dot(&c);
        let rhs = a.dot(&c) + b.dot(&c);
        prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    /// Addition is commutative.
    #[test]
    fn add_commutative(a in arb_vector(), b in arb_vector()) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(ab.entries(), ba.entries());
    }

    /// The centroid of n copies of v is v.
    #[test]
    fn centroid_of_copies(v in arb_vector(), n in 1usize..5) {
        let copies: Vec<&SparseVector> = std::iter::repeat_n(&v, n).collect();
        let c = SparseVector::centroid(copies);
        for (&(t1, w1), &(t2, w2)) in c.entries().iter().zip(v.entries()) {
            prop_assert_eq!(t1, t2);
            prop_assert!((w1 - w2).abs() < 1e-9);
        }
        prop_assert_eq!(c.nnz(), v.nnz());
    }

    /// Norm scales linearly: |k·v| = |k|·|v|.
    #[test]
    fn norm_scales(v in arb_vector(), k in -5.0f64..5.0) {
        let lhs = v.scale(k).norm();
        let rhs = k.abs() * v.norm();
        prop_assert!((lhs - rhs).abs() < 1e-6);
    }

    /// IDF is non-negative and anti-monotone in document frequency.
    #[test]
    fn idf_antimonotone(n_docs in 2u32..40, rare in 1u32..10, common in 10u32..40) {
        let rare = rare.min(n_docs);
        let common = common.min(n_docs);
        let mut df = DocumentFrequencies::new();
        for d in 0..n_docs {
            let mut terms = Vec::new();
            if d < rare { terms.push(TermId(0)); }
            if d < common { terms.push(TermId(1)); }
            df.add_document(terms);
        }
        prop_assert!(df.idf(TermId(0)) >= 0.0);
        if rare < common {
            prop_assert!(df.idf(TermId(0)) > df.idf(TermId(1)));
        }
    }

    /// A ubiquitous term vanishes from every TF-IDF vector regardless of its
    /// raw frequency — the paper's noise-suppression mechanism.
    #[test]
    fn ubiquitous_term_vanishes(tf in 1.0f64..100.0, n_docs in 2u32..20) {
        let mut df = DocumentFrequencies::new();
        for _ in 0..n_docs {
            df.add_document(vec![TermId(0), TermId(1)]);
        }
        let mut b = CountsBuilder::new();
        b.add(TermId(0), tf);
        prop_assert!(b.tf_idf(&df).is_empty());
    }
}
