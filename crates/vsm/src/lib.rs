//! # cafc-vsm
//!
//! The vector-space model underlying the CAFC form-page model (§2.1 of the
//! paper): sparse term vectors, the location-aware TF-IDF weighting of
//! Equation 1, the cosine similarity of Equation 2, and the centroid
//! computation of Equation 4.
//!
//! The crate is generic over *which* text went into a vector — the core
//! crate builds one vector per feature space (page contents PC, form
//! contents FC) and combines their similarities with Equation 3.
//!
//! ```
//! use cafc_text::TermDict;
//! use cafc_vsm::{CountsBuilder, DocumentFrequencies};
//!
//! let mut dict = TermDict::new();
//! let flight = dict.intern("flight");
//! let hotel = dict.intern("hotel");
//!
//! // Two tiny "documents" as weighted term counts.
//! let mut a = CountsBuilder::new();
//! a.add(flight, 1.0);
//! a.add(flight, 1.0);
//! let mut b = CountsBuilder::new();
//! b.add(flight, 1.0);
//! b.add(hotel, 1.0);
//!
//! let mut df = DocumentFrequencies::new();
//! df.add_document(a.term_ids());
//! df.add_document(b.term_ids());
//!
//! let va = a.tf_idf(&df);
//! let vb = b.tf_idf(&df);
//! let sim = va.cosine(&vb);
//! assert!((0.0..=1.0).contains(&sim));
//! ```

#![warn(missing_docs)]

pub mod counts;
pub mod df;
pub mod schemes;
pub mod sparse;

pub use counts::CountsBuilder;
pub use df::DocumentFrequencies;
pub use schemes::{weigh, IdfScheme, TfScheme};
pub use sparse::SparseVector;
