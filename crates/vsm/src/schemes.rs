//! TF and IDF weighting-scheme variants.
//!
//! Equation 1 uses raw TF and plain `log(N/n_i)` IDF. The IR literature
//! offers several alternatives; implementing them makes the paper's choice
//! an *ablation* rather than an assumption (bench `exp_tfidf_variants`).

use crate::counts::CountsBuilder;
use crate::df::DocumentFrequencies;
use crate::sparse::SparseVector;

/// Term-frequency transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TfScheme {
    /// Raw (location-weighted) frequency — the paper's choice.
    #[default]
    Raw,
    /// `1 + ln(tf)` — dampens very frequent terms.
    Log,
    /// 1 for any presence — pure set-of-words.
    Binary,
    /// `tf / max_tf` within the document.
    MaxNorm,
}

impl TfScheme {
    fn apply(self, tf: f64, max_tf: f64) -> f64 {
        match self {
            TfScheme::Raw => tf,
            TfScheme::Log => {
                if tf > 0.0 {
                    1.0 + tf.ln()
                } else {
                    0.0
                }
            }
            TfScheme::Binary => {
                if tf > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            TfScheme::MaxNorm => {
                if max_tf > 0.0 {
                    tf / max_tf
                } else {
                    0.0
                }
            }
        }
    }
}

/// Inverse-document-frequency transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdfScheme {
    /// `ln(N / n_i)` — the paper's choice; ubiquitous terms vanish.
    #[default]
    Plain,
    /// `ln(1 + N / n_i)` — ubiquitous terms keep a small weight.
    Smooth,
    /// `ln((N − n_i + 0.5) / (n_i + 0.5))`, floored at 0 — the BM25 form.
    Probabilistic,
    /// Constant 1 — no collection statistics at all.
    None,
}

impl IdfScheme {
    /// The IDF factor for a term with document frequency `n_i` out of `n`.
    pub fn apply(self, n: u32, n_i: u32) -> f64 {
        if n_i == 0 || n == 0 {
            return 0.0;
        }
        let (n, n_i) = (f64::from(n), f64::from(n_i));
        match self {
            IdfScheme::Plain => (n / n_i).ln(),
            IdfScheme::Smooth => (1.0 + n / n_i).ln(),
            IdfScheme::Probabilistic => ((n - n_i + 0.5) / (n_i + 0.5)).ln().max(0.0),
            IdfScheme::None => 1.0,
        }
    }
}

/// Build a document vector under the given schemes.
pub fn weigh(
    counts: &CountsBuilder,
    df: &DocumentFrequencies,
    tf_scheme: TfScheme,
    idf_scheme: IdfScheme,
) -> SparseVector {
    let tf = counts.tf();
    let max_tf = tf.entries().iter().map(|&(_, w)| w).fold(0.0f64, f64::max);
    SparseVector::from_entries(
        tf.entries()
            .iter()
            .map(|&(t, w)| {
                (
                    t,
                    tf_scheme.apply(w, max_tf) * idf_scheme.apply(df.num_docs(), df.doc_freq(t)),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_text::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn setup() -> (CountsBuilder, DocumentFrequencies) {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0), t(1)]);
        df.add_document(vec![t(0)]);
        df.add_document(vec![t(0)]);
        let mut b = CountsBuilder::new();
        b.add(t(0), 4.0);
        b.add(t(1), 1.0);
        (b, df)
    }

    #[test]
    fn raw_plain_matches_tf_idf() {
        let (b, df) = setup();
        let via_schemes = weigh(&b, &df, TfScheme::Raw, IdfScheme::Plain);
        let direct = b.tf_idf(&df);
        assert_eq!(via_schemes, direct);
    }

    #[test]
    fn binary_ignores_frequency() {
        let (b, df) = setup();
        let v = weigh(&b, &df, TfScheme::Binary, IdfScheme::None);
        assert_eq!(v.get(t(0)), 1.0);
        assert_eq!(v.get(t(1)), 1.0);
    }

    #[test]
    fn log_dampens() {
        let (b, df) = setup();
        let raw = weigh(&b, &df, TfScheme::Raw, IdfScheme::None);
        let log = weigh(&b, &df, TfScheme::Log, IdfScheme::None);
        // t0 has tf 4: log form 1+ln4 ≈ 2.39 < 4.
        assert!(log.get(t(0)) < raw.get(t(0)));
        assert!((log.get(t(0)) - (1.0 + 4.0f64.ln())).abs() < 1e-12);
        // tf 1 stays 1 under both.
        assert_eq!(log.get(t(1)), raw.get(t(1)));
    }

    #[test]
    fn maxnorm_scales_to_unit_max() {
        let (b, df) = setup();
        let v = weigh(&b, &df, TfScheme::MaxNorm, IdfScheme::None);
        assert_eq!(v.get(t(0)), 1.0);
        assert_eq!(v.get(t(1)), 0.25);
    }

    #[test]
    fn smooth_keeps_ubiquitous_terms() {
        let (b, df) = setup();
        // t0 is in all 3 documents: plain IDF kills it, smooth keeps it.
        let plain = weigh(&b, &df, TfScheme::Raw, IdfScheme::Plain);
        let smooth = weigh(&b, &df, TfScheme::Raw, IdfScheme::Smooth);
        assert_eq!(plain.get(t(0)), 0.0);
        assert!(smooth.get(t(0)) > 0.0);
    }

    #[test]
    fn probabilistic_floors_at_zero() {
        // n=3, n_i=3 -> ln(0.5/3.5) < 0 -> floored to 0.
        assert_eq!(IdfScheme::Probabilistic.apply(3, 3), 0.0);
        assert!(IdfScheme::Probabilistic.apply(100, 1) > 0.0);
    }

    #[test]
    fn idf_handles_empty_collection() {
        for scheme in [
            IdfScheme::Plain,
            IdfScheme::Smooth,
            IdfScheme::Probabilistic,
            IdfScheme::None,
        ] {
            assert_eq!(scheme.apply(0, 0), 0.0, "{scheme:?}");
            assert_eq!(scheme.apply(5, 0), 0.0, "{scheme:?}");
        }
    }
}
