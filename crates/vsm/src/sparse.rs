//! Sparse term vectors sorted by [`TermId`].
//!
//! The invariant — entries strictly sorted by term id, no zero weights — is
//! maintained by construction, which lets [`SparseVector::dot`] run as a
//! linear merge and keeps cosine similarity O(nnz(a) + nnz(b)).

use cafc_text::TermId;

/// An immutable sparse vector over term ids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    /// `(term, weight)` entries, strictly sorted by term; weights non-zero.
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// The empty vector.
    pub fn empty() -> Self {
        SparseVector::default()
    }

    /// Build from entries that may be unsorted and may repeat term ids;
    /// repeated ids are summed, zero (and non-finite) results dropped.
    pub fn from_entries(mut entries: Vec<(TermId, f64)>) -> Self {
        entries.retain(|(_, w)| w.is_finite());
        entries.sort_unstable_by_key(|&(t, _)| t);
        let mut merged: Vec<(TermId, f64)> = Vec::with_capacity(entries.len());
        for (t, w) in entries {
            match merged.last_mut() {
                Some((last_t, last_w)) if *last_t == t => *last_w += w,
                _ => merged.push((t, w)),
            }
        }
        merged.retain(|(_, w)| *w != 0.0);
        SparseVector { entries: merged }
    }

    /// Entries, strictly sorted by term id.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of `term` (0.0 when absent).
    pub fn get(&self, term: TermId) -> f64 {
        match self.entries.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product by linear merge.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ta, wa) = self.entries[i];
            let (tb, wb) = other.entries[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Cosine similarity (Equation 2). Zero when either vector is empty.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        // Clamp to [0,1]: floating rounding can nudge identical vectors to
        // 1.0000000000000002, which would break distance computations.
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Scale every weight by `factor`.
    pub fn scale(&self, factor: f64) -> SparseVector {
        if factor == 0.0 {
            return SparseVector::empty();
        }
        SparseVector {
            entries: self.entries.iter().map(|&(t, w)| (t, w * factor)).collect(),
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &SparseVector) -> SparseVector {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ta, wa) = self.entries[i];
            let (tb, wb) = other.entries[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => {
                    out.push((ta, wa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((tb, wb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let w = wa + wb;
                    if w != 0.0 {
                        out.push((ta, w));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        SparseVector { entries: out }
    }

    /// The centroid (arithmetic mean, Equation 4) of a set of vectors.
    /// Returns the empty vector for an empty set.
    pub fn centroid<'a, I>(vectors: I) -> SparseVector
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        let mut sum = SparseVector::empty();
        let mut n = 0usize;
        for v in vectors {
            sum = sum.add(v);
            n += 1;
        }
        if n == 0 {
            SparseVector::empty()
        } else {
            sum.scale(1.0 / n as f64)
        }
    }

    /// Estimated heap footprint of this vector in bytes: one
    /// `(TermId, f64)` entry per non-zero term. Deterministic (a function
    /// of `nnz` alone, not of allocator capacity), so memory-budget
    /// accounting built on it is reproducible across runs and policies.
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(TermId, f64)>()
    }

    /// The `k` highest-weighted terms, descending by weight (ties by id).
    pub fn top_terms(&self, k: usize) -> Vec<(TermId, f64)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn vec_of(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(i, w)| (t(i), w)).collect())
    }

    #[test]
    fn from_entries_sorts_and_merges() {
        let v = vec_of(&[(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.entries(), &[(t(1), 2.0), (t(3), 5.0)]);
    }

    #[test]
    fn zero_weights_dropped() {
        let v = vec_of(&[(1, 1.0), (1, -1.0), (2, 0.0)]);
        assert!(v.is_empty());
    }

    #[test]
    fn non_finite_dropped() {
        let v = vec_of(&[(1, f64::NAN), (2, f64::INFINITY), (3, 1.0)]);
        assert_eq!(v.entries(), &[(t(3), 1.0)]);
    }

    #[test]
    fn get_present_and_absent() {
        let v = vec_of(&[(1, 2.0), (5, 3.0)]);
        assert_eq!(v.get(t(1)), 2.0);
        assert_eq!(v.get(t(5)), 3.0);
        assert_eq!(v.get(t(3)), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = vec_of(&[(1, 1.0), (2, 2.0), (4, 3.0)]);
        let b = vec_of(&[(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let a = vec_of(&[(1, 1.0)]);
        let b = vec_of(&[(2, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn norm() {
        let v = vec_of(&[(1, 3.0), (2, 4.0)]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(SparseVector::empty().norm(), 0.0);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = vec_of(&[(1, 0.3), (7, 1.9), (9, 0.01)]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = vec_of(&[(1, 1.0)]);
        let b = vec_of(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let a = vec_of(&[(1, 1.0)]);
        assert_eq!(a.cosine(&SparseVector::empty()), 0.0);
        assert_eq!(SparseVector::empty().cosine(&SparseVector::empty()), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = vec_of(&[(1, 1.0), (2, 2.0)]);
        let b = a.scale(42.0);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_merges() {
        let a = vec_of(&[(1, 1.0), (2, 1.0)]);
        let b = vec_of(&[(2, 1.0), (3, 1.0)]);
        assert_eq!(
            a.add(&b).entries(),
            &[(t(1), 1.0), (t(2), 2.0), (t(3), 1.0)]
        );
    }

    #[test]
    fn add_cancelling_removes_entry() {
        let a = vec_of(&[(1, 1.0)]);
        let b = vec_of(&[(1, -1.0)]);
        assert!(a.add(&b).is_empty());
    }

    #[test]
    fn centroid_of_two() {
        let a = vec_of(&[(1, 2.0)]);
        let b = vec_of(&[(1, 4.0), (2, 2.0)]);
        let c = SparseVector::centroid([&a, &b]);
        assert_eq!(c.entries(), &[(t(1), 3.0), (t(2), 1.0)]);
    }

    #[test]
    fn centroid_of_none_is_empty() {
        assert!(SparseVector::centroid(std::iter::empty()).is_empty());
    }

    #[test]
    fn top_terms_ordering() {
        let v = vec_of(&[(1, 0.5), (2, 3.0), (3, 3.0), (4, 1.0)]);
        let top = v.top_terms(3);
        assert_eq!(top, vec![(t(2), 3.0), (t(3), 3.0), (t(4), 1.0)]);
    }

    #[test]
    fn scale_by_zero_is_empty() {
        let v = vec_of(&[(1, 1.0)]);
        assert!(v.scale(0.0).is_empty());
    }

    #[test]
    fn heap_bytes_tracks_nnz_only() {
        assert_eq!(SparseVector::empty().heap_bytes(), 0);
        let v = vec_of(&[(1, 1.0), (2, 2.0), (9, 0.5)]);
        assert_eq!(v.heap_bytes(), 3 * std::mem::size_of::<(TermId, f64)>());
        // Construction path must not change the estimate: merged duplicates
        // and dropped zeros count once and zero times respectively.
        let merged = vec_of(&[(1, 1.0), (1, 2.0), (2, 0.0)]);
        assert_eq!(merged.heap_bytes(), std::mem::size_of::<(TermId, f64)>());
    }
}
