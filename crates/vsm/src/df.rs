//! Collection-level document frequencies and the IDF factor of Equation 1.
//!
//! The paper weights a term by `log(N / n_i)` where `N` is the number of
//! documents (form pages) in the collection and `n_i` is the number of
//! documents containing term *i*. Terms that occur in every document get an
//! IDF of zero — the paper's mechanism for suppressing web-generic noise
//! such as `privaci`, `shop`, `copyright`, `help` (§2.1).

use cafc_text::TermId;

/// Document-frequency table for a document collection.
#[derive(Debug, Clone, Default)]
pub struct DocumentFrequencies {
    /// `n_i` indexed by term id.
    doc_freq: Vec<u32>,
    /// `N`.
    num_docs: u32,
}

impl DocumentFrequencies {
    /// An empty table.
    pub fn new() -> Self {
        DocumentFrequencies::default()
    }

    /// Record one document's *distinct* terms. `terms` may contain
    /// duplicates; each term counts once per document.
    pub fn add_document<I>(&mut self, terms: I)
    where
        I: IntoIterator<Item = TermId>,
    {
        let mut distinct: Vec<TermId> = terms.into_iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        for term in distinct {
            let idx = term.index();
            if idx >= self.doc_freq.len() {
                self.doc_freq.resize(idx + 1, 0);
            }
            self.doc_freq[idx] += 1;
        }
        self.num_docs += 1;
    }

    /// Number of documents recorded (`N`).
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// `n_i` for a term (0 for never-seen terms).
    pub fn doc_freq(&self, term: TermId) -> u32 {
        self.doc_freq.get(term.index()).copied().unwrap_or(0)
    }

    /// The IDF factor `log(N / n_i)` (natural log).
    ///
    /// Returns 0.0 for terms never seen in the collection (they carry no
    /// evidence) and 0.0 when the collection is empty. A term present in
    /// every document also gets exactly 0.0.
    pub fn idf(&self, term: TermId) -> f64 {
        let n_i = self.doc_freq(term);
        if n_i == 0 || self.num_docs == 0 {
            return 0.0;
        }
        (f64::from(self.num_docs) / f64::from(n_i)).ln()
    }

    /// Iterate `(term, n_i)` over all terms with non-zero document frequency.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.doc_freq
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (TermId(i as u32), n)) // indices come from u32 TermIds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn counts_distinct_terms_once_per_doc() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0), t(0), t(1)]);
        df.add_document(vec![t(0)]);
        assert_eq!(df.num_docs(), 2);
        assert_eq!(df.doc_freq(t(0)), 2);
        assert_eq!(df.doc_freq(t(1)), 1);
        assert_eq!(df.doc_freq(t(9)), 0);
    }

    #[test]
    fn idf_ubiquitous_term_is_zero() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0)]);
        df.add_document(vec![t(0)]);
        assert_eq!(df.idf(t(0)), 0.0);
    }

    #[test]
    fn idf_rare_term_is_positive() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0), t(1)]);
        df.add_document(vec![t(0)]);
        df.add_document(vec![t(0)]);
        let idf = df.idf(t(1));
        assert!((idf - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn idf_unseen_term_is_zero() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0)]);
        assert_eq!(df.idf(t(7)), 0.0);
    }

    #[test]
    fn idf_empty_collection_is_zero() {
        let df = DocumentFrequencies::new();
        assert_eq!(df.idf(t(0)), 0.0);
    }

    #[test]
    fn idf_monotone_in_rarity() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0), t(1)]);
        df.add_document(vec![t(0), t(1)]);
        df.add_document(vec![t(0)]);
        df.add_document(vec![t(0)]);
        assert!(df.idf(t(1)) > df.idf(t(0)));
    }

    #[test]
    fn iter_skips_zero() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(2)]);
        let got: Vec<_> = df.iter().collect();
        assert_eq!(got, vec![(t(2), 1)]);
    }
}
