//! Location-weighted term-frequency accumulation — the `LOC_i × TF_i` part
//! of Equation 1.
//!
//! Each occurrence of a term is added with the weight of the location where
//! it occurred (e.g. 0.5 inside an `<option>`, 2.0 inside `<title>`). With
//! all weights at 1.0 this degenerates to plain term frequency, which is
//! exactly the §4.4 "uniform weights" ablation.

use crate::df::DocumentFrequencies;
use crate::sparse::SparseVector;
use cafc_text::TermId;
use std::collections::HashMap;

/// Accumulates `Σ_occurrences loc_weight` per term for one document.
#[derive(Debug, Clone, Default)]
pub struct CountsBuilder {
    counts: HashMap<TermId, f64>,
}

impl CountsBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        CountsBuilder::default()
    }

    /// Add one occurrence of `term` with the given location weight.
    pub fn add(&mut self, term: TermId, loc_weight: f64) {
        // A non-finite weight would poison every later sum for this term;
        // drop it at the door (SparseVector::from_entries double-checks).
        if !loc_weight.is_finite() {
            return;
        }
        *self.counts.entry(term).or_insert(0.0) += loc_weight;
    }

    /// Add every term in `terms` with the same location weight.
    pub fn add_all<I>(&mut self, terms: I, loc_weight: f64)
    where
        I: IntoIterator<Item = TermId>,
    {
        for term in terms {
            self.add(term, loc_weight);
        }
    }

    /// Distinct term ids seen so far (order unspecified) — feed these to
    /// [`DocumentFrequencies::add_document`].
    pub fn term_ids(&self) -> Vec<TermId> {
        self.counts.keys().copied().collect()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Rewrite every term id through `f`, merging counts when two ids map
    /// to the same target. Used when documents are tokenized against a
    /// chunk-local dictionary and later re-based onto the shared one.
    pub fn remap<F>(self, f: F) -> CountsBuilder
    where
        F: Fn(TermId) -> TermId,
    {
        let mut counts = HashMap::with_capacity(self.counts.len());
        for (term, weight) in self.counts {
            *counts.entry(f(term)).or_insert(0.0) += weight;
        }
        CountsBuilder { counts }
    }

    /// Lossless dump of the accumulated `(term, weight)` entries, sorted by
    /// term id. Unlike [`CountsBuilder::tf`] this keeps zero-weight entries
    /// (a term whose weights summed to 0.0 still contributes to document
    /// frequency), so `from_entries(b.entries())` reproduces `b` exactly —
    /// the checkpoint/resume path depends on that round trip for
    /// bit-identical IDF on resume.
    pub fn entries(&self) -> Vec<(TermId, f64)> {
        let mut entries: Vec<(TermId, f64)> = self.counts.iter().map(|(&t, &w)| (t, w)).collect();
        entries.sort_by_key(|&(t, _)| t);
        entries
    }

    /// Rebuild a builder from [`CountsBuilder::entries`] output. Weights
    /// are restored verbatim (they were finite when admitted by `add`).
    pub fn from_entries(entries: &[(TermId, f64)]) -> CountsBuilder {
        CountsBuilder {
            counts: entries.iter().copied().collect(),
        }
    }

    /// The raw weighted-TF vector (no IDF).
    pub fn tf(&self) -> SparseVector {
        SparseVector::from_entries(self.counts.iter().map(|(&t, &w)| (t, w)).collect())
    }

    /// The full Equation-1 vector: `w_i = (Σ LOC) × idf(i)` over this
    /// document's terms, using collection statistics `df`.
    pub fn tf_idf(&self, df: &DocumentFrequencies) -> SparseVector {
        SparseVector::from_entries(
            self.counts
                .iter()
                .map(|(&t, &w)| (t, w * df.idf(t)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn accumulates_weighted_occurrences() {
        let mut b = CountsBuilder::new();
        b.add(t(0), 1.0);
        b.add(t(0), 0.5);
        b.add(t(1), 2.0);
        let tf = b.tf();
        assert_eq!(tf.get(t(0)), 1.5);
        assert_eq!(tf.get(t(1)), 2.0);
        assert_eq!(b.distinct_terms(), 2);
    }

    #[test]
    fn add_all_shares_weight() {
        let mut b = CountsBuilder::new();
        b.add_all(vec![t(0), t(1), t(0)], 0.5);
        assert_eq!(b.tf().get(t(0)), 1.0);
        assert_eq!(b.tf().get(t(1)), 0.5);
    }

    #[test]
    fn tfidf_zeroes_ubiquitous_terms() {
        let mut df = DocumentFrequencies::new();
        df.add_document(vec![t(0), t(1)]);
        df.add_document(vec![t(0)]);

        let mut b = CountsBuilder::new();
        b.add(t(0), 3.0); // in every doc -> idf 0 -> dropped
        b.add(t(1), 1.0); // in half the docs -> positive weight
        let v = b.tf_idf(&df);
        assert_eq!(v.get(t(0)), 0.0);
        assert!(v.get(t(1)) > 0.0);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn empty_builder_empty_vector() {
        let b = CountsBuilder::new();
        assert!(b.is_empty());
        assert!(b.tf().is_empty());
        assert!(b.tf_idf(&DocumentFrequencies::new()).is_empty());
    }

    #[test]
    fn remap_rewrites_and_merges() {
        let mut b = CountsBuilder::new();
        b.add(t(0), 1.0);
        b.add(t(1), 2.0);
        b.add(t(2), 4.0);
        // 0 and 2 collapse onto the same id; 1 moves.
        let b = b.remap(|id| match id.0 {
            0 | 2 => t(0),
            _ => t(11),
        });
        assert_eq!(b.distinct_terms(), 2);
        assert_eq!(b.tf().get(t(0)), 5.0);
        assert_eq!(b.tf().get(t(11)), 2.0);
    }

    #[test]
    fn entries_round_trip_losslessly() {
        let mut b = CountsBuilder::new();
        b.add(t(9), 2.5);
        b.add(t(1), 1.0);
        b.add(t(4), -1.0);
        b.add(t(4), 1.0); // sums to exactly 0.0 — must survive the round trip
        let entries = b.entries();
        assert_eq!(
            entries.iter().map(|&(t, _)| t.0).collect::<Vec<_>>(),
            vec![1, 4, 9],
            "entries are sorted by term id"
        );
        let restored = CountsBuilder::from_entries(&entries);
        assert_eq!(restored.entries(), entries);
        assert_eq!(restored.distinct_terms(), 3, "zero-weight entry kept");
    }

    #[test]
    fn term_ids_are_distinct() {
        let mut b = CountsBuilder::new();
        b.add(t(3), 1.0);
        b.add(t(3), 1.0);
        b.add(t(5), 1.0);
        let mut ids = b.term_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![t(3), t(5)]);
    }
}
