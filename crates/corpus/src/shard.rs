//! Sharded form-page generation for the 10^5–10^6 scale regime.
//!
//! [`crate::web::generate`] builds the full §3.1 web — backlinks, hubs,
//! portal — which is what the paper-scale experiments need but is far too
//! heavy (and inherently sequential: one `SmallRng` threads through the
//! whole build) for throughput benchmarking at a million pages. This
//! module generates *form pages only*, with each page an independent pure
//! function of `(seed, page_index)`:
//!
//! ```text
//! page_rng(i) = SmallRng::seed_from_u64(Seed::new(seed).derive(i).value())
//! ```
//!
//! Because no RNG state is shared between pages, any partition of the
//! index range into shards — and any execution policy — yields the same
//! pages byte for byte. Page `i` of a 10^6-page corpus is identical to
//! page `i` of a 100-page corpus under the same seed, so small-scale
//! assertions transfer directly to the large runs. The page mix reuses
//! `web.rs` internals (size classes, text mixes, hybrid Music/Movie
//! pages), so the Table-1 shape of the corpus is preserved.
//!
//! Shards feed `FormPageCorpus::from_shards` (cafc-core), whose merge is
//! likewise invariant to the shard partition; together they make the
//! whole batch pipeline reproducible at any scale. See DESIGN.md §17.

use crate::domain::Domain;
use crate::formgen::LabelStyle;
use crate::pagegen::{self, FormPageParams};
use crate::text_gen;
use crate::web::SizeClass;
use cafc_check::Seed;
use cafc_exec::{par_map, ExecPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for a sharded form-page corpus.
///
/// `Default`/[`ShardedCorpusConfig::new`] give a small smoke-test corpus;
/// scale up with [`with_total_form_pages`](Self::with_total_form_pages).
/// `shard_pages` controls only the work-unit size handed to the exec
/// layer — the generated pages are a pure function of `(seed, index)`
/// and do not depend on it.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardedCorpusConfig {
    /// Total form pages to generate.
    pub total_form_pages: usize,
    /// Pages per shard (work-unit size; output-invariant).
    pub shard_pages: usize,
    /// RNG seed; same seed → identical pages at every scale.
    pub seed: u64,
}

impl Default for ShardedCorpusConfig {
    fn default() -> Self {
        ShardedCorpusConfig {
            total_form_pages: 1_000,
            shard_pages: 1_024,
            seed: 0,
        }
    }
}

impl ShardedCorpusConfig {
    /// The default configuration (10^3 pages, 1024-page shards, seed 0).
    pub fn new() -> Self {
        ShardedCorpusConfig::default()
    }

    /// Set the total page count.
    pub fn with_total_form_pages(mut self, total: usize) -> Self {
        self.total_form_pages = total;
        self
    }

    /// Set the shard size (clamped to ≥ 1 at use sites).
    pub fn with_shard_pages(mut self, pages: usize) -> Self {
        self.shard_pages = pages;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of shards the index range splits into.
    pub fn num_shards(&self) -> usize {
        self.total_form_pages.div_ceil(self.shard_pages.max(1))
    }
}

/// The gold domain label of page `index` (round-robin over the eight
/// domains, so every prefix of the corpus is near-balanced).
pub fn page_domain(index: usize) -> Domain {
    Domain::ALL[index % Domain::ALL.len()]
}

/// Generate page `index`: a pure function of `(config.seed, index)`.
pub fn generate_page(config: &ShardedCorpusConfig, index: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(Seed::new(config.seed).derive(index as u64).value());
    let domain = page_domain(index);
    // Same single-attribute share as the paper's corpus (56 of 454).
    let single = rng.random_bool(56.0 / 454.0);
    let (single_style, class) = if single {
        let style = match rng.random_range(0..10) {
            0..=5 => LabelStyle::Inside,
            6..=8 => LabelStyle::Outside,
            _ => LabelStyle::None,
        };
        (Some(style), SizeClass::Tiny)
    } else {
        (None, SizeClass::sample(&mut rng))
    };
    let hybrid =
        matches!(domain, Domain::Music | Domain::Movie) && !single && rng.random_bool(0.16);
    let site_name = format!(
        "{}{}",
        text_gen::title_phrase(&mut rng, domain).replace(' ', ""),
        index
    );
    let params = FormPageParams {
        domain,
        single: single_style,
        form_term_budget: class.form_budget(&mut rng),
        page_term_budget: class.page_budget(&mut rng),
        site_name,
        hybrid,
    };
    pagegen::form_page(&mut rng, &params)
}

/// Generate shard `shard_index` (pages `[s·shard_pages, min((s+1)·shard_pages, n))`).
///
/// Returns an empty vector for a shard index past the end.
pub fn generate_shard(config: &ShardedCorpusConfig, shard_index: usize) -> Vec<String> {
    let shard_pages = config.shard_pages.max(1);
    let start = shard_index.saturating_mul(shard_pages);
    let end = start
        .saturating_add(shard_pages)
        .min(config.total_form_pages);
    (start..end.max(start))
        .map(|i| generate_page(config, i))
        .collect()
}

/// Generate the whole corpus as shards in shard order, serially.
pub fn generate_sharded(config: &ShardedCorpusConfig) -> Vec<Vec<String>> {
    generate_sharded_exec(config, ExecPolicy::Serial)
}

/// Generate the whole corpus as shards in shard order on the exec layer.
///
/// Bit-identical across policies: each shard is a pure function of
/// `(config, shard_index)` and the exec layer merges in shard order.
pub fn generate_sharded_exec(config: &ShardedCorpusConfig, policy: ExecPolicy) -> Vec<Vec<String>> {
    let cfg = config.clone();
    par_map(policy, config.num_shards(), move |s| {
        generate_shard(&cfg, s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, shard: usize, seed: u64) -> ShardedCorpusConfig {
        ShardedCorpusConfig::new()
            .with_total_form_pages(n)
            .with_shard_pages(shard)
            .with_seed(seed)
    }

    #[test]
    fn page_is_pure_function_of_seed_and_index() {
        let a = cfg(100, 16, 7);
        let b = cfg(10, 3, 7); // different scale + shard size, same seed
        for i in 0..10 {
            assert_eq!(generate_page(&a, i), generate_page(&b, i), "page {i}");
        }
        assert_ne!(
            generate_page(&a, 0),
            generate_page(&cfg(100, 16, 8), 0),
            "seed must matter"
        );
    }

    #[test]
    fn shard_partition_is_output_invariant() {
        let n = 53;
        let flat =
            |shards: Vec<Vec<String>>| -> Vec<String> { shards.into_iter().flatten().collect() };
        let base = flat(generate_sharded(&cfg(n, 7, 3)));
        assert_eq!(base.len(), n);
        for shard in [1, 8, 53, 100] {
            assert_eq!(
                flat(generate_sharded(&cfg(n, shard, 3))),
                base,
                "shard {shard}"
            );
        }
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let c = cfg(40, 6, 11);
        let serial = generate_sharded_exec(&c, ExecPolicy::Serial);
        let parallel = generate_sharded_exec(&c, ExecPolicy::Parallel { threads: 4 });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn shard_sizes_and_count() {
        let c = cfg(10, 4, 0);
        assert_eq!(c.num_shards(), 3);
        let shards = generate_sharded(&c);
        assert_eq!(shards.iter().map(Vec::len).collect::<Vec<_>>(), [4, 4, 2]);
        assert!(generate_shard(&c, 5).is_empty(), "past-the-end shard");
    }

    #[test]
    fn degenerate_configs() {
        assert_eq!(cfg(0, 8, 0).num_shards(), 0);
        assert!(generate_sharded(&cfg(0, 8, 0)).is_empty());
        // shard_pages == 0 is clamped to 1, not a panic or a hang.
        let c = cfg(3, 0, 0);
        assert_eq!(c.num_shards(), 3);
        assert_eq!(generate_sharded(&c).into_iter().flatten().count(), 3);
    }

    #[test]
    fn pages_parse_and_carry_one_form() {
        let c = cfg(24, 8, 5);
        let mut singles = 0usize;
        for (i, page) in generate_sharded(&c).into_iter().flatten().enumerate() {
            let doc = cafc_html::parse(&page);
            let forms = cafc_html::extract_forms(&doc);
            assert_eq!(forms.len(), 1, "page {i}");
            singles += usize::from(forms[0].is_single_attribute());
        }
        assert!(singles < 24, "not everything should be single-attribute");
    }

    #[test]
    fn domains_round_robin() {
        assert_eq!(page_domain(0), Domain::ALL[0]);
        assert_eq!(page_domain(8), Domain::ALL[0]);
        assert_eq!(page_domain(9), Domain::ALL[1]);
    }
}
