//! Corpus statistics — primarily the Table-1 measurement: average number
//! of page terms *outside* the form, binned by form size.

use cafc_html::{located_text, parse};

/// The form-size bins of Table 1.
pub const TABLE1_BINS: [(&str, usize, usize); 5] = [
    ("< 10", 0, 10),
    ("[10, 50)", 10, 50),
    ("[50, 100)", 50, 100),
    ("[100, 200)", 100, 200),
    (">= 200", 200, usize::MAX),
];

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Bin label (e.g. `"[10, 50)"`).
    pub bin: &'static str,
    /// Number of form pages falling in this bin.
    pub pages: usize,
    /// Average number of terms outside the form over those pages.
    pub avg_page_terms: f64,
}

/// Per-page term counts inside and outside the form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTermCounts {
    /// Word tokens in form locations (FC).
    pub form_terms: usize,
    /// Word tokens outside the form (PC minus FC).
    pub page_terms: usize,
}

/// Count form/page terms of a single HTML document.
pub fn count_terms(html: &str) -> PageTermCounts {
    let doc = parse(html);
    let mut form_terms = 0;
    let mut page_terms = 0;
    for lt in located_text(&doc) {
        let words = lt.text.split_whitespace().count();
        if lt.location.is_form() {
            form_terms += words;
        } else {
            page_terms += words;
        }
    }
    PageTermCounts {
        form_terms,
        page_terms,
    }
}

/// Compute Table 1 over a set of HTML documents.
pub fn table1<'a, I>(pages: I) -> Vec<Table1Row>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut sums = [0usize; 5];
    let mut counts = [0usize; 5];
    for html in pages {
        let c = count_terms(html);
        // The last bin's upper bound is usize::MAX, so this only falls
        // through if the bin table is edited; the catch-all bin absorbs it.
        let bin = TABLE1_BINS
            .iter()
            .position(|&(_, lo, hi)| c.form_terms >= lo && c.form_terms < hi)
            .unwrap_or(TABLE1_BINS.len() - 1);
        sums[bin] += c.page_terms;
        counts[bin] += 1;
    }
    TABLE1_BINS
        .iter()
        .enumerate()
        .map(|(i, &(label, _, _))| Table1Row {
            bin: label,
            pages: counts[i],
            avg_page_terms: if counts[i] == 0 {
                0.0
            } else {
                sums[i] as f64 / counts[i] as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{generate, CorpusConfig};

    #[test]
    fn count_terms_basic() {
        let html = "<p>one two three</p><form>four five <input name=q></form>";
        let c = count_terms(html);
        assert_eq!(c.page_terms, 3);
        assert_eq!(c.form_terms, 2);
    }

    #[test]
    fn table1_bins_cover_everything() {
        for size in [0usize, 9, 10, 49, 50, 99, 100, 199, 200, 10_000] {
            assert!(
                TABLE1_BINS
                    .iter()
                    .any(|&(_, lo, hi)| size >= lo && size < hi),
                "size {size} uncovered"
            );
        }
    }

    #[test]
    fn table1_on_synthetic_corpus_shows_anticorrelation() {
        let web = generate(&CorpusConfig::small(3));
        let htmls: Vec<&str> = web
            .form_pages
            .iter()
            .map(|r| web.graph.html(r.page).expect("html"))
            .collect();
        let rows = table1(htmls.iter().copied());
        assert_eq!(rows.len(), 5);
        let total: usize = rows.iter().map(|r| r.pages).sum();
        assert_eq!(total, web.form_pages.len());
        // The anticorrelation: tiny forms sit in content-rich pages; huge
        // forms in sparse pages.
        let tiny = &rows[0];
        let huge = &rows[4];
        assert!(tiny.pages > 0, "no tiny forms generated");
        if huge.pages > 0 {
            assert!(
                tiny.avg_page_terms > huge.avg_page_terms * 2.0,
                "tiny {} vs huge {}",
                tiny.avg_page_terms,
                huge.avg_page_terms
            );
        }
    }

    #[test]
    fn table1_empty_input() {
        let rows = table1(std::iter::empty());
        assert!(rows.iter().all(|r| r.pages == 0 && r.avg_page_terms == 0.0));
    }
}
