//! Export a [`SyntheticWeb`] to disk and load a web back from disk.
//!
//! The on-disk layout is what the `cafc` CLI consumes, and doubles as an
//! interchange format for running CAFC over *real* page collections: a
//! directory of HTML files plus a `manifest.json` describing URLs, link
//! structure and (optionally) gold labels.
//!
//! ```text
//! corpus-dir/
//!   manifest.json
//!   pages/0.html, pages/1.html, ...
//! ```
//!
//! The manifest is deliberately hand-parseable JSON:
//!
//! ```json
//! {
//!   "pages": [{"url": "http://...", "file": "pages/0.html",
//!              "kind": "form|other", "label": "airfare"}, ...],
//!   "links": [[from_index, to_index], ...]
//! }
//! ```

use crate::domain::Domain;
use crate::web::SyntheticWeb;
use cafc_webgraph::{PageId, Url, WebGraph};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// One page entry of a loaded manifest.
#[derive(Debug, Clone)]
pub struct ManifestPage {
    /// The page URL.
    pub url: Url,
    /// Page id in the loaded graph.
    pub page: PageId,
    /// Whether the manifest marks this as a form page of interest.
    pub is_form_page: bool,
    /// Optional gold label.
    pub label: Option<String>,
}

/// A web loaded from disk.
#[derive(Debug)]
pub struct LoadedWeb {
    /// Graph with page HTML and links.
    pub graph: WebGraph,
    /// All manifest pages, in manifest order.
    pub pages: Vec<ManifestPage>,
}

impl LoadedWeb {
    /// Page ids of the form pages, in manifest order.
    pub fn form_page_ids(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .filter(|p| p.is_form_page)
            .map(|p| p.page)
            .collect()
    }

    /// Labels aligned with [`LoadedWeb::form_page_ids`] (missing labels
    /// become `"unknown"`).
    pub fn form_page_labels(&self) -> Vec<String> {
        self.pages
            .iter()
            .filter(|p| p.is_form_page)
            .map(|p| p.label.clone().unwrap_or_else(|| "unknown".to_owned()))
            .collect()
    }
}

/// Serialize a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write `web` under `dir` (created if missing). Returns the number of
/// pages written.
pub fn export_web(web: &SyntheticWeb, dir: &Path) -> io::Result<usize> {
    let pages_dir = dir.join("pages");
    std::fs::create_dir_all(&pages_dir)?;

    // Gold-label and form-page lookup by PageId.
    let mut label_of: HashMap<PageId, Domain> = HashMap::new();
    for rec in &web.form_pages {
        label_of.insert(rec.page, rec.domain);
    }

    let ids: Vec<PageId> = web.graph.page_ids().collect();
    let index_of: HashMap<PageId, usize> = ids.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let mut page_entries = Vec::with_capacity(ids.len());
    for (i, &id) in ids.iter().enumerate() {
        let file = format!("pages/{i}.html");
        std::fs::write(dir.join(&file), web.graph.html(id).unwrap_or(""))?;
        let kind = if label_of.contains_key(&id) {
            "form"
        } else {
            "other"
        };
        let label = label_of
            .get(&id)
            .map(|d| format!(",\"label\":{}", json_str(d.name())))
            .unwrap_or_default();
        page_entries.push(format!(
            "{{\"url\":{},\"file\":{},\"kind\":\"{kind}\"{label}}}",
            json_str(&web.graph.url(id).to_string()),
            json_str(&file),
        ));
    }

    let mut link_entries = Vec::new();
    for &from in &ids {
        for &to in web.graph.out_links(from) {
            link_entries.push(format!("[{},{}]", index_of[&from], index_of[&to]));
        }
    }

    let manifest = format!(
        "{{\n\"pages\": [\n{}\n],\n\"links\": [{}]\n}}\n",
        page_entries.join(",\n"),
        link_entries.join(",")
    );
    std::fs::write(dir.join("manifest.json"), manifest)?;
    Ok(ids.len())
}

/// Minimal JSON reader for the manifest format written by [`export_web`]
/// (and easy to produce by hand or scripts). Not a general JSON parser.
mod json {
    /// Split the items of a JSON array given the exact `"key": [`
    /// preamble, handling nesting of objects/arrays and strings.
    pub fn array_items(src: &str, key: &str) -> Option<Vec<String>> {
        let key_pat = format!("\"{key}\"");
        let start = src.find(&key_pat)?;
        let bracket = src[start..].find('[')? + start;
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escape = false;
        let mut items = Vec::new();
        let mut current = String::new();
        for c in src[bracket..].chars() {
            if escape {
                current.push(c);
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => {
                    current.push(c);
                    escape = true;
                }
                '"' => {
                    in_str = !in_str;
                    current.push(c);
                }
                '[' | '{' if !in_str => {
                    depth += 1;
                    if depth > 1 {
                        current.push(c);
                    }
                }
                ']' | '}' if !in_str => {
                    depth -= 1;
                    if depth == 0 {
                        let t = current.trim();
                        if !t.is_empty() {
                            items.push(t.to_owned());
                        }
                        return Some(items);
                    }
                    current.push(c);
                }
                ',' if !in_str && depth == 1 => {
                    let t = current.trim();
                    if !t.is_empty() {
                        items.push(t.to_owned());
                    }
                    current.clear();
                }
                _ => current.push(c),
            }
        }
        None
    }

    /// Extract a string field `"key":"value"` from a flat JSON object.
    pub fn string_field(obj: &str, key: &str) -> Option<String> {
        let key_pat = format!("\"{key}\"");
        let start = obj.find(&key_pat)? + key_pat.len();
        let colon = obj[start..].find(':')? + start;
        let rest = obj[colon + 1..].trim_start();
        let rest = rest.strip_prefix('"')?;
        let mut out = String::new();
        let mut escape = false;
        for c in rest.chars() {
            if escape {
                match c {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    other => out.push(other),
                }
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                return Some(out);
            } else {
                out.push(c);
            }
        }
        None
    }
}

/// Load a web previously written by [`export_web`] (or hand-assembled in
/// the same format).
pub fn load_web(dir: &Path) -> io::Result<LoadedWeb> {
    let manifest = std::fs::read_to_string(dir.join("manifest.json"))?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());

    let page_objs =
        json::array_items(&manifest, "pages").ok_or_else(|| bad("manifest missing \"pages\""))?;
    let mut graph = WebGraph::new();
    let mut pages = Vec::with_capacity(page_objs.len());
    for obj in &page_objs {
        let url_s =
            json::string_field(obj, "url").ok_or_else(|| bad("page entry missing \"url\""))?;
        let url =
            Url::parse(&url_s).ok_or_else(|| bad(&format!("unparseable page URL: {url_s}")))?;
        let file =
            json::string_field(obj, "file").ok_or_else(|| bad("page entry missing \"file\""))?;
        let html = std::fs::read_to_string(dir.join(&file))?;
        let page = graph.add_page(url.clone(), html);
        let is_form_page = json::string_field(obj, "kind").as_deref() == Some("form");
        let label = json::string_field(obj, "label");
        pages.push(ManifestPage {
            url,
            page,
            is_form_page,
            label,
        });
    }

    let link_arrays =
        json::array_items(&manifest, "links").ok_or_else(|| bad("manifest missing \"links\""))?;
    for pair in &link_arrays {
        // Items arrive with their own brackets ("[0,1]").
        let mut nums = pair.trim_matches(['[', ']']).split(',').map(str::trim);
        let from: usize = nums
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(&format!("bad link entry: {pair}")))?;
        let to: usize = nums
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(&format!("bad link entry: {pair}")))?;
        if from >= pages.len() || to >= pages.len() {
            return Err(bad(&format!("link index out of range: {pair}")));
        }
        graph.add_link(pages[from].page, pages[to].page);
    }
    Ok(LoadedWeb { graph, pages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{generate, CorpusConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cafc-export-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_load_roundtrip() {
        let web = generate(&CorpusConfig::small(31));
        let dir = tmpdir("roundtrip");
        let written = export_web(&web, &dir).expect("export succeeds");
        assert_eq!(written, web.graph.len());

        let loaded = load_web(&dir).expect("load succeeds");
        assert_eq!(loaded.graph.len(), web.graph.len());
        assert_eq!(loaded.graph.num_links(), web.graph.num_links());
        assert_eq!(loaded.form_page_ids().len(), web.form_pages.len());

        // Gold labels survive.
        let labels = loaded.form_page_labels();
        assert_eq!(labels.len(), web.form_pages.len());
        assert!(labels.iter().all(|l| l != "unknown"));

        // HTML content survives byte-for-byte for a sample page.
        let orig = web.graph.html(web.form_pages[0].page).expect("html");
        let orig_url = web.graph.url(web.form_pages[0].page);
        let loaded_id = loaded
            .graph
            .page_id(orig_url)
            .expect("page present after load");
        assert_eq!(loaded.graph.html(loaded_id), Some(orig));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_missing_manifest() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(load_web(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_bad_link_index() {
        let dir = tmpdir("badlink");
        std::fs::create_dir_all(dir.join("pages")).expect("mkdir");
        std::fs::write(dir.join("pages/0.html"), "<p>x</p>").expect("write page");
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"pages": [{"url":"http://a.com/","file":"pages/0.html","kind":"form"}],
                "links": [[0,9]]}"#,
        )
        .expect("write manifest");
        assert!(load_web(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn hand_written_manifest_loads() {
        let dir = tmpdir("hand");
        std::fs::create_dir_all(dir.join("pages")).expect("mkdir");
        std::fs::write(dir.join("pages/a.html"), "<form><input name=q></form>").expect("write");
        std::fs::write(dir.join("pages/b.html"), "<a href=\"http://a.com/f\">x</a>")
            .expect("write");
        std::fs::write(
            dir.join("manifest.json"),
            r#"{
              "pages": [
                {"url": "http://a.com/f", "file": "pages/a.html", "kind": "form", "label": "job"},
                {"url": "http://hub.org/", "file": "pages/b.html", "kind": "other"}
              ],
              "links": [[1,0]]
            }"#,
        )
        .expect("write manifest");
        let loaded = load_web(&dir).expect("load succeeds");
        assert_eq!(loaded.pages.len(), 2);
        assert_eq!(loaded.form_page_ids().len(), 1);
        assert_eq!(loaded.form_page_labels(), vec!["job"]);
        assert_eq!(loaded.graph.in_links(loaded.pages[0].page).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
