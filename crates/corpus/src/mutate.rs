//! Deterministic adversarial HTML mutator — the torture half of the
//! hardened ingestion story.
//!
//! The synthetic web in [`crate::web`] emits *clean* HTML; real crawled
//! form pages are anything but. This module turns clean pages into the
//! hostile inputs the ingestion layer (`cafc::ingest`) must survive:
//! truncated tags, unterminated entities, unbalanced trees, pathological
//! nesting, duplicated forms, control characters, megabyte attributes and
//! entity bombs.
//!
//! Everything is seeded: the same `(seed, page index)` pair produces
//! byte-identical output ([`page_rng`]), so a torture run is a reproducible
//! experiment, not a fuzzing session. All string surgery is UTF-8
//! char-boundary safe.
//!
//! Randomness comes from the workspace-shared splittable PRNG
//! ([`cafc_check::CheckRng`]), so a torture corpus, a property-test run
//! and a chaos crawl can all hang off one root [`cafc_check::Seed`].

use cafc_check::{CheckRng, Seed};

/// One adversarial transformation of an HTML document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Cut the document off inside a tag (`<inp`).
    TruncateMidTag,
    /// Cut the document off and leave an unterminated entity (`&#x1F`).
    TruncateMidEntity,
    /// Delete a random subset of closing tags, unbalancing the tree.
    DropCloseTags,
    /// Wrap the document in hundreds of nested `<div>`s, probing the
    /// parser's depth cap.
    DeepNest,
    /// Duplicate the first form *inside itself* (nested forms are invalid
    /// HTML that real pages contain anyway).
    NestForms,
    /// Sprinkle C0/DEL control characters through the text.
    ControlChars,
    /// Inject a single attribute value hundreds of kilobytes to megabytes
    /// long.
    MegaAttribute,
    /// Insert thousands of back-to-back entities (decoded and bogus).
    EntityBomb,
}

impl Mutation {
    /// Every mutation, in a stable order.
    pub const ALL: [Mutation; 8] = [
        Mutation::TruncateMidTag,
        Mutation::TruncateMidEntity,
        Mutation::DropCloseTags,
        Mutation::DeepNest,
        Mutation::NestForms,
        Mutation::ControlChars,
        Mutation::MegaAttribute,
        Mutation::EntityBomb,
    ];

    /// Stable CLI-facing name.
    pub fn label(self) -> &'static str {
        match self {
            Mutation::TruncateMidTag => "truncate-mid-tag",
            Mutation::TruncateMidEntity => "truncate-mid-entity",
            Mutation::DropCloseTags => "drop-close-tags",
            Mutation::DeepNest => "deep-nest",
            Mutation::NestForms => "nest-forms",
            Mutation::ControlChars => "control-chars",
            Mutation::MegaAttribute => "mega-attribute",
            Mutation::EntityBomb => "entity-bomb",
        }
    }

    /// Inverse of [`Mutation::label`].
    pub fn parse(name: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.label() == name)
    }

    /// Parse a CLI spec: `all` or a comma-separated list of labels.
    pub fn parse_list(spec: &str) -> Result<Vec<Mutation>, String> {
        if spec == "all" {
            return Ok(Mutation::ALL.to_vec());
        }
        spec.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                Mutation::parse(name).ok_or_else(|| {
                    let known: Vec<&str> = Mutation::ALL.iter().map(|m| m.label()).collect();
                    format!(
                        "unknown mutation {name:?} (expected one of: {})",
                        known.join(", ")
                    )
                })
            })
            .collect()
    }
}

/// The RNG for one page of a torture run. Each page gets an independent
/// stream derived from `(seed, index)`, so mutating page 17 yields the
/// same bytes whether the corpus holds 20 pages or 2000.
pub fn page_rng(seed: u64, index: usize) -> CheckRng {
    Seed::new(seed).stream(index as u64)
}

/// Apply `count` mutations drawn (with replacement) from `menu` to `html`.
/// Deterministic given the RNG state; an empty menu is the identity.
pub fn mutate_page(html: &str, menu: &[Mutation], count: usize, rng: &mut CheckRng) -> String {
    let mut out = html.to_owned();
    if menu.is_empty() {
        return out;
    }
    for _ in 0..count {
        let mutation = *rng.pick(menu).unwrap_or(&Mutation::DropCloseTags);
        out = apply(&out, mutation, rng);
    }
    out
}

/// Apply a single mutation.
pub fn apply(html: &str, mutation: Mutation, rng: &mut CheckRng) -> String {
    match mutation {
        Mutation::TruncateMidTag => truncate_mid_tag(html, rng),
        Mutation::TruncateMidEntity => truncate_mid_entity(html, rng),
        Mutation::DropCloseTags => drop_close_tags(html, rng),
        Mutation::DeepNest => deep_nest(html, rng),
        Mutation::NestForms => nest_forms(html, rng),
        Mutation::ControlChars => control_chars(html, rng),
        Mutation::MegaAttribute => mega_attribute(html, rng),
        Mutation::EntityBomb => entity_bomb(html, rng),
    }
}

/// Largest char boundary `<= i` (manual `floor_char_boundary`).
fn floor_boundary(s: &str, mut i: usize) -> usize {
    if i >= s.len() {
        return s.len();
    }
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// A random char boundary in `s`, biased nowhere in particular.
fn random_boundary(s: &str, rng: &mut CheckRng) -> usize {
    if s.is_empty() {
        return 0;
    }
    floor_boundary(s, rng.range_usize(0, s.len()))
}

fn truncate_mid_tag(html: &str, rng: &mut CheckRng) -> String {
    // Cut just after some '<' so the document ends inside an open tag.
    let opens: Vec<usize> = html.match_indices('<').map(|(i, _)| i).collect();
    match opens.as_slice() {
        [] => {
            let cut = floor_boundary(html, html.len() / 2);
            html[..cut].to_owned()
        }
        _ => {
            let at = rng.pick(&opens).copied().unwrap_or(0);
            let keep = rng.range_usize(1, 8);
            let cut = floor_boundary(html, (at + keep).min(html.len()));
            html[..cut.max(at + 1)].to_owned()
        }
    }
}

fn truncate_mid_entity(html: &str, rng: &mut CheckRng) -> String {
    const STUBS: [&str; 5] = ["&am", "&#12", "&#x1F4A", "&quo", "&"];
    // Keep at least the first half so there is still text to analyze.
    let lo = html.len() / 2;
    let cut = floor_boundary(html, rng.range_usize(lo, html.len()));
    let mut out = html[..cut].to_owned();
    out.push_str(rng.pick(&STUBS).unwrap_or(&"&"));
    out
}

fn drop_close_tags(html: &str, rng: &mut CheckRng) -> String {
    let mut out = String::with_capacity(html.len());
    let mut rest = html;
    while let Some(start) = rest.find("</") {
        out.push_str(&rest[..start]);
        let tail = &rest[start..];
        let end = tail.find('>').map(|i| i + 1).unwrap_or(tail.len());
        if rng.chance(0.5) {
            out.push_str(&tail[..end]); // keep this closing tag
        }
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn deep_nest(html: &str, rng: &mut CheckRng) -> String {
    // Straddle the parser's depth cap (cafc_html::MAX_DEPTH = 512): some
    // runs stay under it, some blow past it.
    let depth = rng.range_usize(300, 1200);
    let at = match html.find("<body") {
        Some(i) => html[i..].find('>').map(|j| i + j + 1).unwrap_or(0),
        None => 0,
    };
    let mut out = String::with_capacity(html.len() + depth * 11);
    out.push_str(&html[..at]);
    for _ in 0..depth {
        out.push_str("<div>");
    }
    out.push_str(&html[at..]);
    for _ in 0..depth {
        out.push_str("</div>");
    }
    out
}

fn nest_forms(html: &str, rng: &mut CheckRng) -> String {
    let Some(start) = html.find("<form") else {
        // No form to nest — graft on a dangling one instead.
        return format!("{html}<form action=\"/q\"><input name=\"q\">");
    };
    let Some(close_rel) = html[start..].find("</form>") else {
        return format!("{html}</form></form>");
    };
    let close = start + close_rel;
    let block = &html[start..close + "</form>".len()];
    let copies = rng.range_usize(1, 3);
    let mut out = String::with_capacity(html.len() + block.len() * copies);
    out.push_str(&html[..close]);
    for _ in 0..copies {
        out.push_str(block); // a full <form>…</form> inside the outer form
    }
    out.push_str(&html[close..]);
    out
}

fn control_chars(html: &str, rng: &mut CheckRng) -> String {
    const CTRL: [char; 8] = [
        '\u{0}', '\u{1}', '\u{8}', '\u{b}', '\u{c}', '\u{e}', '\u{1f}', '\u{7f}',
    ];
    let mut out = html.to_owned();
    for _ in 0..rng.range_usize(4, 16) {
        let at = random_boundary(&out, rng);
        out.insert(at, *rng.pick(&CTRL).unwrap_or(&'\u{0}'));
    }
    out
}

fn mega_attribute(html: &str, rng: &mut CheckRng) -> String {
    // 200 KB – 1.6 MB of attribute value: straddles the default 1 MiB soft
    // size limit, so some pages truncate and some merely bloat. Target a
    // random tag — when the bloat lands late in the page, truncation keeps
    // the content before it and the page survives degraded.
    let size = rng.range_usize(200_000, 1_600_000);
    let value = "A".repeat(size);
    let closes: Vec<usize> = html.match_indices('>').map(|(i, _)| i).collect();
    let Some(&insert_at) = rng.pick(&closes) else {
        return format!("<div data-bloat=\"{value}\">{html}");
    };
    let mut out = String::with_capacity(html.len() + size + 16);
    out.push_str(&html[..insert_at]);
    out.push_str(" data-bloat=\"");
    out.push_str(&value);
    out.push('"');
    out.push_str(&html[insert_at..]);
    out
}

fn entity_bomb(html: &str, rng: &mut CheckRng) -> String {
    const BOMBS: [&str; 4] = ["&amp;", "&lt;", "&#x41;", "&bogus;"];
    let reps = rng.range_usize(2_000, 20_000);
    let unit = *rng.pick(&BOMBS).unwrap_or(&"&amp;");
    let at = random_boundary(html, rng);
    let mut out = String::with_capacity(html.len() + unit.len() * reps);
    out.push_str(&html[..at]);
    for _ in 0..reps {
        out.push_str(unit);
    }
    out.push_str(&html[at..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = "<html><head><title>Cheap Flights</title></head><body>\
        <p>Book airfare to Paris &amp; beyond.</p>\
        <form action=\"/search\"><label>From</label><input name=\"from\">\
        <select name=\"class\"><option>coach</option></select></form>\
        </body></html>";

    #[test]
    fn same_seed_same_bytes() {
        for index in [0usize, 1, 17] {
            let a = mutate_page(PAGE, &Mutation::ALL, 3, &mut page_rng(7, index));
            let b = mutate_page(PAGE, &Mutation::ALL, 3, &mut page_rng(7, index));
            assert_eq!(a, b, "page {index} must mutate identically");
        }
    }

    #[test]
    fn different_indices_diverge() {
        let a = mutate_page(PAGE, &Mutation::ALL, 3, &mut page_rng(7, 0));
        let b = mutate_page(PAGE, &Mutation::ALL, 3, &mut page_rng(7, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn every_mutation_handles_normal_and_empty_input() {
        for m in Mutation::ALL {
            let mut rng = page_rng(3, 0);
            let mutated = apply(PAGE, m, &mut rng);
            assert!(std::str::from_utf8(mutated.as_bytes()).is_ok());
            // Empty and tag-free inputs must not panic either.
            apply("", m, &mut rng);
            apply("just plain text, no markup", m, &mut rng);
            apply("héllo wörld \u{1F600}", m, &mut rng);
        }
    }

    #[test]
    fn nest_forms_yields_nested_form() {
        let mut rng = page_rng(5, 0);
        let out = nest_forms(PAGE, &mut rng);
        assert!(out.matches("<form").count() >= 2);
        // The copy lands before the outer close: nested, not sibling.
        let first_close = out.find("</form>").expect("close tag");
        let second_open = out.match_indices("<form").nth(1).expect("second form").0;
        assert!(second_open < first_close || out.matches("</form>").count() >= 2);
    }

    #[test]
    fn deep_nest_is_balanced_and_deep() {
        let mut rng = page_rng(9, 0);
        let out = deep_nest(PAGE, &mut rng);
        let opens = out.matches("<div>").count();
        assert!(opens >= 300);
        assert_eq!(opens, out.matches("</div>").count());
    }

    #[test]
    fn parse_list_roundtrip() {
        assert_eq!(
            Mutation::parse_list("all").expect("all"),
            Mutation::ALL.to_vec()
        );
        let picked = Mutation::parse_list("entity-bomb, control-chars").expect("labels parse");
        assert_eq!(picked, vec![Mutation::EntityBomb, Mutation::ControlChars]);
        assert!(Mutation::parse_list("fizzbuzz").is_err());
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.label()), Some(m));
        }
    }

    #[test]
    fn truncations_shorten_or_break_structure() {
        let mut rng = page_rng(11, 2);
        let cut = truncate_mid_tag(PAGE, &mut rng);
        assert!(cut.len() < PAGE.len());
        let ent = truncate_mid_entity(PAGE, &mut rng);
        let tail = ent.rsplit('&').next().expect("stub after last ampersand");
        assert!(
            !tail.contains(';'),
            "trailing entity must be unterminated: {tail:?}"
        );
    }
}
