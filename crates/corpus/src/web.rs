//! Synthesis of the whole web: form pages with sites, hub/directory pages,
//! and the backlink structure of §3.1.
//!
//! The generator is the substitution for the paper's data acquisition
//! (UIUC repository + crawler + AltaVista backlinks). Its defaults are
//! calibrated to the corpus statistics the paper reports:
//!
//! * 454 form pages across 8 domains, 56 of them single-attribute;
//! * up to 100 backlinks per page; >15 % of form pages with no direct
//!   backlinks (their hubs point at the site root instead, exercising the
//!   paper's root-page fallback);
//! * thousands of distinct hub co-citation sets, ~69 % of them homogeneous
//!   (controlled by `hub_contamination`), with mixed online directories
//!   providing the heterogeneous remainder;
//! * the Table-1 anticorrelation between form size and page content.

use crate::domain::Domain;
use crate::formgen::{LabelStyle, NonSearchableKind};
use crate::pagegen::{self, FormPageParams};
use crate::text_gen;
use cafc_webgraph::{PageId, Url, WebGraph};
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Generator configuration. `Default` reproduces the paper's corpus scale.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Total searchable form pages (paper: 454).
    pub total_form_pages: usize,
    /// How many of them are single-attribute (paper: 56).
    pub single_attribute_count: usize,
    /// Non-searchable form pages (login/signup/quote/newsletter) added to
    /// exercise the searchable-form classifier.
    pub non_searchable_count: usize,
    /// Domain-directory hubs per domain.
    pub hubs_per_domain: usize,
    /// Cross-domain directory hubs.
    pub mixed_hubs: usize,
    /// Probability that a domain hub is contaminated with pages from a
    /// neighbouring domain (drives hub-cluster homogeneity toward ~69 %).
    pub hub_contamination: f64,
    /// Fraction of form pages receiving no direct backlinks (paper: >15 %).
    pub no_backlink_fraction: f64,
    /// Of the backlinkless pages, the fraction whose *site root* receives
    /// hub links instead (the rest stay uncovered).
    pub root_hub_fraction: f64,
    /// RNG seed; same seed → identical web.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            total_form_pages: 454,
            single_attribute_count: 56,
            non_searchable_count: 60,
            hubs_per_domain: 420,
            mixed_hubs: 120,
            hub_contamination: 0.25,
            no_backlink_fraction: 0.16,
            root_hub_fraction: 0.8,
            seed: 3,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for fast unit/integration tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            total_form_pages: 80,
            single_attribute_count: 10,
            non_searchable_count: 12,
            hubs_per_domain: 40,
            mixed_hubs: 16,
            seed,
            ..CorpusConfig::default()
        }
    }
}

/// One generated searchable form page.
#[derive(Debug, Clone)]
pub struct FormPageRecord {
    /// The page in the graph.
    pub page: PageId,
    /// Gold-standard domain label.
    pub domain: Domain,
    /// Whether the form has exactly one fillable attribute.
    pub single_attribute: bool,
    /// Whether the page was denied direct backlinks (hub links, if any,
    /// point at its site root).
    pub backlinkless: bool,
}

/// The generated web.
#[derive(Debug)]
pub struct SyntheticWeb {
    /// Pages and links; form pages, roots and hubs all carry HTML.
    pub graph: WebGraph,
    /// The searchable form pages with gold labels, in generation order.
    pub form_pages: Vec<FormPageRecord>,
    /// Non-searchable form pages (classifier workload).
    pub non_searchable: Vec<PageId>,
    /// All hub pages.
    pub hubs: Vec<PageId>,
    /// A portal page linking to every hub and site root (crawler entry).
    pub portal: PageId,
}

impl SyntheticWeb {
    /// Gold labels aligned with `form_pages` order.
    pub fn labels(&self) -> Vec<Domain> {
        self.form_pages.iter().map(|r| r.domain).collect()
    }

    /// Page ids aligned with `form_pages` order.
    pub fn form_page_ids(&self) -> Vec<PageId> {
        self.form_pages.iter().map(|r| r.page).collect()
    }
}

/// Form-size classes of Table 1. Shared with the sharded generator
/// (`crate::shard`), which reuses the same class mix and budgets so its
/// pages are statistically indistinguishable from `generate`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SizeClass {
    Tiny,   // < 10 form terms
    Small,  // [10, 50)
    Medium, // [50, 100)
    Large,  // [100, 200)
    Huge,   // >= 200
}

impl SizeClass {
    pub(crate) fn sample<R: Rng>(rng: &mut R) -> SizeClass {
        // Multi-attribute class mix; singles are Tiny by construction.
        match rng.random_range(0..100) {
            0..=7 => SizeClass::Tiny,
            8..=47 => SizeClass::Small,
            48..=70 => SizeClass::Medium,
            71..=88 => SizeClass::Large,
            _ => SizeClass::Huge,
        }
    }

    pub(crate) fn form_budget<R: Rng>(self, rng: &mut R) -> usize {
        match self {
            SizeClass::Tiny => rng.random_range(4..9),
            SizeClass::Small => rng.random_range(14..46),
            SizeClass::Medium => rng.random_range(54..96),
            SizeClass::Large => rng.random_range(108..190),
            SizeClass::Huge => rng.random_range(205..320),
        }
    }

    /// Page-content budget: Table 1's anticorrelation. Mid-row targets are
    /// the paper's measured averages (131 / 76 / 83).
    pub(crate) fn page_budget<R: Rng>(self, rng: &mut R) -> usize {
        match self {
            SizeClass::Tiny => rng.random_range(210..380),
            SizeClass::Small => rng.random_range(95..170),
            SizeClass::Medium => rng.random_range(50..105),
            SizeClass::Large => rng.random_range(55..115),
            SizeClass::Huge => rng.random_range(18..50),
        }
    }
}

/// Generate the synthetic web.
pub fn generate(config: &CorpusConfig) -> SyntheticWeb {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut graph = WebGraph::new();
    let mut form_pages: Vec<FormPageRecord> = Vec::with_capacity(config.total_form_pages);

    // ---- form pages with their sites --------------------------------
    let per_domain = config.total_form_pages / Domain::ALL.len();
    let remainder = config.total_form_pages % Domain::ALL.len();
    let singles_per_domain = config.single_attribute_count / Domain::ALL.len();

    let mut site_no = 0usize;
    for (di, &domain) in Domain::ALL.iter().enumerate() {
        let count = per_domain + usize::from(di < remainder);
        for k in 0..count {
            let single = k < singles_per_domain
                || (k == count - 1 && di < config.single_attribute_count % Domain::ALL.len());
            let host = format!("www.{}{}.com", domain.name(), site_no);
            site_no += 1;
            let site_name = format!(
                "{}{}",
                text_gen::title_phrase(&mut rng, domain).replace(' ', ""),
                site_no
            );
            let (single_style, class) = if single {
                let style = match rng.random_range(0..10) {
                    0..=5 => LabelStyle::Inside,
                    6..=8 => LabelStyle::Outside,
                    _ => LabelStyle::None,
                };
                (Some(style), SizeClass::Tiny)
            } else {
                (None, SizeClass::sample(&mut rng))
            };
            // A slice of Music/Movie sites genuinely serve both domains
            // (the paper's Figure 4) — the main driver of its §4.2 errors.
            let hybrid =
                matches!(domain, Domain::Music | Domain::Movie) && !single && rng.random_bool(0.16);
            let params = FormPageParams {
                domain,
                single: single_style,
                form_term_budget: class.form_budget(&mut rng),
                page_term_budget: class.page_budget(&mut rng),
                site_name,
                hybrid,
            };
            let html = pagegen::form_page(&mut rng, &params);
            let form_url = Url::from_parts("http", &host, "/search.html");
            let page = graph.add_page(form_url.clone(), html);

            // Site root links to the form page (an intra-site backlink that
            // hub construction must filter out).
            let root_html =
                pagegen::site_root_page(&mut rng, domain, &params.site_name, "/search.html");
            let root = graph.add_page(Url::from_parts("http", &host, "/"), root_html);
            graph.add_link(root, page);
            graph.add_link(page, root);

            form_pages.push(FormPageRecord {
                page,
                domain,
                single_attribute: single,
                backlinkless: false,
            });
        }
    }

    // ---- deny direct backlinks to a fraction of pages ----------------
    let deny_count =
        (config.total_form_pages as f64 * config.no_backlink_fraction).round() as usize;
    let deny: Vec<usize> =
        rand::seq::index::sample(&mut rng, form_pages.len(), deny_count.min(form_pages.len()))
            .into_vec();
    let mut root_hub_ok = vec![false; form_pages.len()];
    for &i in &deny {
        form_pages[i].backlinkless = true;
        root_hub_ok[i] = rng.random_bool(config.root_hub_fraction);
    }

    // The hub link target for form page i: the form page itself, its site
    // root, or None (uncovered).
    let link_target = |graph: &WebGraph, rec: &FormPageRecord, ok_root: bool| -> Option<PageId> {
        if !rec.backlinkless {
            return Some(rec.page);
        }
        if ok_root {
            let root = graph.url(rec.page).site_root();
            return graph.page_id(&root);
        }
        None
    };

    // ---- hub pages ----------------------------------------------------
    let mut hubs: Vec<PageId> = Vec::new();
    let by_domain: Vec<Vec<usize>> = Domain::ALL
        .iter()
        .map(|&d| {
            form_pages
                .iter()
                .enumerate()
                .filter(|(_, r)| r.domain == d)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut hub_no = 0usize;
    let mut make_hub = |graph: &mut WebGraph,
                        rng: &mut SmallRng,
                        topic: Option<Domain>,
                        member_idxs: &[usize],
                        form_pages: &[FormPageRecord],
                        root_hub_ok: &[bool]|
     -> Option<PageId> {
        let mut links: Vec<(String, String)> = Vec::new();
        let mut targets: Vec<PageId> = Vec::new();
        for &idx in member_idxs {
            let rec = &form_pages[idx];
            if let Some(target) = link_target(graph, rec, root_hub_ok[idx]) {
                let anchor = text_gen::title_phrase(rng, rec.domain).to_lowercase();
                links.push((graph.url(target).to_string(), anchor));
                targets.push(target);
            }
        }
        if targets.is_empty() {
            return None;
        }
        let html = pagegen::hub_page(rng, topic, &links);
        hub_no += 1;
        let hub_url = Url::from_parts("http", &format!("dir{hub_no}.example.org"), "/");
        let hub = graph.add_page(hub_url, html);
        for t in targets {
            graph.add_link(hub, t);
        }
        Some(hub)
    };

    for (di, &domain) in Domain::ALL.iter().enumerate() {
        let pool = &by_domain[di];
        for _ in 0..config.hubs_per_domain {
            // Heavily small-skewed: the paper found only 164 of 3,450 hub
            // clusters with cardinality >= 8.
            let size = match rng.random_range(0..1000) {
                0..=699 => rng.random_range(1..=3),
                700..=929 => rng.random_range(4..=7),
                930..=984 => rng.random_range(8..=15),
                _ => rng.random_range(16..=30),
            }
            .min(pool.len());
            let mut members: Vec<usize> = rand::seq::index::sample(&mut rng, pool.len(), size)
                .into_iter()
                .map(|j| pool[j])
                .collect();
            // Contamination: mix in a few pages from the neighbour domain.
            if rng.random_bool(config.hub_contamination) {
                let other = text_gen::neighbour(domain);
                let opool = &by_domain[other.index()];
                let extra = rng.random_range(1..=3).min(opool.len());
                members.extend(
                    rand::seq::index::sample(&mut rng, opool.len(), extra)
                        .into_iter()
                        .map(|j| opool[j]),
                );
            }
            if let Some(h) = make_hub(
                &mut graph,
                &mut rng,
                Some(domain),
                &members,
                &form_pages,
                &root_hub_ok,
            ) {
                hubs.push(h);
            }
        }
    }
    // Mixed (cross-domain) directories.
    for _ in 0..config.mixed_hubs {
        let size = rng.random_range(8..=40).min(form_pages.len());
        let members: Vec<usize> =
            rand::seq::index::sample(&mut rng, form_pages.len(), size).into_vec();
        if let Some(h) = make_hub(
            &mut graph,
            &mut rng,
            None,
            &members,
            &form_pages,
            &root_hub_ok,
        ) {
            hubs.push(h);
        }
    }

    // ---- non-searchable pages ----------------------------------------
    let mut non_searchable = Vec::new();
    for i in 0..config.non_searchable_count {
        let kind = NonSearchableKind::ALL[i % NonSearchableKind::ALL.len()];
        // A config with zero form pages has no hosts to hang these off.
        let Some(rec) = form_pages.choose(&mut rng) else {
            break;
        };
        let domain = rec.domain;
        let host = graph.url(rec.page).host().to_owned();
        let path = format!("/{}{}.html", kind_path(kind), i);
        let html = pagegen::non_searchable_page(&mut rng, kind, domain, 60);
        let page = graph.add_page(Url::from_parts("http", &host, &path), html);
        // Reachable from the site root.
        if let Some(root) = graph.page_id(&Url::from_parts("http", &host, "/")) {
            graph.add_link(root, page);
        }
        non_searchable.push(page);
    }

    // ---- portal -------------------------------------------------------
    let mut portal_links: Vec<(String, String)> = Vec::new();
    for &h in &hubs {
        portal_links.push((graph.url(h).to_string(), "directory".to_owned()));
    }
    for rec in &form_pages {
        let root = graph.url(rec.page).site_root();
        portal_links.push((root.to_string(), "site".to_owned()));
    }
    // Non-searchable pages are reachable too, so the crawler's classifier
    // actually gets exercised on them.
    for &p in &non_searchable {
        portal_links.push((graph.url(p).to_string(), "page".to_owned()));
    }
    let portal_html = pagegen::hub_page(&mut rng, None, &portal_links);
    let portal = graph.add_page(
        Url::from_parts("http", "portal.example.org", "/"),
        portal_html,
    );
    let portal_targets: Vec<PageId> = hubs
        .iter()
        .copied()
        .chain(
            form_pages
                .iter()
                .filter_map(|r| graph.page_id(&graph.url(r.page).site_root())),
        )
        .chain(non_searchable.iter().copied())
        .collect();
    for t in portal_targets {
        graph.add_link(portal, t);
    }

    SyntheticWeb {
        graph,
        form_pages,
        non_searchable,
        hubs,
        portal,
    }
}

fn kind_path(kind: NonSearchableKind) -> &'static str {
    match kind {
        NonSearchableKind::Login => "login",
        NonSearchableKind::Signup => "register",
        NonSearchableKind::QuoteRequest => "quote",
        NonSearchableKind::Newsletter => "newsletter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_web() -> SyntheticWeb {
        generate(&CorpusConfig::small(42))
    }

    #[test]
    fn page_counts_match_config() {
        let web = small_web();
        let cfg = CorpusConfig::small(42);
        assert_eq!(web.form_pages.len(), cfg.total_form_pages);
        assert_eq!(web.non_searchable.len(), cfg.non_searchable_count);
        let singles = web.form_pages.iter().filter(|r| r.single_attribute).count();
        assert_eq!(singles, cfg.single_attribute_count);
    }

    #[test]
    fn all_domains_represented() {
        let web = small_web();
        for d in Domain::ALL {
            assert!(
                web.form_pages.iter().any(|r| r.domain == d),
                "no pages for {d:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&CorpusConfig::small(7));
        let b = generate(&CorpusConfig::small(7));
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.num_links(), b.graph.num_links());
        let urls_a: Vec<String> = a
            .form_pages
            .iter()
            .map(|r| a.graph.url(r.page).to_string())
            .collect();
        let urls_b: Vec<String> = b
            .form_pages
            .iter()
            .map(|r| b.graph.url(r.page).to_string())
            .collect();
        assert_eq!(urls_a, urls_b);
    }

    #[test]
    fn form_pages_have_html_and_forms() {
        let web = small_web();
        for rec in &web.form_pages {
            let html = web.graph.html(rec.page).expect("form page has HTML");
            let doc = cafc_html::parse(html);
            let forms = cafc_html::extract_forms(&doc);
            assert_eq!(forms.len(), 1, "page {}", web.graph.url(rec.page));
            assert_eq!(
                forms[0].is_single_attribute(),
                rec.single_attribute,
                "single-attribute flag mismatch on {}",
                web.graph.url(rec.page)
            );
        }
    }

    #[test]
    fn backlinkless_fraction_enforced() {
        let web = small_web();
        let cfg = CorpusConfig::small(42);
        let denied = web.form_pages.iter().filter(|r| r.backlinkless).count();
        let expect = (cfg.total_form_pages as f64 * cfg.no_backlink_fraction).round() as usize;
        assert_eq!(denied, expect);
        // Denied pages have no external backlinks (only their own site's).
        for rec in web.form_pages.iter().filter(|r| r.backlinkless) {
            for &h in web.graph.in_links(rec.page) {
                assert!(
                    web.graph.url(h).same_site(web.graph.url(rec.page)),
                    "backlinkless page has external backlink"
                );
            }
        }
    }

    #[test]
    fn hubs_point_at_form_pages() {
        let web = small_web();
        assert!(!web.hubs.is_empty());
        let form_ids: Vec<PageId> = web.form_page_ids();
        let mut hub_link_count = 0;
        for &h in &web.hubs {
            for &t in web.graph.out_links(h) {
                if form_ids.contains(&t) {
                    hub_link_count += 1;
                }
            }
        }
        assert!(hub_link_count > web.form_pages.len(), "hubs too sparse");
    }

    #[test]
    fn portal_reaches_hubs_and_roots() {
        let web = small_web();
        let out = web.graph.out_links(web.portal);
        assert!(out.len() >= web.hubs.len());
    }

    #[test]
    fn most_form_pages_have_external_backlinks() {
        let web = small_web();
        let with_ext = web
            .form_pages
            .iter()
            .filter(|r| {
                web.graph
                    .in_links(r.page)
                    .iter()
                    .any(|&h| !web.graph.url(h).same_site(web.graph.url(r.page)))
            })
            .count();
        assert!(
            with_ext as f64 > web.form_pages.len() as f64 * 0.7,
            "only {with_ext} of {} pages have external backlinks",
            web.form_pages.len()
        );
    }
}
