//! Generation of `<form>` fragments.
//!
//! Reproduces the form phenomenology the paper describes: multi-attribute
//! forms with heterogeneous label choices (Figure 1(a)/(b): "Job Category"
//! vs "Industry", "State" vs "Location"), single-attribute keyword boxes
//! whose label may sit inside the form, *outside* the FORM tags (Figure
//! 1(c)), or be missing entirely (GIF-button forms), and the
//! non-searchable forms (login, signup, quote request) that the crawler
//! retrieves and the classifier must filter out.

use crate::domain::{Domain, MONTHS};
use rand::seq::IndexedRandom;
use rand::Rng;

/// How a single-attribute form is labelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelStyle {
    /// Label text inside the form ("Keywords: \[____\]").
    Inside,
    /// Label text immediately *before* the form tags — Figure 1(c).
    Outside,
    /// No textual label at all (image submit button).
    None,
}

/// Kinds of non-searchable forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonSearchableKind {
    /// Username/password login.
    Login,
    /// Account registration.
    Signup,
    /// Request-a-quote contact form.
    QuoteRequest,
    /// Newsletter subscription.
    Newsletter,
}

impl NonSearchableKind {
    /// All kinds, for round-robin generation.
    pub const ALL: [NonSearchableKind; 4] = [
        NonSearchableKind::Login,
        NonSearchableKind::Signup,
        NonSearchableKind::QuoteRequest,
        NonSearchableKind::Newsletter,
    ];
}

/// A generated form fragment. `before_form` carries any label text that
/// belongs *outside* the form tags.
#[derive(Debug, Clone)]
pub struct FormFragment {
    /// HTML to place immediately before the `<form>`.
    pub before_form: String,
    /// The `<form>...</form>` element.
    pub form: String,
    /// Approximate number of word tokens inside the form.
    pub approx_terms: usize,
}

fn cap(word: &str) -> String {
    let mut cs = word.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// A submit control: text button (usually) or image button.
fn submit_control<R: Rng>(rng: &mut R, domain: Domain) -> (String, usize) {
    let verb = ["Search", "Find", "Go", "Show"]
        .choose(rng)
        .unwrap_or(&"Search");
    if rng.random_bool(0.15) {
        (
            format!(
                r#"<input type="image" src="/img/{}_go.gif">"#,
                domain.name()
            ),
            0,
        )
    } else {
        let label = if rng.random_bool(0.5) {
            format!("{verb} {}", domain.action_object())
        } else {
            (*verb).to_owned()
        };
        let terms = label.split_whitespace().count();
        (format!(r#"<input type="submit" value="{label}">"#), terms)
    }
}

/// A multi-attribute form aiming at `term_budget` word tokens inside the
/// form (labels + option values + button labels).
pub fn multi_attribute_form<R: Rng>(
    rng: &mut R,
    domain: Domain,
    term_budget: usize,
) -> FormFragment {
    blended_multi_attribute_form(rng, domain, None, term_budget)
}

/// Like [`multi_attribute_form`], but when `blend` is set roughly half the
/// fields draw their labels and options from the blend domain — the
/// paper's Figure-4 phenomenon: one form searching two database domains
/// (e.g. a store selling both CDs and DVDs).
pub fn blended_multi_attribute_form<R: Rng>(
    rng: &mut R,
    domain: Domain,
    blend: Option<Domain>,
    term_budget: usize,
) -> FormFragment {
    let mut parts: Vec<String> = Vec::new();
    let mut terms = 0usize;
    let mut field_no = 0usize;
    // Enough fields to plausibly reach the budget (selects carry ~10-25
    // terms each), with small forms staying small.
    let max_fields = (term_budget / 6).clamp(2, 26);

    while field_no < max_fields && (terms + 4 <= term_budget || field_no < 2) {
        // A blended form draws about half its fields from the blend domain.
        let field_domain = match blend {
            Some(b) if rng.random_bool(0.5) => b,
            _ => domain,
        };
        let schema = field_domain.schema_terms();
        let label = *schema.choose(rng).unwrap_or(&"keywords");
        let label_html = format!("<b>{}:</b>", cap(label));
        terms += 1;
        let remaining = term_budget.saturating_sub(terms);
        let make_select = remaining >= 8 && rng.random_bool(0.7);
        if make_select {
            let pool: Vec<&str> = if rng.random_bool(0.12) {
                MONTHS.to_vec()
            } else {
                field_domain.option_values().to_vec()
            };
            let n_opts = rng
                .random_range(3..=24)
                .min(remaining.max(3))
                .min(pool.len());
            let mut opts = String::new();
            for _ in 0..n_opts {
                let v = pool.choose(rng).unwrap_or(&"any");
                opts.push_str(&format!("<option>{}</option>", cap(v)));
                terms += 1;
            }
            parts.push(format!(
                "{label_html} <select name=\"{label}\">{opts}</select><br>"
            ));
        } else {
            parts.push(format!(
                "{label_html} <input type=\"text\" name=\"{label}\" size=\"20\"><br>"
            ));
        }
        field_no += 1;
    }
    let (submit, submit_terms) = submit_control(rng, domain);
    terms += submit_terms;
    parts.push(submit);
    FormFragment {
        before_form: String::new(),
        form: format!(
            "<form action=\"/search\" method=\"get\">\n{}\n</form>",
            parts.join("\n")
        ),
        approx_terms: terms,
    }
}

/// A single-attribute keyword form with the chosen label style.
pub fn single_attribute_form<R: Rng>(
    rng: &mut R,
    domain: Domain,
    style: LabelStyle,
) -> FormFragment {
    let caption = if rng.random_bool(0.75) {
        format!("Search {}", domain.action_object())
    } else {
        ["Search", "Quick Search", "Keywords"]
            .choose(rng)
            .unwrap_or(&"Search")
            .to_string()
    };
    // A label-less form still almost always has *some* visible button text
    // (even GIF-button sites typically keep a text submit nearby), so force
    // a text submit for LabelStyle::None; the FC vector stays tiny but not
    // empty, matching the paper's observation that only one pathological
    // single-attribute page (few terms in form AND page) was misclustered.
    let (submit, submit_terms) = if style == LabelStyle::None {
        let label = format!("Search {}", domain.action_object());
        let terms = label.split_whitespace().count();
        (format!(r#"<input type="submit" value="{label}">"#), terms)
    } else {
        submit_control(rng, domain)
    };
    let (before, inside, label_terms) = match style {
        LabelStyle::Inside => (
            String::new(),
            format!("{caption} "),
            caption.split_whitespace().count(),
        ),
        LabelStyle::Outside => (format!("<b>{caption}</b>"), String::new(), 0),
        LabelStyle::None => (String::new(), String::new(), 0),
    };
    FormFragment {
        before_form: before,
        form: format!(
            "<form action=\"/find\" method=\"get\">{inside}<input type=\"text\" name=\"q\" size=\"30\"> {submit}</form>"
        ),
        approx_terms: label_terms + submit_terms,
    }
}

/// A non-searchable form of the given kind.
pub fn non_searchable_form<R: Rng>(rng: &mut R, kind: NonSearchableKind) -> FormFragment {
    let form = match kind {
        NonSearchableKind::Login => concat!(
            "<form action=\"/login\" method=\"post\">",
            "Username: <input type=\"text\" name=\"user\"><br>",
            "Password: <input type=\"password\" name=\"pass\"><br>",
            "<input type=\"checkbox\" name=\"remember\"> Remember me ",
            "<input type=\"submit\" value=\"Login\"></form>"
        )
        .to_owned(),
        NonSearchableKind::Signup => concat!(
            "<form action=\"/register\" method=\"post\">",
            "Name: <input type=\"text\" name=\"name\"><br>",
            "Email: <input type=\"text\" name=\"email\"><br>",
            "Password: <input type=\"password\" name=\"pw\"><br>",
            "Confirm Password: <input type=\"password\" name=\"pw2\"><br>",
            "<input type=\"submit\" value=\"Create Account\"></form>"
        )
        .to_owned(),
        NonSearchableKind::QuoteRequest => concat!(
            "<form action=\"/quote\" method=\"post\">",
            "Your Name: <input type=\"text\" name=\"name\"><br>",
            "Phone: <input type=\"text\" name=\"phone\"><br>",
            "Email: <input type=\"text\" name=\"email\"><br>",
            "Comments: <textarea name=\"comments\"></textarea><br>",
            "<input type=\"submit\" value=\"Request Quote\"></form>"
        )
        .to_owned(),
        NonSearchableKind::Newsletter => concat!(
            "<form action=\"/subscribe\" method=\"post\">",
            "Enter your email address to subscribe: ",
            "<input type=\"text\" name=\"email\"> ",
            "<input type=\"submit\" value=\"Subscribe\"></form>"
        )
        .to_owned(),
    };
    // Small randomized marker comment keeps pages distinct without
    // affecting extracted text.
    let nonce: u32 = rng.random();
    FormFragment {
        before_form: String::new(),
        form: format!("<!-- f{nonce} -->{form}"),
        approx_terms: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_html::{extract_forms, parse};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn parse_fragment(frag: &FormFragment) -> cafc_html::Form {
        let doc = parse(&format!("{}{}", frag.before_form, frag.form));
        let mut forms = extract_forms(&doc);
        assert_eq!(forms.len(), 1);
        forms.remove(0)
    }

    #[test]
    fn multi_attribute_parses_and_is_multi() {
        let mut rng = SmallRng::seed_from_u64(10);
        for domain in Domain::ALL {
            let frag = multi_attribute_form(&mut rng, domain, 60);
            let form = parse_fragment(&frag);
            assert!(
                form.visible_field_count() >= 2,
                "{domain:?}: expected multi-attribute, got {}",
                form.visible_field_count()
            );
        }
    }

    #[test]
    fn multi_attribute_tracks_budget() {
        let mut rng = SmallRng::seed_from_u64(11);
        for budget in [15, 60, 150, 250] {
            let frag = multi_attribute_form(&mut rng, Domain::Airfare, budget);
            // Loose sanity: generated approx_terms should be in the budget's
            // ballpark (between a third and double).
            assert!(
                frag.approx_terms >= budget / 3 && frag.approx_terms <= budget * 2,
                "budget {budget}, got {}",
                frag.approx_terms
            );
        }
    }

    #[test]
    fn single_attribute_is_single() {
        let mut rng = SmallRng::seed_from_u64(12);
        for style in [LabelStyle::Inside, LabelStyle::Outside, LabelStyle::None] {
            let frag = single_attribute_form(&mut rng, Domain::Job, style);
            let form = parse_fragment(&frag);
            assert!(form.is_single_attribute(), "style {style:?}");
        }
    }

    #[test]
    fn outside_label_is_outside() {
        let mut rng = SmallRng::seed_from_u64(13);
        let frag = single_attribute_form(&mut rng, Domain::Job, LabelStyle::Outside);
        assert!(!frag.before_form.is_empty());
        let form = parse_fragment(&frag);
        // The inner text must not contain the caption.
        assert!(
            !form.inner_text.to_lowercase().contains("search"),
            "caption leaked into the form: {:?}",
            form.inner_text
        );
    }

    #[test]
    fn login_form_has_password() {
        let mut rng = SmallRng::seed_from_u64(14);
        let frag = non_searchable_form(&mut rng, NonSearchableKind::Login);
        let form = parse_fragment(&frag);
        assert!(form.has_password_field());
    }

    #[test]
    fn all_non_searchable_kinds_parse() {
        let mut rng = SmallRng::seed_from_u64(15);
        for kind in NonSearchableKind::ALL {
            let frag = non_searchable_form(&mut rng, kind);
            let form = parse_fragment(&frag);
            assert!(!form.fields.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn selects_have_options() {
        let mut rng = SmallRng::seed_from_u64(16);
        let frag = multi_attribute_form(&mut rng, Domain::Auto, 200);
        let form = parse_fragment(&frag);
        assert!(
            !form.option_texts.is_empty(),
            "a 200-term form should include selects"
        );
    }
}
