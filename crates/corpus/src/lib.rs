//! # cafc-corpus
//!
//! A synthetic deep-web generator substituting for the paper's data
//! acquisition (the UIUC repository, a form-focused crawler, and AltaVista
//! `link:` backlinks — none of which are available offline).
//!
//! The generator emits a full [`SyntheticWeb`]: real HTML form pages for
//! the paper's eight database domains (with gold labels recorded at
//! creation), site roots, non-searchable forms, hub/directory pages, and a
//! backlink structure — all calibrated to the corpus statistics the paper
//! reports. See `DESIGN.md` §2 for the substitution rationale: the
//! clustering pipeline consumes only parsed HTML text and link structure,
//! both of which this generator produces with the paper's measured
//! characteristics (vocabulary overlap between Music/Movie, the Table-1
//! form-size/page-size anticorrelation, ~69 % homogeneous hub clusters,
//! >15 % backlink-less pages).
//!
//! ```
//! use cafc_corpus::{generate, CorpusConfig};
//!
//! let web = generate(&CorpusConfig::small(1));
//! assert_eq!(web.form_pages.len(), 80);
//! // Every form page carries real, parseable HTML:
//! let html = web.graph.html(web.form_pages[0].page).unwrap();
//! assert_eq!(cafc_html::extract_forms(&cafc_html::parse(html)).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod domain;
pub mod export;
pub mod formgen;
pub mod mutate;
pub mod pagegen;
pub mod shard;
pub mod stats;
pub mod text_gen;
pub mod web;

pub use domain::{Domain, GENERIC_TERMS};
pub use export::{export_web, load_web, LoadedWeb, ManifestPage};
pub use formgen::{LabelStyle, NonSearchableKind};
pub use mutate::{mutate_page, page_rng, Mutation};
pub use shard::{
    generate_page, generate_shard, generate_sharded, generate_sharded_exec, ShardedCorpusConfig,
};
pub use stats::{count_terms, table1, PageTermCounts, Table1Row};
pub use web::{generate, CorpusConfig, FormPageRecord, SyntheticWeb};
