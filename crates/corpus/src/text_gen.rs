//! Word and sentence sampling for synthetic pages.
//!
//! Pages must look like real web text to the pipeline: domain vocabulary
//! mixed with ubiquitous generic noise, repeated draws producing realistic
//! term frequencies, and a controllable amount of cross-domain
//! contamination (the vocabulary-overlap effect behind the paper's
//! Music/Movie confusions).

use crate::domain::{Domain, GENERIC_TERMS};
use rand::seq::IndexedRandom;
use rand::Rng;

/// Mixing proportions for body text.
#[derive(Debug, Clone, Copy)]
pub struct TextMix {
    /// Probability of drawing a domain content term.
    pub domain_content: f64,
    /// Probability of drawing a domain schema term.
    pub domain_schema: f64,
    /// Probability of drawing a term from a *neighbouring* domain
    /// (vocabulary contamination); the rest is generic noise.
    pub cross_domain: f64,
}

impl Default for TextMix {
    fn default() -> Self {
        TextMix {
            domain_content: 0.42,
            domain_schema: 0.10,
            cross_domain: 0.06,
        }
    }
}

impl TextMix {
    /// Sample a per-page mix. Real sites vary widely in how "on-topic"
    /// their copy is — the paper's "vocabulary heterogeneity in a domain"
    /// — so each page draws its own domain-content share, and some pages
    /// are heavily contaminated by a neighbouring domain's vocabulary
    /// (the Music/Movie effect of §4.2).
    pub fn sample<R: Rng>(rng: &mut R) -> TextMix {
        TextMix {
            domain_content: rng.random_range(0.16..0.42),
            domain_schema: 0.08,
            cross_domain: rng.random_range(0.07..0.24),
        }
    }
}

/// The domain whose vocabulary most plausibly contaminates `d`'s pages —
/// mirrors the overlaps the paper observed on the real web.
pub fn neighbour(d: Domain) -> Domain {
    match d {
        Domain::Airfare => Domain::Hotel,
        Domain::Auto => Domain::CarRental,
        Domain::Book => Domain::Movie,
        Domain::Hotel => Domain::Airfare,
        Domain::Job => Domain::Book,
        Domain::Movie => Domain::Music,
        Domain::Music => Domain::Movie,
        Domain::CarRental => Domain::Auto,
    }
}

/// Draw one body-text word for `domain`.
pub fn body_word<R: Rng>(rng: &mut R, domain: Domain, mix: &TextMix) -> &'static str {
    let roll: f64 = rng.random();
    if roll < mix.domain_content {
        domain.content_terms().choose(rng).unwrap_or(&"search")
    } else if roll < mix.domain_content + mix.domain_schema {
        domain.schema_terms().choose(rng).unwrap_or(&"search")
    } else if roll < mix.domain_content + mix.domain_schema + mix.cross_domain {
        let n = neighbour(domain);
        n.content_terms().choose(rng).unwrap_or(&"search")
    } else {
        GENERIC_TERMS.choose(rng).unwrap_or(&"search")
    }
}

/// A sentence of `len` words (capitalized first word, trailing period).
pub fn sentence<R: Rng>(rng: &mut R, domain: Domain, mix: &TextMix, len: usize) -> String {
    let mut words: Vec<String> = (0..len)
        .map(|_| body_word(rng, domain, mix).to_owned())
        .collect();
    if let Some(first) = words.first_mut() {
        let mut cs = first.chars();
        if let Some(c) = cs.next() {
            *first = c.to_uppercase().collect::<String>() + cs.as_str();
        }
    }
    words.join(" ") + "."
}

/// A paragraph of sentences totalling approximately `word_budget` words.
pub fn paragraph<R: Rng>(rng: &mut R, domain: Domain, mix: &TextMix, word_budget: usize) -> String {
    let mut out = Vec::new();
    let mut spent = 0;
    while spent < word_budget {
        let len = rng.random_range(6..=12).min(word_budget - spent).max(3);
        out.push(sentence(rng, domain, mix, len));
        spent += len;
    }
    out.join(" ")
}

/// A short phrase (for titles/headings): 2–4 domain words, capitalized.
pub fn title_phrase<R: Rng>(rng: &mut R, domain: Domain) -> String {
    let n = rng.random_range(2..=4);
    (0..n)
        .map(|_| {
            let w = domain.content_terms().choose(rng).unwrap_or(&"search");
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sentence_has_requested_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sentence(&mut rng, Domain::Job, &TextMix::default(), 8);
        assert_eq!(s.split_whitespace().count(), 8);
        assert!(s.ends_with('.'));
    }

    #[test]
    fn paragraph_close_to_budget() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = paragraph(&mut rng, Domain::Book, &TextMix::default(), 100);
        let words = p.split_whitespace().count();
        assert!((95..=115).contains(&words), "got {words} words");
    }

    #[test]
    fn domain_vocabulary_dominates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = TextMix::default();
        let mut domain_hits = 0;
        let n = 2000;
        for _ in 0..n {
            let w = body_word(&mut rng, Domain::Music, &mix);
            if Domain::Music.content_terms().contains(&w)
                || Domain::Music.schema_terms().contains(&w)
            {
                domain_hits += 1;
            }
        }
        let frac = domain_hits as f64 / n as f64;
        assert!(frac > 0.40 && frac < 0.70, "domain fraction {frac}");
    }

    #[test]
    fn cross_domain_contamination_present() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mix = TextMix {
            cross_domain: 0.5,
            domain_content: 0.25,
            domain_schema: 0.0,
        };
        let mut movie_hits = 0;
        for _ in 0..2000 {
            let w = body_word(&mut rng, Domain::Music, &mix);
            // neighbour(Music) = Movie
            if Domain::Movie.content_terms().contains(&w) {
                movie_hits += 1;
            }
        }
        assert!(
            movie_hits > 500,
            "expected heavy contamination, got {movie_hits}"
        );
    }

    #[test]
    fn neighbours_are_symmetric_for_music_movie() {
        assert_eq!(neighbour(Domain::Music), Domain::Movie);
        assert_eq!(neighbour(Domain::Movie), Domain::Music);
    }

    #[test]
    fn title_phrase_capitalized() {
        let mut rng = SmallRng::seed_from_u64(5);
        let t = title_phrase(&mut rng, Domain::Hotel);
        assert!(t
            .split(' ')
            .all(|w| w.chars().next().is_some_and(char::is_uppercase)));
    }
}
