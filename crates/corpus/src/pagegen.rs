//! Whole-page HTML assembly: form pages, site roots, hub/directory pages.

use crate::domain::{Domain, GENERIC_TERMS};
use crate::formgen::{self, FormFragment, LabelStyle, NonSearchableKind};
use crate::text_gen::{self, TextMix};
use rand::seq::IndexedRandom;
use rand::Rng;

/// Parameters for one form page.
#[derive(Debug, Clone)]
pub struct FormPageParams {
    /// The page's database domain.
    pub domain: Domain,
    /// `Some(style)` for a single-attribute keyword form; `None` for a
    /// multi-attribute form.
    pub single: Option<LabelStyle>,
    /// Approximate word tokens inside the form (multi-attribute only).
    pub form_term_budget: usize,
    /// Approximate word tokens outside the form — Table 1's "page terms".
    pub page_term_budget: usize,
    /// Site display name used in the title.
    pub site_name: String,
    /// A *hybrid* page genuinely covers this domain and its neighbour
    /// (the paper's Figure 4: forms searching both Music and Movie
    /// databases). Heavy cross-domain vocabulary.
    pub hybrid: bool,
}

/// Standard footer shared by all generated pages. Deliberately identical
/// everywhere: this is the web-generic noise (`privacy`, `copyright`,
/// `help`, `shop`…) that the TF-IDF weighting has to suppress.
fn footer() -> String {
    "<div class=\"footer\"><a href=\"/\">Home</a> | <a href=\"/about\">About</a> | \
     <a href=\"/help\">Help</a> | <a href=\"/privacy\">Privacy Policy</a> | \
     <a href=\"/terms\">Terms and Conditions</a> | <a href=\"/contact\">Contact</a><br>\
     Copyright all rights reserved. Shop online with secure shopping cart. \
     Sign up for our free email newsletter today.</div>"
        .to_owned()
}

/// A small navigation bar with generic anchors.
fn navbar<R: Rng>(rng: &mut R) -> String {
    let n = rng.random_range(3..=6);
    let links: Vec<String> = (0..n)
        .map(|_| {
            let w = GENERIC_TERMS.choose(rng).unwrap_or(&"home");
            format!("<a href=\"/{w}\">{w}</a>")
        })
        .collect();
    format!("<div class=\"nav\">{}</div>", links.join(" | "))
}

/// Assemble a full form page.
///
/// Body-text volume follows `page_term_budget`, implementing the Table-1
/// anticorrelation the caller chooses between form size and page content.
pub fn form_page<R: Rng>(rng: &mut R, params: &FormPageParams) -> String {
    let mix = if params.hybrid {
        // Figure-4 pages: near-even mixture with the neighbour domain.
        TextMix {
            domain_content: rng.random_range(0.18..0.28),
            domain_schema: 0.06,
            cross_domain: rng.random_range(0.40..0.58),
        }
    } else if params.single.is_some() {
        // Single-attribute (keyword) interfaces sit on content-rich,
        // on-topic pages (Table 1) — that is why CAFC handles them.
        TextMix {
            domain_content: rng.random_range(0.30..0.50),
            domain_schema: 0.05,
            cross_domain: rng.random_range(0.04..0.12),
        }
    } else {
        TextMix::sample(rng)
    };
    let fragment: FormFragment = match params.single {
        Some(style) => formgen::single_attribute_form(rng, params.domain, style),
        None => {
            let blend = params
                .hybrid
                .then(|| crate::text_gen::neighbour(params.domain));
            formgen::blended_multi_attribute_form(
                rng,
                params.domain,
                blend,
                params.form_term_budget,
            )
        }
    };
    let title = format!(
        "{} - {}",
        params.site_name,
        text_gen::title_phrase(rng, params.domain)
    );
    let heading = text_gen::title_phrase(rng, params.domain);

    // Budget the body text. The footer/nav contribute ~30 generic terms on
    // every page; the rest is paragraphs.
    let para_budget = params.page_term_budget.saturating_sub(30);
    let mut paragraphs = Vec::new();
    let mut spent = 0usize;
    while spent < para_budget {
        let chunk = rng.random_range(25..=60).min(para_budget - spent).max(10);
        // Real form pages carry off-topic promos/ads: with some probability
        // a paragraph advertises an unrelated domain. This pollutes the PC
        // space while the form stays clean — the complementarity that makes
        // FC+PC beat PC alone in the paper's Figure 2.
        let para_domain = if rng.random_bool(0.22) {
            *Domain::ALL.choose(rng).unwrap_or(&params.domain)
        } else {
            params.domain
        };
        paragraphs.push(format!(
            "<p>{}</p>",
            text_gen::paragraph(rng, para_domain, &mix, chunk)
        ));
        spent += chunk;
    }
    format!(
        "<html><head><title>{title}</title></head><body>\n{nav}\n<h1>{heading}</h1>\n\
         {lead}\n{before}{form}\n{rest}\n{footer}\n</body></html>",
        nav = navbar(rng),
        lead = paragraphs.first().cloned().unwrap_or_default(),
        before = fragment.before_form,
        form = fragment.form,
        rest = paragraphs
            .iter()
            .skip(1)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n"),
        footer = footer(),
    )
}

/// A page hosting a non-searchable form (login/signup/quote/newsletter).
pub fn non_searchable_page<R: Rng>(
    rng: &mut R,
    kind: NonSearchableKind,
    domain: Domain,
    page_term_budget: usize,
) -> String {
    let mix = TextMix::default();
    let fragment = formgen::non_searchable_form(rng, kind);
    let title = match kind {
        NonSearchableKind::Login => "Member Login",
        NonSearchableKind::Signup => "Create Your Account",
        NonSearchableKind::QuoteRequest => "Request a Quote",
        NonSearchableKind::Newsletter => "Newsletter Signup",
    };
    let body = text_gen::paragraph(rng, domain, &mix, page_term_budget.max(20));
    format!(
        "<html><head><title>{title}</title></head><body>\n{nav}\n<h2>{title}</h2>\n\
         <p>{body}</p>\n{form}\n{footer}\n</body></html>",
        nav = navbar(rng),
        form = fragment.form,
        footer = footer(),
    )
}

/// A site root page: describes the site and links to its form page.
pub fn site_root_page<R: Rng>(
    rng: &mut R,
    domain: Domain,
    site_name: &str,
    form_path: &str,
) -> String {
    let mix = TextMix::default();
    let budget = rng.random_range(60..140);
    let body = text_gen::paragraph(rng, domain, &mix, budget);
    format!(
        "<html><head><title>{site_name}</title></head><body>\n{nav}\n\
         <h1>{site_name}</h1>\n<p>{body}</p>\n\
         <p><a href=\"{form_path}\">{phrase}</a></p>\n{footer}\n</body></html>",
        nav = navbar(rng),
        phrase = text_gen::title_phrase(rng, domain),
        footer = footer(),
    )
}

/// A hub (directory) page linking to the given `(url, anchor_text)` pairs.
///
/// `topic` controls the hub's own text: a domain directory talks about its
/// domain, a mixed directory uses generic vocabulary only.
pub fn hub_page<R: Rng>(rng: &mut R, topic: Option<Domain>, links: &[(String, String)]) -> String {
    let mix = TextMix::default();
    let (title, intro) = match topic {
        Some(d) => (
            format!("{} Directory", text_gen::title_phrase(rng, d)),
            text_gen::paragraph(rng, d, &mix, 40),
        ),
        None => (
            "Web Directory of Searchable Sites".to_owned(),
            "Browse our directory of the best online search sites across all categories."
                .to_owned(),
        ),
    };
    let items: Vec<String> = links
        .iter()
        .map(|(url, anchor)| format!("<li><a href=\"{url}\">{anchor}</a></li>"))
        .collect();
    format!(
        "<html><head><title>{title}</title></head><body>\n<h1>{title}</h1>\n<p>{intro}</p>\n\
         <ul>\n{}\n</ul>\n{footer}\n</body></html>",
        items.join("\n"),
        footer = footer(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_html::{extract_forms, located_text, parse, TextLocation};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn count_terms(html: &str, form: bool) -> usize {
        let doc = parse(html);
        located_text(&doc)
            .iter()
            .filter(|lt| lt.location.is_form() == form)
            .map(|lt| lt.text.split_whitespace().count())
            .sum()
    }

    #[test]
    fn form_page_has_one_form_and_title() {
        let mut rng = SmallRng::seed_from_u64(20);
        let params = FormPageParams {
            domain: Domain::Hotel,
            single: None,
            form_term_budget: 50,
            page_term_budget: 120,
            site_name: "GrandStay".into(),
            hybrid: false,
        };
        let html = form_page(&mut rng, &params);
        let doc = parse(&html);
        assert_eq!(extract_forms(&doc).len(), 1);
        assert!(doc.title().expect("has title").contains("GrandStay"));
    }

    #[test]
    fn page_term_budget_respected_roughly() {
        let mut rng = SmallRng::seed_from_u64(21);
        for budget in [40usize, 130, 300] {
            let params = FormPageParams {
                domain: Domain::Book,
                single: None,
                form_term_budget: 40,
                page_term_budget: budget,
                site_name: "PageTurner".into(),
                hybrid: false,
            };
            let html = form_page(&mut rng, &params);
            let outside = count_terms(&html, false);
            assert!(
                outside as f64 > budget as f64 * 0.5 && (outside as f64) < budget as f64 * 1.8,
                "budget {budget}, measured {outside}"
            );
        }
    }

    #[test]
    fn single_attribute_page() {
        let mut rng = SmallRng::seed_from_u64(22);
        let params = FormPageParams {
            domain: Domain::Job,
            single: Some(crate::formgen::LabelStyle::Outside),
            form_term_budget: 0,
            page_term_budget: 200,
            site_name: "JobHunt".into(),
            hybrid: false,
        };
        let html = form_page(&mut rng, &params);
        let doc = parse(&html);
        let forms = extract_forms(&doc);
        assert!(forms[0].is_single_attribute());
    }

    #[test]
    fn generic_noise_on_every_page() {
        let mut rng = SmallRng::seed_from_u64(23);
        let params = FormPageParams {
            domain: Domain::Music,
            single: None,
            form_term_budget: 30,
            page_term_budget: 60,
            site_name: "TuneTown".into(),
            hybrid: false,
        };
        let html = form_page(&mut rng, &params).to_lowercase();
        for w in ["privacy", "copyright", "help", "shop"] {
            assert!(html.contains(w), "page missing generic term {w}");
        }
    }

    #[test]
    fn hub_page_links_and_anchors() {
        let mut rng = SmallRng::seed_from_u64(24);
        let links = vec![
            ("http://a.com/f".to_owned(), "cheap flights".to_owned()),
            ("http://b.com/f".to_owned(), "discount airfare".to_owned()),
        ];
        let html = hub_page(&mut rng, Some(Domain::Airfare), &links);
        let doc = parse(&html);
        let anchors: Vec<_> = located_text(&doc)
            .into_iter()
            .filter(|lt| lt.location == TextLocation::Anchor)
            .map(|lt| lt.text)
            .collect();
        assert!(anchors.contains(&"cheap flights".to_owned()));
        assert!(html.contains("http://b.com/f"));
    }

    #[test]
    fn non_searchable_pages_have_forms() {
        let mut rng = SmallRng::seed_from_u64(25);
        for kind in NonSearchableKind::ALL {
            let html = non_searchable_page(&mut rng, kind, Domain::Auto, 50);
            let doc = parse(&html);
            assert_eq!(extract_forms(&doc).len(), 1, "{kind:?}");
        }
    }

    #[test]
    fn site_root_links_to_form() {
        let mut rng = SmallRng::seed_from_u64(26);
        let html = site_root_page(&mut rng, Domain::CarRental, "WheelsNow", "/search.html");
        assert!(html.contains("href=\"/search.html\""));
    }
}
