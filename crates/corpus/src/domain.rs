//! The eight database domains of the paper's gold standard (§4.1) and
//! their vocabulary models.
//!
//! Each domain carries three word pools mirroring the structure the
//! form-page model exploits:
//!
//! * **schema terms** — words used in attribute labels and form captions
//!   (the paper's "anchors ... unique to a given domain");
//! * **content terms** — page-body marketing/descriptive vocabulary;
//! * **option values** — `<option>` contents, which reflect database
//!   *contents* rather than schema (hence the lower LOC weight in Eq. 1).
//!
//! The pools deliberately overlap where the paper observed overlap: Music
//! and Movie share a sizable vocabulary (the main §4.2 error source), and
//! the travel domains (Airfare/Hotel/CarRental) share location/date terms.

/// A hidden-web database domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Airfare search.
    Airfare,
    /// New and used automobile search.
    Auto,
    /// Books for sale.
    Book,
    /// Hotel availability.
    Hotel,
    /// Job search.
    Job,
    /// Movie titles and DVDs.
    Movie,
    /// Music titles and CDs.
    Music,
    /// Rental-car availability.
    CarRental,
}

impl Domain {
    /// All eight domains, in a fixed order.
    pub const ALL: [Domain; 8] = [
        Domain::Airfare,
        Domain::Auto,
        Domain::Book,
        Domain::Hotel,
        Domain::Job,
        Domain::Movie,
        Domain::Music,
        Domain::CarRental,
    ];

    /// Short lowercase name (used in hostnames and reports).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Airfare => "airfare",
            Domain::Auto => "auto",
            Domain::Book => "book",
            Domain::Hotel => "hotel",
            Domain::Job => "job",
            Domain::Movie => "movie",
            Domain::Music => "music",
            Domain::CarRental => "rental",
        }
    }

    /// Index in [`Domain::ALL`].
    pub fn index(self) -> usize {
        Domain::ALL.iter().position(|&d| d == self).unwrap_or(0)
    }

    /// Attribute-label vocabulary (schema terms).
    pub fn schema_terms(self) -> &'static [&'static str] {
        match self {
            Domain::Airfare => &[
                "departure",
                "arrival",
                "depart",
                "return",
                "from",
                "destination",
                "origin",
                "passengers",
                "adults",
                "children",
                "infants",
                "cabin",
                "class",
                "airline",
                "trip",
                "round",
                "oneway",
                "nonstop",
                "flexible",
                "dates",
                "airport",
                "flight",
            ],
            Domain::Auto => &[
                "make",
                "model",
                "year",
                "price",
                "mileage",
                "condition",
                "body",
                "style",
                "transmission",
                "engine",
                "color",
                "zip",
                "distance",
                "dealer",
                "certified",
                "new",
                "used",
                "vehicle",
                "trim",
                "doors",
                "fuel",
                "drive",
            ],
            Domain::Book => &[
                "title",
                "author",
                "isbn",
                "publisher",
                "keyword",
                "subject",
                "format",
                "edition",
                "binding",
                "language",
                "category",
                "price",
                "condition",
                "signed",
                "illustrated",
                "year",
                "publication",
            ],
            Domain::Hotel => &[
                "checkin",
                "checkout",
                "destination",
                "city",
                "rooms",
                "guests",
                "adults",
                "children",
                "nights",
                "rating",
                "amenities",
                "price",
                "range",
                "area",
                "neighborhood",
                "arrival",
                "departure",
                "smoking",
                "beds",
            ],
            Domain::Job => &[
                "keywords",
                "category",
                "industry",
                "location",
                "state",
                "city",
                "salary",
                "title",
                "position",
                "experience",
                "level",
                "type",
                "fulltime",
                "parttime",
                "posted",
                "radius",
                "function",
                "education",
                "field",
            ],
            Domain::Movie => &[
                "title", "genre", "rating", "director", "actor", "actress", "studio", "format",
                "release", "year", "keyword", "category", "decade", "mpaa", "runtime", "cast",
            ],
            Domain::Music => &[
                "artist", "album", "song", "title", "genre", "label", "format", "keyword", "track",
                "release", "year", "band", "composer", "style", "decade",
            ],
            Domain::CarRental => &[
                "pickup",
                "dropoff",
                "location",
                "date",
                "time",
                "return",
                "driver",
                "age",
                "vehicle",
                "class",
                "type",
                "discount",
                "corporate",
                "rate",
                "city",
                "airport",
            ],
        }
    }

    /// Page-body vocabulary (content terms).
    pub fn content_terms(self) -> &'static [&'static str] {
        match self {
            Domain::Airfare => &[
                "flights",
                "airfare",
                "airfares",
                "cheap",
                "travel",
                "airlines",
                "tickets",
                "fares",
                "deals",
                "vacation",
                "international",
                "domestic",
                "booking",
                "save",
                "compare",
                "lowest",
                "trips",
                "destinations",
                "getaway",
                "itinerary",
                "miles",
                "nonstop",
                "airports",
                "carriers",
                "seats",
                "travelers",
            ],
            Domain::Auto => &[
                "cars",
                "autos",
                "automobile",
                "automobiles",
                "vehicles",
                "dealers",
                "dealership",
                "inventory",
                "listings",
                "trucks",
                "suvs",
                "sedans",
                "coupes",
                "convertibles",
                "financing",
                "loan",
                "warranty",
                "trade",
                "appraisal",
                "test",
                "research",
                "reviews",
                "pricing",
                "motors",
                "preowned",
            ],
            Domain::Book => &[
                "books",
                "bookstore",
                "reading",
                "readers",
                "bestsellers",
                "fiction",
                "nonfiction",
                "novels",
                "textbooks",
                "literature",
                "biography",
                "mystery",
                "romance",
                "paperback",
                "hardcover",
                "authors",
                "publishers",
                "library",
                "chapters",
                "titles",
                "editions",
                "collectible",
                "rare",
                "browse",
            ],
            Domain::Hotel => &[
                "hotels",
                "rooms",
                "suites",
                "reservations",
                "resorts",
                "inns",
                "motels",
                "lodging",
                "accommodation",
                "accommodations",
                "stay",
                "nightly",
                "rates",
                "availability",
                "breakfast",
                "pool",
                "spa",
                "luxury",
                "budget",
                "downtown",
                "oceanfront",
                "guest",
                "hospitality",
                "getaways",
            ],
            Domain::Job => &[
                "jobs",
                "careers",
                "employment",
                "employers",
                "resume",
                "resumes",
                "salaries",
                "positions",
                "openings",
                "candidates",
                "recruiters",
                "recruiting",
                "staffing",
                "hiring",
                "interviews",
                "postings",
                "professionals",
                "opportunities",
                "workplace",
                "engineers",
                "managers",
                "internships",
                "benefits",
            ],
            Domain::Movie => &[
                "movies",
                "films",
                "dvds",
                "cinema",
                "theater",
                "theaters",
                "drama",
                "comedy",
                "action",
                "horror",
                "thriller",
                "documentary",
                "animation",
                "trailers",
                "reviews",
                "screenings",
                "blockbuster",
                "starring",
                "directors",
                "actors",
                "soundtrack",
                "releases",
                "videos",
                "classics",
                "festival",
            ],
            Domain::Music => &[
                "cds",
                "albums",
                "artists",
                "bands",
                "songs",
                "tracks",
                "audio",
                "rock",
                "pop",
                "jazz",
                "classical",
                "country",
                "rap",
                "hiphop",
                "blues",
                "lyrics",
                "concerts",
                "tours",
                "vinyl",
                "singles",
                "charts",
                "soundtrack",
                "releases",
                "listen",
                "recordings",
                "labels",
            ],
            Domain::CarRental => &[
                "rental",
                "rentals",
                "rent",
                "cars",
                "locations",
                "reservations",
                "rates",
                "daily",
                "weekly",
                "weekend",
                "insurance",
                "unlimited",
                "mileage",
                "economy",
                "compact",
                "midsize",
                "fullsize",
                "minivan",
                "luxury",
                "pickup",
                "airport",
                "branches",
                "fleet",
                "drivers",
            ],
        }
    }

    /// `<option>` value vocabulary. Mostly database contents: locations,
    /// categories, makes, genres — with heavy cross-domain sharing of
    /// city/state/month values (they are poor discriminators, which is why
    /// Eq. 1 down-weights them).
    pub fn option_values(self) -> &'static [&'static str] {
        match self {
            // The travel domains share city/state values, but each site
            // family leans on a different (overlapping) slice — real
            // airfare selects list airports, hotel selects list metro
            // areas, rental selects list branch states.
            Domain::Airfare => &CITIES[0..18],
            Domain::Hotel => &CITIES[6..24],
            Domain::CarRental => &CITIES[12..30],
            Domain::Auto => &[
                "ford",
                "toyota",
                "honda",
                "chevrolet",
                "nissan",
                "bmw",
                "audi",
                "volkswagen",
                "mercedes",
                "hyundai",
                "subaru",
                "mazda",
                "jeep",
                "dodge",
                "lexus",
                "acura",
                "volvo",
                "cadillac",
                "buick",
                "pontiac",
                "saturn",
                "mitsubishi",
            ],
            Domain::Book => &[
                "fiction",
                "mystery",
                "romance",
                "science",
                "history",
                "biography",
                "travel",
                "cooking",
                "health",
                "business",
                "computers",
                "religion",
                "poetry",
                "drama",
                "reference",
                "children",
                "teens",
                "art",
                "sports",
                "nature",
            ],
            Domain::Job => &[
                "accounting",
                "engineering",
                "marketing",
                "finance",
                "healthcare",
                "education",
                "retail",
                "hospitality",
                "construction",
                "legal",
                "manufacturing",
                "transportation",
                "technology",
                "government",
                "insurance",
                "banking",
                "telecommunications",
                "pharmaceutical",
                "nonprofit",
                "administrative",
            ],
            Domain::Movie => &[
                "action",
                "adventure",
                "comedy",
                "drama",
                "horror",
                "thriller",
                "romance",
                "western",
                "musical",
                "documentary",
                "animation",
                "family",
                "fantasy",
                "crime",
                "mystery",
                "war",
                "biography",
                "history",
            ],
            Domain::Music => &[
                "rock",
                "pop",
                "jazz",
                "classical",
                "country",
                "blues",
                "folk",
                "reggae",
                "electronic",
                "dance",
                "metal",
                "punk",
                "soul",
                "gospel",
                "latin",
                "world",
                "alternative",
                "indie",
                "opera",
                "soundtrack",
            ],
        }
    }

    /// Words used in the submit button / form caption ("Find Flights",
    /// "Search Jobs").
    pub fn action_object(self) -> &'static str {
        match self {
            Domain::Airfare => "Flights",
            Domain::Auto => "Cars",
            Domain::Book => "Books",
            Domain::Hotel => "Hotels",
            Domain::Job => "Jobs",
            Domain::Movie => "Movies",
            Domain::Music => "Music",
            Domain::CarRental => "Rental Cars",
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// City/state option values shared by the travel domains (and used as
/// location selects in Job/Auto forms too).
pub const CITIES: &[&str] = &[
    "atlanta",
    "boston",
    "chicago",
    "dallas",
    "denver",
    "detroit",
    "houston",
    "miami",
    "minneapolis",
    "orlando",
    "philadelphia",
    "phoenix",
    "portland",
    "seattle",
    "tampa",
    "alabama",
    "arizona",
    "california",
    "colorado",
    "florida",
    "georgia",
    "illinois",
    "michigan",
    "nevada",
    "ohio",
    "oregon",
    "texas",
    "utah",
    "virginia",
    "washington",
];

/// Month names — near-universal option/select noise.
pub const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Web-generic vocabulary present on virtually every page; the paper's
/// motivating observation is that TF-IDF suppresses exactly these
/// ("privaci, shop, copyright, help, have high frequency in form pages of
/// all three domains").
pub const GENERIC_TERMS: &[&str] = &[
    "home",
    "about",
    "contact",
    "privacy",
    "policy",
    "copyright",
    "help",
    "site",
    "map",
    "login",
    "account",
    "email",
    "newsletter",
    "terms",
    "conditions",
    "shop",
    "shopping",
    "cart",
    "free",
    "shipping",
    "click",
    "here",
    "sign",
    "member",
    "members",
    "news",
    "welcome",
    "service",
    "customer",
    "support",
    "faq",
    "online",
    "web",
    "page",
    "rights",
    "reserved",
    "view",
    "today",
    "best",
    "top",
    "find",
    "advanced",
    "search",
    "results",
    "browse",
    "gift",
    "order",
    "secure",
    "guarantee",
    "company",
    "press",
    "jobs",
    "affiliates",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_domains() {
        assert_eq!(Domain::ALL.len(), 8);
        for (i, d) in Domain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Domain::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn vocabularies_nonempty() {
        for d in Domain::ALL {
            assert!(d.schema_terms().len() >= 10, "{d:?} schema too small");
            assert!(d.content_terms().len() >= 15, "{d:?} content too small");
            assert!(d.option_values().len() >= 10, "{d:?} options too small");
        }
    }

    #[test]
    fn music_movie_share_vocabulary() {
        // The §4.2 error analysis depends on this overlap existing.
        let music: Vec<_> = Domain::Music
            .schema_terms()
            .iter()
            .chain(Domain::Music.content_terms())
            .collect();
        let shared = Domain::Movie
            .schema_terms()
            .iter()
            .chain(Domain::Movie.content_terms())
            .filter(|w| music.contains(w))
            .count();
        assert!(shared >= 4, "Music/Movie overlap too small: {shared}");
    }

    #[test]
    fn travel_domains_share_cities() {
        // Overlapping — but not identical — location option pools.
        let shared_ah = Domain::Airfare
            .option_values()
            .iter()
            .filter(|v| Domain::Hotel.option_values().contains(v))
            .count();
        let shared_hr = Domain::Hotel
            .option_values()
            .iter()
            .filter(|v| Domain::CarRental.option_values().contains(v))
            .count();
        assert!(
            shared_ah >= 8,
            "airfare/hotel option overlap too small: {shared_ah}"
        );
        assert!(
            shared_hr >= 8,
            "hotel/rental option overlap too small: {shared_hr}"
        );
        assert_ne!(
            Domain::Airfare.option_values(),
            Domain::CarRental.option_values()
        );
    }

    #[test]
    fn domains_are_still_distinguishable() {
        // Each domain must have a substantial amount of content vocabulary
        // not shared with any other domain, or clustering is hopeless.
        for d in Domain::ALL {
            let mine: Vec<_> = d.content_terms().to_vec();
            let unique = mine
                .iter()
                .filter(|w| {
                    Domain::ALL
                        .iter()
                        .filter(|&&o| o != d)
                        .all(|o| !o.content_terms().contains(w))
                })
                .count();
            assert!(unique >= 10, "{d:?} has only {unique} unique content terms");
        }
    }

    #[test]
    fn generic_terms_include_papers_examples() {
        for w in ["privacy", "shop", "copyright", "help"] {
            assert!(GENERIC_TERMS.contains(&w), "missing paper example {w}");
        }
    }
}
