//! The shrinking contract, pinned: shrinking is deterministic, reaches
//! known-minimal witnesses on classic failing properties, and
//! `CAFC_CHECK_SEED` replay reproduces the identical counterexample
//! byte-for-byte.

use cafc_check::gen::{i64s, pairs, usizes, vecs};
use cafc_check::{check_result, CheckConfig, Failure};

fn cfg() -> CheckConfig {
    // Pin everything explicitly so ambient CAFC_CHECK_* variables (e.g.
    // the CI randomized leg) cannot perturb these contract tests.
    CheckConfig::new()
        .with_seed(0x5EED)
        .with_cases(96)
        .with_replay(None)
}

/// "All vecs are sorted" — false, with the canonical 2-element witness.
fn sorted_failure(config: &CheckConfig) -> Box<Failure> {
    check_result(
        "all vecs sorted",
        config,
        &vecs(&i64s(0, 100), 0, 12),
        |v: &Vec<i64>| {
            if v.windows(2).all(|w| w[0] <= w[1]) {
                Ok(())
            } else {
                Err("unsorted".to_owned())
            }
        },
    )
    .expect_err("vectors are not all sorted")
}

#[test]
fn sorted_property_shrinks_to_a_two_element_witness() {
    let failure = sorted_failure(&cfg());
    // The minimal unsorted vector has exactly two elements, out of order,
    // and greedy integer shrinking drives them to the least such pair:
    // [1, 0].
    assert_eq!(failure.minimal, "[1, 0]");
    assert!(failure.shrink_accepted > 0, "no shrink happened");
}

#[test]
fn shrinking_is_deterministic() {
    let a = sorted_failure(&cfg());
    let b = sorted_failure(&cfg());
    assert_eq!(a, b, "same config must shrink along the same path");
}

#[test]
fn replay_reproduces_the_counterexample_byte_for_byte() {
    let failure = sorted_failure(&cfg());
    // Replay through the config (the programmatic equivalent of setting
    // CAFC_CHECK_SEED — CheckConfig::new reads the variable into
    // `replay`).
    let replayed = sorted_failure(&cfg().with_replay(Some(failure.case_seed)));
    assert_eq!(replayed.case_seed, failure.case_seed);
    assert_eq!(replayed.original, failure.original, "generation diverged");
    assert_eq!(replayed.minimal, failure.minimal, "shrink path diverged");
    assert_eq!(replayed.error, failure.error);
}

#[test]
fn replay_via_environment_variable_matches_programmatic_replay() {
    let failure = sorted_failure(&cfg());
    // The env path: CheckConfig::new() picks up CAFC_CHECK_SEED. Set and
    // remove inside one test so parallel test threads never observe a
    // half-configured environment from another shrink test (none of the
    // others read the env).
    std::env::set_var("CAFC_CHECK_SEED", format!("{:#x}", failure.case_seed));
    let env_cfg = CheckConfig::new().with_seed(0x5EED).with_cases(96);
    std::env::remove_var("CAFC_CHECK_SEED");
    assert_eq!(env_cfg.replay, Some(failure.case_seed), "env not honoured");
    let replayed = sorted_failure(&env_cfg);
    assert_eq!(replayed.minimal, failure.minimal);
    assert_eq!(replayed.original, failure.original);
}

#[test]
fn minimal_witness_is_locally_minimal() {
    // No single further simplification of the reported witness may still
    // fail: re-running the shrinker on the minimal value's own candidates
    // finds nothing. We encode "all elements below 50" as the property
    // and assert the witness is exactly [50].
    let failure = check_result(
        "all elements below 50",
        &cfg(),
        &vecs(&i64s(0, 100), 0, 10),
        |v: &Vec<i64>| {
            if v.iter().all(|&x| x < 50) {
                Ok(())
            } else {
                Err("element >= 50".to_owned())
            }
        },
    )
    .expect_err("elements reach 50");
    assert_eq!(failure.minimal, "[50]");
}

#[test]
fn pair_witnesses_shrink_both_components() {
    // Fails when a*b >= 32; minimal by the greedy walk order.
    let failure = check_result(
        "product below 32",
        &cfg(),
        &pairs(&usizes(0, 20), &usizes(0, 20)),
        |&(a, b): &(usize, usize)| {
            if a * b < 32 {
                Ok(())
            } else {
                Err(format!("{a}*{b} >= 32"))
            }
        },
    )
    .expect_err("products reach 32");
    // Determinism: whatever the witness, it must be stable across runs …
    let again = check_result(
        "product below 32",
        &cfg(),
        &pairs(&usizes(0, 20), &usizes(0, 20)),
        |&(a, b): &(usize, usize)| {
            if a * b < 32 {
                Ok(())
            } else {
                Err(format!("{a}*{b} >= 32"))
            }
        },
    )
    .expect_err("products reach 32");
    assert_eq!(failure, again);
    // … and locally minimal: shrinking either component by one flips the
    // property back to passing is not required (greedy, not global), but
    // the witness must still violate the property.
    let rendered = failure.minimal.trim_matches(|c| c == '(' || c == ')');
    let parts: Vec<usize> = rendered
        .split(',')
        .map(|s| s.trim().parse().expect("witness parses"))
        .collect();
    assert!(parts[0] * parts[1] >= 32, "reported witness does not fail");
}

#[test]
fn shrink_budget_is_respected() {
    let tight = cfg().with_max_shrink_steps(3);
    let failure = sorted_failure(&tight);
    assert!(failure.shrink_steps <= 3, "budget exceeded");
}
