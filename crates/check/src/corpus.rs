//! Weighted domain generators: words, HTML form pages, corpora, web-graph
//! edge lists, labelings and clusterings.
//!
//! These are plain-data generators (`String`s, index vectors, edge
//! tuples) so this crate stays dependency-free; the consuming property
//! suites feed them into `cafc`, `cafc-webgraph` or `cafc-eval` types.

use crate::gen::{from_slice, one_of, option_of, pairs, usizes, vecs, weighted, Gen};

const LETTERS: [char; 26] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z',
];

/// A lowercase word of 3–9 letters (shrinks toward shorter, earlier
/// letters).
pub fn word() -> Gen<String> {
    vecs(&from_slice(&LETTERS), 3, 9).map(|chars| chars.iter().collect())
}

/// `lo..=hi` words.
pub fn words(lo: usize, hi: usize) -> Gen<Vec<String>> {
    vecs(&word(), lo, hi)
}

/// One synthetic form page: optional `<title>`, body paragraph, a form
/// with label words, a `<select>` with options and an `<input>`. The
/// shape mirrors what the paper's form-page model extracts (PC vs FC vs
/// title locations), weighted so most pages are complete but titleless,
/// body-less and option-less variants appear regularly.
pub fn html_page() -> Gen<String> {
    let parts = pairs(
        &pairs(&words(0, 11), &words(0, 6)),
        &pairs(&words(0, 5), &option_of(&word())),
    );
    parts.map(|((body, form), (options, title))| render_page(body, form, options, title.as_deref()))
}

fn render_page(
    body: &[String],
    form: &[String],
    options: &[String],
    title: Option<&str>,
) -> String {
    let title = title
        .map(|t| format!("<title>{t}</title>"))
        .unwrap_or_default();
    let opts: String = options
        .iter()
        .map(|o| format!("<option>{o}</option>"))
        .collect();
    format!(
        "{title}<p>{}</p><form>{} <select name=s>{opts}</select><input name=q></form>",
        body.join(" "),
        form.join(" ")
    )
}

/// A corpus of `lo..=hi` form pages, mostly well-formed with a weighted
/// sprinkle of degenerate pages (formless, empty) so model invariants are
/// exercised at the edges too.
pub fn html_corpus(lo: usize, hi: usize) -> Gen<Vec<String>> {
    let page = weighted(&[
        (8, html_page()),
        (1, words(1, 8).map(|w| format!("<p>{}</p>", w.join(" ")))),
        (1, Gen::constant(String::new())),
    ]);
    vecs(&page, lo, hi)
}

/// A corpus of `lo..=hi` strictly well-formed form pages (no degenerate
/// variants) — for suites that need every page to survive vectorization.
pub fn clean_html_corpus(lo: usize, hi: usize) -> Gen<Vec<String>> {
    vecs(&html_page(), lo, hi)
}

/// Arbitrary short text, including HTML-ish fragments and hostile
/// characters — for totality properties (parsers must never panic).
pub fn any_text(max_len: usize) -> Gen<String> {
    let fragments: [&str; 12] = [
        "a",
        "/",
        ".",
        ":",
        "<",
        ">",
        "&",
        "#",
        "http",
        "é",
        "\u{1F600}",
        " ",
    ];
    let piece = one_of(&[word(), from_slice(&fragments).map(|s| (*s).to_owned())]);
    vecs(&piece, 0, max_len).map(|ps| ps.concat())
}

/// A well-formed `http://host.tld/seg/...` URL string (0–3 path
/// segments).
pub fn url() -> Gen<String> {
    let tld = from_slice(&["com", "org", "net"]).map(|s| (*s).to_owned());
    let host = pairs(&word(), &tld).map(|(h, t)| format!("{h}.{t}"));
    let path = vecs(&word(), 0, 3).map(|segs| {
        if segs.is_empty() {
            "/".to_owned()
        } else {
            segs.iter().fold(String::new(), |acc, s| acc + "/" + s)
        }
    });
    pairs(&host, &path).map(|(h, p)| format!("http://{h}{p}"))
}

/// An edge list over `a_nodes` source and `b_nodes` target indices
/// (`0..a_nodes` × `0..b_nodes`), up to `max_edges` edges. Shrinks by
/// dropping edges and lowering indices.
pub fn edge_list(a_nodes: usize, b_nodes: usize, max_edges: usize) -> Gen<Vec<(usize, usize)>> {
    vecs(
        &pairs(
            &usizes(0, a_nodes.saturating_sub(1)),
            &usizes(0, b_nodes.saturating_sub(1)),
        ),
        0,
        max_edges,
    )
}

/// A labeling of `n` items over `classes` classes.
pub fn labels(n: usize, classes: usize) -> Gen<Vec<usize>> {
    vecs(&usizes(0, classes.saturating_sub(1)), n, n)
}

/// A partition of `0..n` into at most `max_k` non-empty clusters, as
/// member lists. Built from an assignment vector, so every item appears
/// exactly once and shrinking merges items into lower-numbered clusters.
pub fn clustering(n: usize, max_k: usize) -> Gen<Vec<Vec<usize>>> {
    labels(n, max_k.max(1)).map(move |assignment| {
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); max_k.max(1)];
        for (item, &c) in assignment.iter().enumerate() {
            clusters[c].push(item);
        }
        clusters.retain(|c| !c.is_empty());
        clusters
    })
}

/// Sparse-vector entries: term ids below `max_term`, finite weights in
/// `[-5, 5]`, up to `max_nnz` entries (duplicate ids allowed — the
/// consuming constructor merges them).
pub fn sparse_entries(max_term: usize, max_nnz: usize) -> Gen<Vec<(usize, f64)>> {
    vecs(
        &pairs(
            &usizes(0, max_term.saturating_sub(1)),
            &crate::gen::f64s(-5.0, 5.0),
        ),
        0,
        max_nnz,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    #[test]
    fn pages_are_deterministic_and_form_shaped() {
        let g = html_page();
        let a = g.value(&mut Seed::new(5).rng());
        let b = g.value(&mut Seed::new(5).rng());
        assert_eq!(a, b);
        assert!(a.contains("<form>") && a.contains("<input name=q>"), "{a}");
    }

    #[test]
    fn corpus_sizes_respect_bounds() {
        let g = html_corpus(2, 8);
        let mut rng = Seed::new(1).rng();
        for _ in 0..50 {
            let pages = g.value(&mut rng);
            assert!((2..=8).contains(&pages.len()));
        }
    }

    #[test]
    fn urls_parse_shape() {
        let g = url();
        let mut rng = Seed::new(3).rng();
        for _ in 0..50 {
            let u = g.value(&mut rng);
            assert!(u.starts_with("http://"), "{u}");
            assert!(u["http://".len()..].contains('/'), "{u}");
        }
    }

    #[test]
    fn clustering_partitions_every_item_exactly_once() {
        let g = clustering(12, 4);
        let mut rng = Seed::new(9).rng();
        for _ in 0..50 {
            let clusters = g.value(&mut rng);
            let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..12).collect::<Vec<_>>());
            assert!(clusters.iter().all(|c| !c.is_empty()));
            assert!(clusters.len() <= 4);
        }
    }

    #[test]
    fn edge_lists_stay_in_range() {
        let g = edge_list(6, 8, 40);
        let mut rng = Seed::new(2).rng();
        for _ in 0..50 {
            for &(a, b) in &g.value(&mut rng) {
                assert!(a < 6 && b < 8);
            }
        }
    }
}
