//! The property runner: seeded cases, greedy shrinking, replayable
//! failures.
//!
//! Every case `i` of a run draws its input from a *case seed* derived
//! from `(base seed, i)`. When a property fails, the engine greedily
//! shrinks the counterexample along its [`Shrink`](crate::Shrink) tree
//! and reports the case seed; re-running with `CAFC_CHECK_SEED=<seed>`
//! regenerates the identical input and replays the identical shrink
//! path, byte for byte.
//!
//! Environment variables:
//! * `CAFC_CHECK_SEED` — replay exactly one case with this case seed.
//! * `CAFC_CHECK_BASE_SEED` — override the base seed for full runs (the
//!   CI randomized leg sets this and prints it in the log).
//! * `CAFC_CHECK_CASES` — override the number of cases per property.
//!
//! All three accept decimal or `0x`-prefixed hex.

use crate::gen::{Gen, Shrink};
use crate::rng::Seed;
use std::fmt;

/// Runner configuration. `#[non_exhaustive]` — construct with
/// [`CheckConfig::new`] (which honours the `CAFC_CHECK_*` environment)
/// and chain `with_*` setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CheckConfig {
    /// Cases per property (default 64, or `CAFC_CHECK_CASES`).
    pub cases: u32,
    /// Base seed for deriving case seeds (default `0xCAFC`, or
    /// `CAFC_CHECK_BASE_SEED`).
    pub seed: u64,
    /// Shrink-candidate budget per failure (default 4096).
    pub max_shrink_steps: u32,
    /// Replay exactly this case seed instead of running `cases` cases
    /// (default `CAFC_CHECK_SEED` when set).
    pub replay: Option<u64>,
}

fn parse_seed(var: &str, raw: &str) -> u64 {
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => v,
        // A mistyped replay seed silently running 64 unrelated cases
        // would defeat the whole replay contract — fail loudly instead.
        Err(_) => panic!("cafc-check: {var}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

impl CheckConfig {
    /// The default configuration, with `CAFC_CHECK_SEED`,
    /// `CAFC_CHECK_BASE_SEED` and `CAFC_CHECK_CASES` applied.
    pub fn new() -> CheckConfig {
        let seed = match std::env::var("CAFC_CHECK_BASE_SEED") {
            Ok(raw) => parse_seed("CAFC_CHECK_BASE_SEED", &raw),
            Err(_) => 0xCAFC,
        };
        let cases = match std::env::var("CAFC_CHECK_CASES") {
            Ok(raw) => parse_seed("CAFC_CHECK_CASES", &raw) as u32,
            Err(_) => 64,
        };
        let replay = std::env::var("CAFC_CHECK_SEED")
            .ok()
            .map(|raw| parse_seed("CAFC_CHECK_SEED", &raw));
        CheckConfig {
            cases,
            seed,
            max_shrink_steps: 4096,
            replay,
        }
    }

    /// Set the number of cases.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the shrink-candidate budget.
    pub fn with_max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Set (or clear) the replay case seed.
    pub fn with_replay(mut self, replay: Option<u64>) -> Self {
        self.replay = replay;
        self
    }

    /// The case seed for case index `i` under this base seed.
    pub fn case_seed(&self, i: u32) -> u64 {
        Seed::new(self.seed).derive(u64::from(i)).value()
    }
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig::new()
    }
}

/// A property failure: the minimal counterexample plus everything needed
/// to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Property name (as passed to [`check_result`]).
    pub name: String,
    /// The case seed that produced the counterexample — feed it back via
    /// `CAFC_CHECK_SEED` to replay.
    pub case_seed: u64,
    /// Case index within the run (`None` for a replay run).
    pub case_index: Option<u32>,
    /// `Debug` rendering of the originally generated counterexample.
    pub original: String,
    /// `Debug` rendering of the minimal counterexample after shrinking.
    pub minimal: String,
    /// The property's error for the minimal counterexample.
    pub error: String,
    /// Shrink candidates evaluated.
    pub shrink_steps: u32,
    /// Shrink candidates accepted (still-failing simplifications).
    pub shrink_accepted: u32,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property '{}' failed", self.name)?;
        if let Some(i) = self.case_index {
            writeln!(f, "  case: {i}")?;
        }
        writeln!(
            f,
            "  minimal counterexample ({} shrinks, {} candidates tried):",
            self.shrink_accepted, self.shrink_steps
        )?;
        writeln!(f, "    {}", self.minimal)?;
        if self.minimal != self.original {
            writeln!(f, "  originally:")?;
            writeln!(f, "    {}", self.original)?;
        }
        writeln!(f, "  error: {}", self.error)?;
        write!(
            f,
            "  replay: CAFC_CHECK_SEED={:#x} (or {})",
            self.case_seed, self.case_seed
        )
    }
}

/// The result a property body returns: `Ok(())` to pass, `Err(message)`
/// to fail. Build failures ergonomically with [`crate::require!`] and
/// [`crate::require_eq!`].
pub type CaseResult = Result<(), String>;

/// Run `prop` against `config.cases` generated inputs (or replay one
/// seed), returning the first [`Failure`] after shrinking, or the number
/// of cases that passed.
pub fn check_result<T, F>(
    name: &str,
    config: &CheckConfig,
    gen: &Gen<T>,
    prop: F,
) -> Result<u32, Box<Failure>>
where
    T: fmt::Debug + Clone + 'static,
    F: Fn(&T) -> CaseResult,
{
    if let Some(case_seed) = config.replay {
        run_case(name, config, gen, &prop, case_seed, None)?;
        return Ok(1);
    }
    for i in 0..config.cases {
        run_case(name, config, gen, &prop, config.case_seed(i), Some(i))?;
    }
    Ok(config.cases)
}

/// Run a property and panic with the full [`Failure`] report when it
/// fails — the usual entry point for tests (see the [`crate::check!`]
/// macro).
pub fn check_named<T, F>(name: &str, config: &CheckConfig, gen: &Gen<T>, prop: F)
where
    T: fmt::Debug + Clone + 'static,
    F: Fn(&T) -> CaseResult,
{
    if let Err(failure) = check_result(name, config, gen, prop) {
        panic!("{failure}");
    }
}

fn run_case<T, F>(
    name: &str,
    config: &CheckConfig,
    gen: &Gen<T>,
    prop: &F,
    case_seed: u64,
    case_index: Option<u32>,
) -> Result<(), Box<Failure>>
where
    T: fmt::Debug + Clone + 'static,
    F: Fn(&T) -> CaseResult,
{
    let mut rng = Seed::new(case_seed).rng();
    let tree = gen.sample(&mut rng);
    let Err(first_error) = prop(tree.value()) else {
        return Ok(());
    };
    let original = format!("{:?}", tree.value());
    let (minimal, error, steps, accepted) =
        shrink_greedy(tree, prop, config.max_shrink_steps, first_error);
    Err(Box::new(Failure {
        name: name.to_owned(),
        case_seed,
        case_index,
        original,
        minimal: format!("{minimal:?}"),
        error,
        shrink_steps: steps,
        shrink_accepted: accepted,
    }))
}

/// Greedy descent: at each node, move to the first child that still
/// fails; stop when no child fails or the candidate budget is spent.
/// Deterministic — candidate order is fixed by the tree and the property
/// is pure, so a replayed seed shrinks along the identical path.
fn shrink_greedy<T, F>(
    tree: Shrink<T>,
    prop: &F,
    max_steps: u32,
    first_error: String,
) -> (T, String, u32, u32)
where
    T: Clone + 'static,
    F: Fn(&T) -> CaseResult,
{
    let mut cur = tree;
    let mut err = first_error;
    let mut steps = 0u32;
    let mut accepted = 0u32;
    'outer: loop {
        for child in cur.children() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(e) = prop(child.value()) {
                cur = child;
                err = e;
                accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur.value().clone(), err, steps, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{i64s, vecs};

    fn quiet() -> CheckConfig {
        // Env-independent config so `cargo test` with CAFC_CHECK_* set
        // doesn't perturb the engine's own tests.
        CheckConfig::new()
            .with_seed(0xCAFC)
            .with_cases(64)
            .with_replay(None)
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = check_result("bounds", &quiet(), &i64s(0, 9), |&v| {
            if (0..=9).contains(&v) {
                Ok(())
            } else {
                Err(format!("{v} out of range"))
            }
        })
        .expect("property holds");
        assert_eq!(ran, 64);
    }

    #[test]
    fn failing_property_reports_a_replayable_seed() {
        let gen = vecs(&i64s(0, 100), 0, 10);
        let prop = |v: &Vec<i64>| {
            if v.iter().all(|&x| x < 50) {
                Ok(())
            } else {
                Err("element >= 50".to_owned())
            }
        };
        let failure =
            check_result("no-big-elements", &quiet(), &gen, prop).expect_err("property must fail");
        // Replaying the reported seed must reproduce the identical
        // minimal counterexample.
        let replay_cfg = quiet().with_replay(Some(failure.case_seed));
        let replayed = check_result("no-big-elements", &replay_cfg, &gen, prop)
            .expect_err("replay must fail too");
        assert_eq!(replayed.minimal, failure.minimal);
        assert_eq!(replayed.original, failure.original);
        assert_eq!(replayed.error, failure.error);
        assert_eq!(replayed.case_index, None);
        // And the minimal witness is minimal: exactly one element, 50.
        assert_eq!(failure.minimal, "[50]");
    }

    #[test]
    fn failure_display_contains_the_seed_recipe() {
        let failure = check_result("always-fails", &quiet(), &i64s(0, 9), |_| {
            Err("nope".to_owned())
        })
        .expect_err("fails");
        let rendered = failure.to_string();
        assert!(rendered.contains("CAFC_CHECK_SEED="), "{rendered}");
        assert!(
            rendered.contains(&format!("{:#x}", failure.case_seed)),
            "{rendered}"
        );
        assert!(rendered.contains("minimal counterexample"), "{rendered}");
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("X", "123"), 123);
        assert_eq!(parse_seed("X", "0xCAFC"), 0xCAFC);
        assert_eq!(parse_seed("X", " 0Xff "), 255);
    }

    #[test]
    #[should_panic(expected = "is not a u64")]
    fn seed_parsing_rejects_garbage() {
        parse_seed("X", "not-a-seed");
    }

    #[test]
    fn case_seeds_differ_per_index_but_are_stable() {
        let cfg = quiet();
        assert_eq!(cfg.case_seed(3), cfg.case_seed(3));
        assert_ne!(cfg.case_seed(3), cfg.case_seed(4));
    }
}
