//! Differential oracles: two implementations, one generated input, one
//! verdict.
//!
//! The repo carries several pairs of code paths that are contractually
//! equivalent — the `Pipeline` front door vs the legacy free functions,
//! `ExecPolicy::Serial` vs `Parallel { k }`, metrics-on vs metrics-off —
//! plus accounting identities that must survive arbitrary input
//! (`ok + degraded + quarantined == total`). [`check_equiv`] pins such a
//! pair on *generated* corpora: both sides run on every case, any
//! disagreement is shrunk to a minimal witness and reported with a
//! replayable `CAFC_CHECK_SEED`.

use crate::gen::Gen;
use crate::runner::{check_named, check_result, CheckConfig, Failure};
use std::fmt;

/// Render a disagreement between two oracle outputs.
pub fn disagreement<R: fmt::Debug>(left: &R, right: &R) -> String {
    format!("differential oracle disagreement\n    left:  {left:?}\n    right: {right:?}")
}

/// Assert that `left` and `right` compute the same output for every
/// generated input; panics with a shrunk, replayable report otherwise.
pub fn check_equiv<T, R, L, Rt>(name: &str, config: &CheckConfig, gen: &Gen<T>, left: L, right: Rt)
where
    T: fmt::Debug + Clone + 'static,
    R: PartialEq + fmt::Debug,
    L: Fn(&T) -> R,
    Rt: Fn(&T) -> R,
{
    check_named(name, config, gen, move |case| {
        let l = left(case);
        let r = right(case);
        if l == r {
            Ok(())
        } else {
            Err(disagreement(&l, &r))
        }
    });
}

/// Non-panicking [`check_equiv`] for harness-level tests.
pub fn check_equiv_result<T, R, L, Rt>(
    name: &str,
    config: &CheckConfig,
    gen: &Gen<T>,
    left: L,
    right: Rt,
) -> Result<u32, Box<Failure>>
where
    T: fmt::Debug + Clone + 'static,
    R: PartialEq + fmt::Debug,
    L: Fn(&T) -> R,
    Rt: Fn(&T) -> R,
{
    check_result(name, config, gen, move |case| {
        let l = left(case);
        let r = right(case);
        if l == r {
            Ok(())
        } else {
            Err(disagreement(&l, &r))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{i64s, vecs};

    fn cfg() -> CheckConfig {
        CheckConfig::new()
            .with_seed(0xD1FF)
            .with_cases(32)
            .with_replay(None)
    }

    #[test]
    fn agreeing_oracles_pass() {
        let sum_fold = |v: &Vec<i64>| v.iter().sum::<i64>();
        let sum_loop = |v: &Vec<i64>| {
            let mut s = 0;
            for x in v {
                s += x;
            }
            s
        };
        check_equiv(
            "sum impls agree",
            &cfg(),
            &vecs(&i64s(-50, 50), 0, 12),
            sum_fold,
            sum_loop,
        );
    }

    #[test]
    fn disagreeing_oracles_shrink_to_a_minimal_witness() {
        // "Right" is wrong for inputs containing 7+: minimal witness [7].
        let failure = check_equiv_result(
            "buggy max",
            &cfg(),
            &vecs(&i64s(0, 20), 0, 8),
            |v: &Vec<i64>| v.iter().copied().max().unwrap_or(0),
            |v: &Vec<i64>| v.iter().copied().filter(|&x| x < 7).max().unwrap_or(0),
        )
        .expect_err("oracles disagree");
        assert_eq!(failure.minimal, "[7]");
        assert!(failure.error.contains("disagreement"), "{}", failure.error);
    }
}
