//! The repo-wide splittable deterministic PRNG.
//!
//! One seed type, three consumers: the property-testing engine in this
//! crate, the adversarial HTML mutator (`cafc_corpus::mutate`) and the
//! chaos fetcher (`cafc_crawler`). All derive their randomness from
//! [`Seed`] / [`CheckRng`], so a single `u64` pins every random decision
//! in a run and independent streams can be split off without coordination.
//!
//! The core permutation is splitmix64 (Steele, Lea & Flood, "Fast
//! Splittable Pseudorandom Number Generators", OOPSLA 2014) — the same
//! mixing step the crawler has used since the fault-injection PR, now
//! hoisted here so every crate shares one implementation. [`mix64`] is
//! bit-identical to the crawler's original `splitmix64`, so existing
//! seeded fault schedules replay unchanged.

/// The golden-ratio increment of splitmix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64 step: add the golden gamma, then finalize. A bijection
/// on `u64` with good avalanche behaviour; the deterministic source for
/// every derived stream in the workspace.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateless keyed roll in `[0, 1)` from a tuple of stream keys.
/// Bit-identical to the chaos fetcher's original `unit_hash`, so fault
/// schedules pinned by seed in older tests replay byte-for-byte.
#[inline]
pub fn unit_hash(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    let mixed = mix64(seed ^ mix64(a ^ mix64(b ^ mix64(salt))));
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A root seed: the single `u64` that pins a whole run. Derive per-purpose
/// sub-seeds with [`Seed::derive`] and per-item streams with
/// [`Seed::stream`]; both are pure functions, so stream `i` of seed `s`
/// is the same whether or not streams `0..i` were ever instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(u64);

impl Seed {
    /// Wrap a raw seed value.
    pub const fn new(value: u64) -> Seed {
        Seed(value)
    }

    /// The raw seed value (what `CAFC_CHECK_SEED` prints and accepts).
    pub const fn value(self) -> u64 {
        self.0
    }

    /// A decorrelated sub-seed for an independent purpose or index.
    pub fn derive(self, key: u64) -> Seed {
        Seed(mix64(self.0 ^ mix64(key)))
    }

    /// A stateless roll in `[0, 1)` keyed by `(a, b, salt)` — the chaos
    /// fetcher's per-(page, attempt, decision) dice.
    pub fn unit(self, a: u64, b: u64, salt: u64) -> f64 {
        unit_hash(self.0, a, b, salt)
    }

    /// A stateful generator rooted at this seed.
    pub fn rng(self) -> CheckRng {
        CheckRng::new(self.0)
    }

    /// The stateful generator for stream `index`: a pure function of
    /// `(seed, index)`, so item 17's stream is identical whether the run
    /// covers 20 items or 2000.
    pub fn stream(self, index: u64) -> CheckRng {
        self.derive(index).rng()
    }
}

/// A splittable splitmix64 generator: `state` advances by a per-stream odd
/// `gamma`, and [`CheckRng::split`] forks a statistically independent
/// child stream. `Copy`, so a generator state can be captured at a point
/// in time and replayed (the shrinking engine relies on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckRng {
    state: u64,
    gamma: u64,
}

impl CheckRng {
    /// A generator rooted at `seed` with the canonical gamma.
    pub fn new(seed: u64) -> CheckRng {
        CheckRng {
            state: mix64(seed),
            gamma: GOLDEN_GAMMA,
        }
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }

    /// Fork an independent child stream; the parent advances past the
    /// draws used to derive it.
    pub fn split(&mut self) -> CheckRng {
        let state = self.next_u64();
        // Gammas must be odd so the state walk is a full cycle.
        let gamma = self.next_u64() | 1;
        CheckRng { state, gamma }
    }

    /// A draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A draw in `[0, n)` via the multiply-shift reduction; 0 when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A draw in `lo..=hi`; returns `lo` when the range is inverted.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// A draw in `lo..=hi` as `usize`; returns `lo` when inverted.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A draw in `lo..=hi` as `i64`; returns `lo` when inverted.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span.wrapping_add(1)) as i64)
    }

    /// A uniformly chosen element of `items`; `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range_usize(0, items.len() - 1);
            items.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_matches_the_splitmix64_reference_vector() {
        // The canonical splitmix64 sequence for seed 0 (state advances by
        // the golden gamma between outputs). Pins that the hoist from
        // crates/crawler did not change the permutation, so existing
        // seeded fault schedules replay unchanged.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix64(GOLDEN_GAMMA), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(mix64(GOLDEN_GAMMA.wrapping_mul(2)), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_pure_functions_of_seed_and_index() {
        let a: Vec<u64> = {
            let mut r = Seed::new(7).stream(17);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Seed::new(7).stream(17);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Seed::new(7).stream(18);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn split_streams_diverge_from_parent_and_each_other() {
        let mut parent = Seed::new(3).rng();
        let mut left = parent.split();
        let mut right = parent.split();
        let l: Vec<u64> = (0..8).map(|_| left.next_u64()).collect();
        let r: Vec<u64> = (0..8).map(|_| right.next_u64()).collect();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(l, r);
        assert_ne!(l, p);
        assert_ne!(r, p);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Seed::new(11).rng();
        for _ in 0..2000 {
            let v = r.range_usize(3, 9);
            assert!((3..=9).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let i = r.range_i64(-4, 4);
            assert!((-4..=4).contains(&i));
        }
        assert_eq!(r.range_usize(5, 2), 5, "inverted range yields lo");
        assert_eq!(r.below(0), 0);
        assert!(r.pick::<u8>(&[]).is_none());
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = Seed::new(2).rng();
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.range_usize(0, 6)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "range_usize misses values: {seen:?}"
        );
    }

    #[test]
    fn unit_hash_matches_seed_unit() {
        for (s, a, b, salt) in [(0u64, 1u64, 2u64, 3u64), (7, 9, 0, 5)] {
            assert_eq!(unit_hash(s, a, b, salt), Seed::new(s).unit(a, b, salt));
        }
    }
}
