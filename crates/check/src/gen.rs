//! Generators with integrated shrinking.
//!
//! A [`Gen<T>`] produces not a bare value but a [`Shrink<T>`]: a lazy rose
//! tree whose root is the generated value and whose children are
//! progressively simpler candidates. Because shrinking is *integrated* —
//! [`Gen::map`] and [`Gen::flat_map`] transport the tree through the
//! transformation — shrunk candidates always satisfy the generator's own
//! invariants (a vector generated with `vecs(elem, 2, 8)` never shrinks
//! below two elements, a mapped value never un-maps).
//!
//! Candidate order encodes greed: every node lists its *most aggressive*
//! simplification first (the range minimum, the largest chunk removal), so
//! the greedy walk in [`crate::runner`] reaches a minimal counterexample
//! in few property evaluations.

use crate::rng::CheckRng;
use std::rc::Rc;

/// A generated value plus its lazily computed shrink candidates.
pub struct Shrink<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Shrink<T>>>,
}

impl<T: Clone> Clone for Shrink<T> {
    fn clone(&self) -> Self {
        Shrink {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shrink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shrink")
            .field("value", &self.value)
            .finish()
    }
}

impl<T: Clone + 'static> Shrink<T> {
    /// A value with no simpler candidates.
    pub fn leaf(value: T) -> Shrink<T> {
        Shrink {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value whose candidates are produced on demand by `children`.
    pub fn node(value: T, children: impl Fn() -> Vec<Shrink<T>> + 'static) -> Shrink<T> {
        Shrink {
            value,
            children: Rc::new(children),
        }
    }

    /// The generated value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consume the tree, keeping the value.
    pub fn into_value(self) -> T {
        self.value
    }

    /// The shrink candidates, most aggressive first.
    pub fn children(&self) -> Vec<Shrink<T>> {
        (self.children)()
    }

    fn map_rc<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Shrink<U> {
        let value = f(&self.value);
        let src = self.clone();
        Shrink::node(value, move || {
            src.children()
                .iter()
                .map(|c| c.map_rc(Rc::clone(&f)))
                .collect()
        })
    }
}

/// The shared sampling function behind a [`Gen`].
type SampleFn<T> = Rc<dyn Fn(&mut CheckRng) -> Shrink<T>>;

/// A continuation from an outer value to an inner generator (`flat_map`).
type BindFn<T, U> = Rc<dyn Fn(&T) -> Gen<U>>;

/// A seeded generator of [`Shrink`] trees. Cheap to clone (shared
/// behaviour behind an `Rc`).
pub struct Gen<T> {
    sample: SampleFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Build a generator from a sampling function.
    pub fn from_fn(f: impl Fn(&mut CheckRng) -> Shrink<T> + 'static) -> Gen<T> {
        Gen { sample: Rc::new(f) }
    }

    /// Always produce `value`, with no shrinks.
    pub fn constant(value: T) -> Gen<T> {
        Gen::from_fn(move |_| Shrink::leaf(value.clone()))
    }

    /// Draw one tree.
    pub fn sample(&self, rng: &mut CheckRng) -> Shrink<T> {
        (self.sample)(rng)
    }

    /// Draw one bare value (no shrink tree) — for consumers that only
    /// need data, like the seeded corpus builders.
    pub fn value(&self, rng: &mut CheckRng) -> T {
        self.sample(rng).into_value()
    }

    /// Transform generated values; shrinks transport through `f`.
    pub fn map<U: Clone + 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let inner = self.clone();
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::from_fn(move |rng| inner.sample(rng).map_rc(Rc::clone(&f)))
    }

    /// Generate a value, then generate again with a generator chosen from
    /// it. Shrinking first simplifies the outer value (re-running the
    /// inner generator from a captured RNG state, so inner draws replay)
    /// and then the inner one.
    pub fn flat_map<U: Clone + 'static>(&self, k: impl Fn(&T) -> Gen<U> + 'static) -> Gen<U> {
        let outer = self.clone();
        let k: BindFn<T, U> = Rc::new(k);
        Gen::from_fn(move |rng| {
            let first = outer.sample(rng);
            let inner_rng = rng.split();
            bind(first, Rc::clone(&k), inner_rng)
        })
    }

    /// Keep only values satisfying `keep`; up to 100 rejected draws per
    /// sample, after which the last draw is returned as-is (the property
    /// must tolerate it). Prefer constructive generators over filters.
    pub fn filter(&self, keep: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let inner = self.clone();
        Gen::from_fn(move |rng| {
            let mut tree = inner.sample(rng);
            for _ in 0..100 {
                if keep(tree.value()) {
                    break;
                }
                tree = inner.sample(rng);
            }
            tree
        })
    }
}

fn bind<T: Clone + 'static, U: Clone + 'static>(
    outer: Shrink<T>,
    k: BindFn<T, U>,
    rng: CheckRng,
) -> Shrink<U> {
    let mut r = rng;
    let inner = k(outer.value()).sample(&mut r);
    let value = inner.value().clone();
    Shrink::node(value, move || {
        let mut out: Vec<Shrink<U>> = outer
            .children()
            .into_iter()
            .map(|oc| bind(oc, Rc::clone(&k), rng))
            .collect();
        out.extend(inner.children());
        out
    })
}

/// Integers in `lo..=hi`, shrinking toward 0 when the range contains it,
/// else toward the bound closest to 0.
pub fn i64s(lo: i64, hi: i64) -> Gen<i64> {
    let pivot = if lo <= 0 && 0 <= hi {
        0
    } else if lo > 0 {
        lo
    } else {
        hi
    };
    Gen::from_fn(move |rng| int_tree(rng.range_i64(lo, hi), pivot))
}

/// Unsigned sizes in `lo..=hi`, shrinking toward `lo`.
pub fn usizes(lo: usize, hi: usize) -> Gen<usize> {
    Gen::from_fn(move |rng| {
        int_tree(rng.range_usize(lo, hi) as i64, lo as i64).map_rc(Rc::new(|&v| v as usize))
    })
}

fn int_tree(v: i64, pivot: i64) -> Shrink<i64> {
    Shrink::node(v, move || {
        let mut out = Vec::new();
        let mut d = i128::from(v) - i128::from(pivot);
        // Walk from the pivot toward v: pivot first (most aggressive),
        // then ever-closer candidates, ending at v ∓ 1.
        while d != 0 {
            let cand = (i128::from(v) - d) as i64;
            out.push(int_tree(cand, pivot));
            d /= 2;
        }
        out
    })
}

/// Floats in `[lo, hi]`, shrinking toward 0 when the interval contains
/// it, else toward `lo`. Only finite values are generated.
pub fn f64s(lo: f64, hi: f64) -> Gen<f64> {
    let pivot = if lo <= 0.0 && 0.0 <= hi { 0.0 } else { lo };
    Gen::from_fn(move |rng| {
        let v = lo + (hi - lo) * rng.unit();
        f64_tree(v, pivot)
    })
}

fn f64_tree(v: f64, pivot: f64) -> Shrink<f64> {
    Shrink::node(v, move || {
        if v == pivot || !v.is_finite() {
            return Vec::new();
        }
        let mut out = vec![f64_tree(pivot, pivot)];
        // An integral candidate simplifies the printed witness a lot.
        let t = v.trunc();
        if t != v && t != pivot {
            out.push(f64_tree(t, pivot));
        }
        let mid = pivot + (v - pivot) / 2.0;
        if mid != v && mid != pivot && (v - pivot).abs() > 1e-9 {
            out.push(f64_tree(mid, pivot));
        }
        out
    })
}

/// Booleans, shrinking `true → false`.
pub fn bools() -> Gen<bool> {
    Gen::from_fn(|rng| {
        if rng.chance(0.5) {
            Shrink::node(true, || vec![Shrink::leaf(false)])
        } else {
            Shrink::leaf(false)
        }
    })
}

/// A uniformly chosen element of `items`, shrinking toward index 0.
pub fn from_slice<T: Clone + 'static>(items: &[T]) -> Gen<T> {
    let items: Rc<[T]> = items.into();
    Gen::from_fn(move |rng| {
        let i = rng.range_usize(0, items.len().saturating_sub(1));
        slice_tree(Rc::clone(&items), i)
    })
}

fn slice_tree<T: Clone + 'static>(items: Rc<[T]>, i: usize) -> Shrink<T> {
    let value = match items.get(i) {
        Some(v) => v.clone(),
        None => return Shrink::node(items[0].clone(), Vec::new),
    };
    Shrink::node(value, move || {
        let mut out = Vec::new();
        let mut d = i;
        while d != 0 {
            out.push(slice_tree(Rc::clone(&items), i - d));
            d /= 2;
        }
        out
    })
}

/// One of the given generators, uniformly; shrinks stay inside the chosen
/// alternative.
pub fn one_of<T: Clone + 'static>(gens: &[Gen<T>]) -> Gen<T> {
    weighted(&gens.iter().map(|g| (1, g.clone())).collect::<Vec<_>>())
}

/// One of the given generators, with integer weights; shrinks stay inside
/// the chosen alternative. Zero total weight falls back to the first
/// generator.
pub fn weighted<T: Clone + 'static>(choices: &[(u32, Gen<T>)]) -> Gen<T> {
    let choices: Rc<[(u32, Gen<T>)]> = choices.into();
    Gen::from_fn(move |rng| {
        let total: u64 = choices.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut roll = rng.below(total.max(1));
        for (w, g) in choices.iter() {
            let w = u64::from(*w);
            if roll < w {
                return g.sample(rng);
            }
            roll -= w;
        }
        match choices.first() {
            Some((_, g)) => g.sample(rng),
            None => Shrink::node(
                // An empty choice list cannot produce a value; surfacing
                // that as a generation-time invariant keeps Gen total.
                unreachable_empty_weighted(),
                Vec::new,
            ),
        }
    })
}

fn unreachable_empty_weighted<T>() -> T {
    // weighted() over an empty slice is a caller bug; there is no value to
    // produce. Keep the failure loud but contained to the test process.
    panic!("cafc-check: weighted()/one_of() called with no generators")
}

/// `None` or `Some(value)`, shrinking `Some → None` first, then inside
/// the value.
pub fn option_of<T: Clone + 'static>(elem: &Gen<T>) -> Gen<Option<T>> {
    let elem = elem.clone();
    Gen::from_fn(move |rng| {
        if rng.chance(0.5) {
            let tree = elem.sample(rng);
            option_tree(tree)
        } else {
            Shrink::leaf(None)
        }
    })
}

fn option_tree<T: Clone + 'static>(tree: Shrink<T>) -> Shrink<Option<T>> {
    let value = Some(tree.value().clone());
    Shrink::node(value, move || {
        let mut out = vec![Shrink::leaf(None)];
        out.extend(tree.children().into_iter().map(option_tree));
        out
    })
}

/// A pair of independent draws; shrinks the left component first.
pub fn pairs<A: Clone + 'static, B: Clone + 'static>(a: &Gen<A>, b: &Gen<B>) -> Gen<(A, B)> {
    let (a, b) = (a.clone(), b.clone());
    Gen::from_fn(move |rng| {
        let ta = a.sample(rng);
        let tb = b.sample(rng);
        pair_tree(ta, tb)
    })
}

fn pair_tree<A: Clone + 'static, B: Clone + 'static>(a: Shrink<A>, b: Shrink<B>) -> Shrink<(A, B)> {
    let value = (a.value().clone(), b.value().clone());
    Shrink::node(value, move || {
        let mut out: Vec<Shrink<(A, B)>> = a
            .children()
            .into_iter()
            .map(|ca| pair_tree(ca, b.clone()))
            .collect();
        out.extend(b.children().into_iter().map(|cb| pair_tree(a.clone(), cb)));
        out
    })
}

/// Vectors of `lo..=hi` elements. Shrinks by removing chunks (largest
/// legal removal first, so the first candidate is already at `lo`
/// elements), then by shrinking individual elements.
pub fn vecs<T: Clone + 'static>(elem: &Gen<T>, lo: usize, hi: usize) -> Gen<Vec<T>> {
    let elem = elem.clone();
    Gen::from_fn(move |rng| {
        let len = rng.range_usize(lo, hi);
        let elems: Vec<Shrink<T>> = (0..len).map(|_| elem.sample(rng)).collect();
        vec_tree(elems, lo)
    })
}

fn vec_tree<T: Clone + 'static>(elems: Vec<Shrink<T>>, min_len: usize) -> Shrink<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value().clone()).collect();
    Shrink::node(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        // Chunk removals, biggest first: the first candidate drops all the
        // way to min_len in one step.
        let mut size = n.saturating_sub(min_len);
        while size > 0 {
            let mut start = 0;
            while start + size <= n {
                let mut rest = elems.clone();
                rest.drain(start..start + size);
                out.push(vec_tree(rest, min_len));
                start += size;
            }
            size /= 2;
        }
        // Per-element shrinks.
        for (i, e) in elems.iter().enumerate() {
            for c in e.children() {
                let mut rest = elems.clone();
                rest[i] = c;
                out.push(vec_tree(rest, min_len));
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    fn rng() -> CheckRng {
        Seed::new(42).rng()
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = vecs(&i64s(-10, 10), 0, 8);
        let a = g.value(&mut rng());
        let b = g.value(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn int_ranges_hold_and_first_shrink_is_the_pivot() {
        let g = i64s(5, 20);
        let mut r = Seed::new(9).rng();
        for _ in 0..200 {
            let tree = g.sample(&mut r);
            assert!((5..=20).contains(tree.value()));
            if *tree.value() != 5 {
                let kids = tree.children();
                assert_eq!(*kids[0].value(), 5, "most aggressive candidate first");
            }
        }
    }

    #[test]
    fn int_shrink_reaches_zero() {
        let tree = int_tree(37, 0);
        let mut cur = tree;
        // Greedy descent along first children reaches the pivot.
        while let Some(first) = cur.children().into_iter().next() {
            cur = first;
        }
        assert_eq!(*cur.value(), 0);
    }

    #[test]
    fn vec_shrink_respects_min_len_and_removes_chunks_first() {
        let g = vecs(&i64s(0, 9), 2, 6);
        let mut r = rng();
        for _ in 0..50 {
            let tree = g.sample(&mut r);
            assert!((2..=6).contains(&tree.value().len()));
            for child in tree.children() {
                assert!(child.value().len() >= 2, "shrank below min_len");
            }
            if tree.value().len() > 2 {
                let first = &tree.children()[0];
                assert_eq!(first.value().len(), 2, "first removal jumps to min_len");
            }
        }
    }

    #[test]
    fn map_transports_shrinks() {
        let g = i64s(0, 100).map(|&v| v * 2);
        let mut r = rng();
        let tree = g.sample(&mut r);
        assert_eq!(*tree.value() % 2, 0);
        for child in tree.children() {
            assert_eq!(*child.value() % 2, 0, "shrunk value escaped the map");
        }
    }

    #[test]
    fn flat_map_shrinks_outer_then_inner() {
        // Length-prefixed vectors: every shrink candidate keeps the
        // invariant len == first draw.
        let g = usizes(1, 5).flat_map(|&n| vecs(&i64s(0, 9), n, n));
        let mut r = rng();
        for _ in 0..20 {
            let tree = g.sample(&mut r);
            let n = tree.value().len();
            assert!((1..=5).contains(&n));
            for child in tree.children() {
                assert!(
                    (1..=5).contains(&child.value().len()),
                    "outer-shrunk vec has illegal len {}",
                    child.value().len()
                );
            }
        }
    }

    #[test]
    fn option_shrinks_to_none_first() {
        let g = option_of(&i64s(1, 9));
        let mut r = rng();
        for _ in 0..30 {
            let tree = g.sample(&mut r);
            if tree.value().is_some() {
                assert_eq!(*tree.children()[0].value(), None);
            }
        }
    }

    #[test]
    fn from_slice_shrinks_toward_first_element() {
        let g = from_slice(&['a', 'b', 'c', 'd']);
        let mut r = rng();
        for _ in 0..30 {
            let tree = g.sample(&mut r);
            if *tree.value() != 'a' {
                assert_eq!(*tree.children()[0].value(), 'a');
            }
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let g = weighted(&[(0, Gen::constant(1u8)), (1, Gen::constant(2u8))]);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(g.value(&mut r), 2);
        }
    }

    #[test]
    fn filter_applies_predicate() {
        let g = i64s(0, 100).filter(|&v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(g.value(&mut r) % 2, 0);
        }
    }
}
