//! # cafc-check — offline property testing for the CAFC workspace
//!
//! A dependency-free, seeded property-testing engine in the spirit of
//! QuickCheck/proptest, built because the real `proptest` crate cannot be
//! fetched in offline environments (see `tools/offline-check.sh`): the
//! paper's guarantees are *invariants* — cosine similarity is symmetric
//! and bounded, F-measure lives in `[0, 1]`, ingestion accounting always
//! balances — and invariants deserve generated inputs on every commit,
//! not just hand-picked fixtures.
//!
//! ## The pieces
//!
//! * [`rng`] — the workspace's shared splittable PRNG ([`Seed`],
//!   [`CheckRng`]): one `u64` pins the property engine, the adversarial
//!   HTML mutator and the crawler's chaos schedule.
//! * [`gen`] — [`Gen<T>`] combinators with *integrated shrinking*:
//!   every generated value carries a lazy tree of simpler candidates that
//!   survives `map`/`flat_map`, so shrunk counterexamples never violate
//!   generator invariants.
//! * [`runner`] — the [`check!`] runner: seeded cases, greedy shrinking
//!   to a minimal counterexample, and a printed `CAFC_CHECK_SEED` that
//!   replays any failure byte-for-byte.
//! * [`diff`] — differential oracles ([`check_equiv`]): run two
//!   implementations on the same generated input and shrink any
//!   disagreement.
//! * [`corpus`] — weighted HTML/page/graph/label generators shared by the
//!   property suites across the workspace.
//!
//! ## Writing a property
//!
//! ```
//! use cafc_check::{check, require, CheckConfig};
//! use cafc_check::gen::{i64s, vecs};
//!
//! check!(CheckConfig::new(), vecs(&i64s(-9, 9), 0, 16), |v| {
//!     let doubled: Vec<i64> = v.iter().map(|x| x * 2).collect();
//!     require!(doubled.len() == v.len());
//!     require!(doubled.iter().all(|x| x % 2 == 0), "odd after doubling");
//!     Ok(())
//! });
//! ```
//!
//! On failure the panic message ends with
//! `replay: CAFC_CHECK_SEED=0x... (or <decimal>)`; running the same test
//! with that variable set regenerates the identical case and shrink path.

#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod rng;
pub mod runner;

pub use diff::{check_equiv, check_equiv_result};
pub use gen::{Gen, Shrink};
pub use rng::{mix64, unit_hash, CheckRng, Seed, GOLDEN_GAMMA};
pub use runner::{check_named, check_result, CaseResult, CheckConfig, Failure};

/// Run a property: `check!(config, gen, |case| { ... Ok(()) })`, or
/// `check!(gen, |case| ...)` with [`CheckConfig::new`]. The property
/// closure receives `&T` and returns [`CaseResult`]; build failures with
/// [`require!`] / [`require_eq!`]. Panics with a shrunk, replayable
/// report on failure.
#[macro_export]
macro_rules! check {
    ($config:expr, $gen:expr, $prop:expr $(,)?) => {
        $crate::check_named(
            concat!(module_path!(), " (", file!(), ":", line!(), ")"),
            &$config,
            &$gen,
            $prop,
        )
    };
    ($gen:expr, $prop:expr $(,)?) => {
        $crate::check!($crate::CheckConfig::new(), $gen, $prop)
    };
}

/// Inside a property body: fail the case unless the condition holds.
/// `require!(cond)` or `require!(cond, "format {}", args)`.
#[macro_export]
macro_rules! require {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Inside a property body: fail the case unless both sides are equal,
/// reporting both values.
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}\n    left:  {:?}\n    right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Inside a property body: fail the case unless two floats are within
/// `eps` of each other.
#[macro_export]
macro_rules! require_close {
    ($left:expr, $right:expr, $eps:expr $(,)?) => {{
        let (l, r, eps): (f64, f64, f64) = ($left, $right, $eps);
        let diff = (l - r).abs();
        // A NaN difference must fail the case, so the comparison cannot be
        // a plain `diff > eps` (false for NaN).
        if diff.is_nan() || diff > eps {
            return Err(format!(
                "{} !~ {} (|{l} - {r}| = {} > {eps})",
                stringify!($left),
                stringify!($right),
                (l - r).abs()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{i64s, vecs};

    fn cfg() -> CheckConfig {
        CheckConfig::new()
            .with_seed(7)
            .with_cases(32)
            .with_replay(None)
    }

    #[test]
    fn check_macro_runs_properties() {
        check!(cfg(), vecs(&i64s(0, 9), 0, 8), |v| {
            require!(v.len() <= 8);
            require_eq!(v.iter().filter(|&&x| (0..=9).contains(&x)).count(), v.len());
            require_close!(v.len() as f64, v.len() as f64, 1e-12);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "CAFC_CHECK_SEED=")]
    fn check_macro_panics_with_replay_recipe() {
        check!(cfg(), i64s(0, 9), |_| Err("always".to_owned()));
    }

    #[test]
    fn require_macros_produce_messages() {
        fn body() -> CaseResult {
            require!(1 + 1 == 3, "math broke: {}", 42);
            Ok(())
        }
        assert_eq!(body().expect_err("fails"), "math broke: 42");
        fn body_eq() -> CaseResult {
            require_eq!(1 + 1, 3);
            Ok(())
        }
        assert!(body_eq().expect_err("fails").contains("left:  2"));
    }
}
