//! The typed failure surface of the store.
//!
//! Every fallible store operation returns a [`StoreError`]; the pipeline
//! drivers propagate it instead of panicking (the library-wide panic sweep
//! covers this crate too). The variants mirror what a crash-prone
//! filesystem can actually do to us: plain I/O failures, out-of-space,
//! fsync refusal, and corruption discovered by checksum validation — plus
//! the logical errors a resumed run can hit when the on-disk state does
//! not match the work being resumed.

use std::fmt;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O operation failed (or an injected torn write).
    Io {
        /// The operation that failed (`read`, `write`, `append`, ...).
        op: &'static str,
        /// The path it was applied to.
        path: String,
        /// OS or injector detail.
        detail: String,
    },
    /// The device reported no space (ENOSPC) — nothing was written.
    NoSpace {
        /// The path being written.
        path: String,
    },
    /// `fsync` failed (EIO); the data may or may not be durable.
    SyncFailed {
        /// The path being synced.
        path: String,
    },
    /// A snapshot, journal frame or manifest failed checksum or structural
    /// validation.
    Corrupt {
        /// The file that failed validation.
        path: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A snapshot was written by an unsupported format version.
    VersionMismatch {
        /// The file carrying the version.
        path: String,
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A snapshot belongs to a different stage than the one resuming.
    StageMismatch {
        /// The file carrying the stage name.
        path: String,
        /// The stage the caller asked for.
        expected: String,
        /// The stage recorded in the file.
        found: String,
    },
    /// The checkpointed run was configured differently from the resuming
    /// one (different corpus, seeds or options) — resuming would splice
    /// incompatible state.
    FingerprintMismatch {
        /// The stage whose fingerprint diverged.
        stage: String,
    },
    /// Journal replay diverged from the live recomputation — the journal
    /// describes different work than the resumed run is doing.
    ReplayDiverged {
        /// The stage being replayed.
        stage: String,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "store {op} failed on {path}: {detail}")
            }
            StoreError::NoSpace { path } => write!(f, "no space left writing {path}"),
            StoreError::SyncFailed { path } => write!(f, "fsync failed on {path}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {path}: {detail}")
            }
            StoreError::VersionMismatch {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path} has snapshot format v{found}, this build supports v{supported}"
            ),
            StoreError::StageMismatch {
                path,
                expected,
                found,
            } => write!(f, "{path} holds stage {found:?}, expected {expected:?}"),
            StoreError::FingerprintMismatch { stage } => write!(
                f,
                "checkpointed {stage} run was configured differently — refusing to resume \
                 (delete the checkpoint directory or rerun without --resume)"
            ),
            StoreError::ReplayDiverged { stage, detail } => {
                write!(f, "{stage} journal replay diverged: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
