//! The filesystem boundary: every byte the store reads or writes goes
//! through a [`Vfs`], so the whole durability layer can be exercised
//! against an injected-fault filesystem the same way the crawler is
//! exercised against [`ChaosFetcher`](https://docs.rs/cafc-crawler)
//! faults. [`StdFs`] is the production implementation; [`ChaosFs`] wraps
//! any `Vfs` and deterministically injects torn writes, silent short
//! writes, ENOSPC, EIO-on-fsync and bit-flip corruption.

use crate::error::StoreError;
use cafc_check::Seed;
use std::cell::RefCell;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::rc::Rc;

/// Filesystem primitives used by the store. Implementations decide what
/// "the disk" looks like; the store supplies atomicity (temp + fsync +
/// rename) and validation (checksums, torn-tail discard) on top.
pub trait Vfs {
    /// Read a whole file.
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StoreError>;
    /// Create or truncate `path` and write `bytes`.
    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Append `bytes` to `path`, creating it if absent.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;
    /// Flush `path` (file or directory) to stable storage.
    fn sync(&mut self, path: &Path) -> Result<(), StoreError>;
    /// Atomically rename `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Create `path` and its parents.
    fn create_dir_all(&mut self, path: &Path) -> Result<(), StoreError>;
    /// Whether `path` exists.
    fn exists(&mut self, path: &Path) -> bool;
    /// Remove a file; missing files are not an error.
    fn remove(&mut self, path: &Path) -> Result<(), StoreError>;
}

fn io_err(op: &'static str, path: &Path, err: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

/// The production filesystem: `std::fs` with real `fsync`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl Vfs for StdFs {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StoreError> {
        fs::read(path).map_err(|e| io_err("read", path, e))
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        fs::write(path, bytes).map_err(|e| io_err("write", path, e))
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("append", path, e))?;
        file.write_all(bytes).map_err(|e| io_err("append", path, e))
    }

    fn sync(&mut self, path: &Path) -> Result<(), StoreError> {
        let file = fs::File::open(path).map_err(|e| io_err("sync", path, e))?;
        file.sync_all().map_err(|_| StoreError::SyncFailed {
            path: path.display().to_string(),
        })
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
        fs::rename(from, to).map_err(|e| io_err("rename", from, e))
    }

    fn create_dir_all(&mut self, path: &Path) -> Result<(), StoreError> {
        fs::create_dir_all(path).map_err(|e| io_err("create_dir_all", path, e))
    }

    fn exists(&mut self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", path, e)),
        }
    }
}

/// The filesystem fault taxonomy — the store-side mirror of the fetch
/// layer's transient/permanent/truncate classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write persists a prefix of the data, then the process "dies"
    /// (the call returns an error the driver treats as a crash).
    TornWrite,
    /// The write persists a prefix but *reports success* — only the
    /// checksum catches it later.
    ShortWrite,
    /// ENOSPC: nothing is written, the call errors.
    NoSpace,
    /// `fsync` returns EIO; durability of prior writes is unknown.
    SyncEio,
    /// One bit of the payload is flipped before landing on disk; the call
    /// reports success — silent corruption for recovery to detect.
    BitFlip,
}

impl FaultKind {
    /// All fault kinds, for exhaustive crash-test sweeps.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TornWrite,
        FaultKind::ShortWrite,
        FaultKind::NoSpace,
        FaultKind::SyncEio,
        FaultKind::BitFlip,
    ];

    /// Stable lowercase label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn-write",
            FaultKind::ShortWrite => "short-write",
            FaultKind::NoSpace => "no-space",
            FaultKind::SyncEio => "sync-eio",
            FaultKind::BitFlip => "bit-flip",
        }
    }

    /// Whether the faulted call reports success (the damage is silent and
    /// only checksum validation can find it).
    pub fn is_silent(self) -> bool {
        matches!(self, FaultKind::ShortWrite | FaultKind::BitFlip)
    }
}

/// When [`ChaosFs`] injects faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Inject nothing; still count mutating operations (used to measure a
    /// run's op trace before choosing injection points).
    None,
    /// Inject exactly one fault, at the `op`-th mutating operation
    /// (0-based over writes, appends, syncs and renames).
    AtOp {
        /// Index of the mutating operation to fault.
        op: u64,
        /// The fault to inject there.
        kind: FaultKind,
    },
    /// Seeded random faults: each mutating operation faults with
    /// probability `rate`, fault kind drawn uniformly — the same seed
    /// replays the same schedule.
    Seeded {
        /// Stream seed.
        seed: u64,
        /// Per-operation fault probability in `[0, 1]`.
        rate: f64,
    },
}

// Salt constants separating the chaos decision streams (cf. ChaosFetcher).
const SALT_FIRE: u64 = 0x11;
const SALT_KIND: u64 = 0x12;
const SALT_BIT: u64 = 0x13;

#[derive(Debug)]
struct ChaosState {
    plan: FaultPlan,
    ops: u64,
    injected: u64,
}

/// Shared view of a [`ChaosFs`]'s operation counter, usable after the
/// filesystem itself has been boxed into a [`Store`](crate::Store).
#[derive(Debug, Clone)]
pub struct ChaosControl {
    state: Rc<RefCell<ChaosState>>,
}

impl ChaosControl {
    /// Mutating operations seen so far (writes, appends, syncs, renames).
    pub fn ops(&self) -> u64 {
        self.state.borrow().ops
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.borrow().injected
    }
}

/// A deterministic fault-injecting wrapper around another [`Vfs`].
///
/// Reads are never faulted (corruption is injected at write time, where a
/// real disk would plant it); every *mutating* operation — write, append,
/// sync, rename — increments an operation counter and consults the
/// [`FaultPlan`].
#[derive(Debug)]
pub struct ChaosFs<V> {
    inner: V,
    state: Rc<RefCell<ChaosState>>,
}

impl<V: Vfs> ChaosFs<V> {
    /// Wrap `inner` with the given plan, returning the filesystem and a
    /// counter handle that stays valid after the filesystem is boxed.
    pub fn controlled(inner: V, plan: FaultPlan) -> (Self, ChaosControl) {
        let state = Rc::new(RefCell::new(ChaosState {
            plan,
            ops: 0,
            injected: 0,
        }));
        let control = ChaosControl {
            state: Rc::clone(&state),
        };
        (ChaosFs { inner, state }, control)
    }

    /// Wrap `inner` with the given plan.
    pub fn new(inner: V, plan: FaultPlan) -> Self {
        Self::controlled(inner, plan).0
    }

    /// Count one mutating operation and decide whether it faults.
    fn decide(&mut self) -> Option<FaultKind> {
        let mut state = self.state.borrow_mut();
        let op = state.ops;
        state.ops += 1;
        let fault = match state.plan {
            FaultPlan::None => None,
            FaultPlan::AtOp { op: at, kind } => (op == at).then_some(kind),
            FaultPlan::Seeded { seed, rate } => {
                let fire = Seed::new(seed).unit(op, 0, SALT_FIRE) < rate;
                fire.then(|| {
                    let pick = Seed::new(seed).unit(op, 0, SALT_KIND);
                    let idx = ((pick * FaultKind::ALL.len() as f64) as usize)
                        .min(FaultKind::ALL.len() - 1);
                    FaultKind::ALL[idx]
                })
            }
        };
        if fault.is_some() {
            state.injected += 1;
        }
        fault
    }

    /// Deterministic bit position to flip in a payload of `len` bytes.
    fn flip_bit(&self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let (seed, op) = {
            let state = self.state.borrow();
            let seed = match state.plan {
                FaultPlan::Seeded { seed, .. } => seed,
                _ => 0,
            };
            (seed, state.ops)
        };
        let unit = Seed::new(seed).unit(op, 0, SALT_BIT);
        let bit = ((unit * (bytes.len() * 8) as f64) as usize).min(bytes.len() * 8 - 1);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }
}

impl<V: Vfs> Vfs for ChaosFs<V> {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.inner.read(path)
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        match self.decide() {
            None => self.inner.write(path, bytes),
            Some(FaultKind::TornWrite) => {
                self.inner.write(path, &bytes[..bytes.len() / 2])?;
                Err(StoreError::Io {
                    op: "write",
                    path: path.display().to_string(),
                    detail: "injected: torn write".to_owned(),
                })
            }
            Some(FaultKind::ShortWrite) => {
                // Persist a strict prefix but report success.
                let keep = if bytes.is_empty() { 0 } else { bytes.len() - 1 };
                self.inner
                    .write(path, &bytes[..keep.min(bytes.len() * 3 / 4)])
            }
            Some(FaultKind::NoSpace) => Err(StoreError::NoSpace {
                path: path.display().to_string(),
            }),
            Some(FaultKind::SyncEio) => self.inner.write(path, bytes),
            Some(FaultKind::BitFlip) => {
                let mut flipped = bytes.to_vec();
                self.flip_bit(&mut flipped);
                self.inner.write(path, &flipped)
            }
        }
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        match self.decide() {
            None => self.inner.append(path, bytes),
            Some(FaultKind::TornWrite) => {
                self.inner.append(path, &bytes[..bytes.len() / 2])?;
                Err(StoreError::Io {
                    op: "append",
                    path: path.display().to_string(),
                    detail: "injected: torn append".to_owned(),
                })
            }
            Some(FaultKind::ShortWrite) => {
                let keep = if bytes.is_empty() { 0 } else { bytes.len() - 1 };
                self.inner
                    .append(path, &bytes[..keep.min(bytes.len() * 3 / 4)])
            }
            Some(FaultKind::NoSpace) => Err(StoreError::NoSpace {
                path: path.display().to_string(),
            }),
            Some(FaultKind::SyncEio) => self.inner.append(path, bytes),
            Some(FaultKind::BitFlip) => {
                let mut flipped = bytes.to_vec();
                self.flip_bit(&mut flipped);
                self.inner.append(path, &flipped)
            }
        }
    }

    fn sync(&mut self, path: &Path) -> Result<(), StoreError> {
        match self.decide() {
            Some(FaultKind::SyncEio) => Err(StoreError::SyncFailed {
                path: path.display().to_string(),
            }),
            Some(FaultKind::NoSpace) => Err(StoreError::NoSpace {
                path: path.display().to_string(),
            }),
            // Torn/short/bit-flip have no meaning for fsync; pass through.
            _ => self.inner.sync(path),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
        match self.decide() {
            Some(FaultKind::TornWrite) | Some(FaultKind::NoSpace) => {
                // The rename never happens: the process "dies" first.
                Err(StoreError::Io {
                    op: "rename",
                    path: from.display().to_string(),
                    detail: "injected: crash before rename".to_owned(),
                })
            }
            // Rename is atomic on a real filesystem: no partial states.
            _ => self.inner.rename(from, to),
        }
    }

    fn create_dir_all(&mut self, path: &Path) -> Result<(), StoreError> {
        self.inner.create_dir_all(path)
    }

    fn exists(&mut self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::path::PathBuf;

    /// A trivial in-memory Vfs for exercising ChaosFs without disk.
    #[derive(Debug, Default)]
    struct MemFs {
        files: HashMap<PathBuf, Vec<u8>>,
    }

    impl Vfs for MemFs {
        fn read(&mut self, path: &Path) -> Result<Vec<u8>, StoreError> {
            self.files.get(path).cloned().ok_or_else(|| StoreError::Io {
                op: "read",
                path: path.display().to_string(),
                detail: "not found".into(),
            })
        }
        fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
            self.files.insert(path.to_owned(), bytes.to_vec());
            Ok(())
        }
        fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
            self.files
                .entry(path.to_owned())
                .or_default()
                .extend_from_slice(bytes);
            Ok(())
        }
        fn sync(&mut self, _path: &Path) -> Result<(), StoreError> {
            Ok(())
        }
        fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
            match self.files.remove(from) {
                Some(data) => {
                    self.files.insert(to.to_owned(), data);
                    Ok(())
                }
                None => Err(StoreError::Io {
                    op: "rename",
                    path: from.display().to_string(),
                    detail: "not found".into(),
                }),
            }
        }
        fn create_dir_all(&mut self, _path: &Path) -> Result<(), StoreError> {
            Ok(())
        }
        fn exists(&mut self, path: &Path) -> bool {
            self.files.contains_key(path)
        }
        fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
            self.files.remove(path);
            Ok(())
        }
    }

    #[test]
    fn torn_write_persists_prefix_and_errors() {
        let (mut fs, ctl) = ChaosFs::controlled(
            MemFs::default(),
            FaultPlan::AtOp {
                op: 0,
                kind: FaultKind::TornWrite,
            },
        );
        let p = Path::new("f");
        let err = fs.write(p, b"0123456789").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert_eq!(fs.read(p).unwrap(), b"01234");
        assert_eq!(ctl.ops(), 1);
        assert_eq!(ctl.injected(), 1);
    }

    #[test]
    fn short_write_truncates_silently() {
        let mut fs = ChaosFs::new(
            MemFs::default(),
            FaultPlan::AtOp {
                op: 0,
                kind: FaultKind::ShortWrite,
            },
        );
        let p = Path::new("f");
        fs.write(p, b"0123456789").expect("silent fault reports ok");
        assert!(fs.read(p).unwrap().len() < 10);
    }

    #[test]
    fn no_space_writes_nothing() {
        let mut fs = ChaosFs::new(
            MemFs::default(),
            FaultPlan::AtOp {
                op: 0,
                kind: FaultKind::NoSpace,
            },
        );
        let p = Path::new("f");
        assert!(matches!(
            fs.write(p, b"x").unwrap_err(),
            StoreError::NoSpace { .. }
        ));
        assert!(!fs.exists(p));
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut fs = ChaosFs::new(
            MemFs::default(),
            FaultPlan::AtOp {
                op: 0,
                kind: FaultKind::BitFlip,
            },
        );
        let p = Path::new("f");
        let data = vec![0u8; 64];
        fs.write(p, &data).expect("silent fault reports ok");
        let stored = fs.read(p).unwrap();
        let flipped: u32 = stored
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn sync_eio_faults_only_the_sync() {
        let mut fs = ChaosFs::new(
            MemFs::default(),
            FaultPlan::AtOp {
                op: 1,
                kind: FaultKind::SyncEio,
            },
        );
        let p = Path::new("f");
        fs.write(p, b"data").expect("op 0 clean");
        assert!(matches!(
            fs.sync(p).unwrap_err(),
            StoreError::SyncFailed { .. }
        ));
        assert_eq!(fs.read(p).unwrap(), b"data");
    }

    #[test]
    fn seeded_plan_replays_identically() {
        let run = |seed| {
            let (mut fs, ctl) =
                ChaosFs::controlled(MemFs::default(), FaultPlan::Seeded { seed, rate: 0.5 });
            let mut outcomes = Vec::new();
            for i in 0..32u32 {
                let p = PathBuf::from(format!("f{i}"));
                outcomes.push(fs.write(&p, &[0u8; 16]).is_ok());
            }
            (outcomes, ctl.injected())
        };
        let (a, ai) = run(9);
        let (b, bi) = run(9);
        assert_eq!(a, b);
        assert_eq!(ai, bi);
        let (c, _) = run(10);
        assert_ne!(a, c, "different seed, different schedule");
    }
}
