//! Dependency-free binary encoding for snapshots and journal frames.
//!
//! Little-endian fixed-width integers, `f64` as IEEE-754 bits (bit-exact
//! round trips — the determinism contract depends on it), and
//! length-prefixed byte strings. Two checksums guard the two file shapes:
//! FNV-1a 64 over whole snapshots (cheap, good dispersion for multi-KB
//! payloads) and CRC-32 (IEEE, reflected) per journal frame, which catches
//! the short torn/bit-flipped tails a crashed append leaves behind.

use crate::error::StoreError;

/// Append-only byte sink for encoding payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64` (the on-disk format is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over an encoded payload. Every getter fails with
/// [`StoreError::Corrupt`] instead of panicking when the buffer runs out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`; `path` labels corruption errors.
    pub fn new(buf: &'a [u8], path: &'a str) -> Self {
        ByteReader { buf, pos: 0, path }
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::Corrupt {
            path: self.path.to_owned(),
            detail: format!("truncated payload reading {what} at offset {}", self.pos),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.corrupt(what))?;
        if end > self.buf.len() {
            return Err(self.corrupt(what));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4, "u32")?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt("usize"))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.get_usize()?;
        self.take(len, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, StoreError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("utf-8 string"))
    }
}

/// FNV-1a 64-bit hash — the snapshot checksum (and fingerprint hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-frame
/// journal checksum. Bitwise implementation: journal frames are small and
/// append-rate is one frame per checkpointed event, so a lookup table
/// would buy nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_shape() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_str("naïve");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 12);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "naïve");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2], "test");
        let err = r.get_u32().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let mut r = ByteReader::new(&bytes, "test");
        assert!(r.get_bytes().is_err(), "length prefix larger than buffer");
    }

    #[test]
    fn fnv_and_crc_match_known_vectors() {
        // FNV-1a 64 test vectors from the reference implementation.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // CRC-32 IEEE "check" value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksums_detect_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let f = fnv1a64(&data);
        let c = crc32(&data);
        for bit in [0usize, 13, 100, data.len() * 8 - 1] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(fnv1a64(&flipped), f, "fnv missed bit {bit}");
            assert_ne!(crc32(&flipped), c, "crc missed bit {bit}");
        }
    }
}
