//! The durable store: atomic checksummed snapshots plus an append-only
//! journal per pipeline stage.
//!
//! Layout inside the checkpoint directory:
//!
//! ```text
//! <dir>/MANIFEST          stage -> (seq, checksum) index, informational
//! <dir>/<stage>.snap      current snapshot (magic, version, checksum)
//! <dir>/<stage>.snap.prev previous generation, fallback if .snap is bad
//! <dir>/<stage>.journal   CRC-framed incremental records since seq 0
//! ```
//!
//! Snapshot writes are crash-safe by construction: encode to
//! `<stage>.snap.tmp`, fsync, demote the old snapshot to `.prev`, rename
//! the temp file into place (rename is atomic), then rewrite the manifest
//! the same way. A crash between any two steps leaves either the old or
//! the new generation fully intact. Journal reads stop at the first frame
//! whose length or CRC does not validate — a torn append loses at most
//! the tail that was being written, never earlier records.

use crate::codec::{crc32, fnv1a64, ByteReader, ByteWriter};
use crate::config::StoreConfig;
use crate::error::StoreError;
use crate::vfs::{StdFs, Vfs};
use cafc_obs::Obs;
use std::path::{Path, PathBuf};

/// On-disk magic prefix for snapshot files.
const MAGIC: &[u8; 8] = b"CAFCSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A decoded snapshot: the sequence number progress had reached and the
/// stage-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Units of progress covered by this snapshot.
    pub seq: u64,
    /// Stage-encoded state.
    pub payload: Vec<u8>,
}

/// A decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Record kind discriminant (stage-defined).
    pub kind: u8,
    /// Stage-encoded record body.
    pub payload: Vec<u8>,
}

/// Durable state for the pipeline stages, generic over the [`Vfs`].
pub struct Store {
    vfs: Box<dyn Vfs>,
    dir: PathBuf,
    config: StoreConfig,
    obs: Obs,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Open (creating if needed) a store rooted at `dir` on the real
    /// filesystem.
    pub fn open(dir: &Path, config: StoreConfig, obs: Obs) -> Result<Store, StoreError> {
        Store::open_with_vfs(Box::new(StdFs), dir, config, obs)
    }

    /// Open a store over an explicit [`Vfs`] — tests pass a
    /// [`ChaosFs`](crate::ChaosFs) here.
    pub fn open_with_vfs(
        mut vfs: Box<dyn Vfs>,
        dir: &Path,
        config: StoreConfig,
        obs: Obs,
    ) -> Result<Store, StoreError> {
        vfs.create_dir_all(dir)?;
        Ok(Store {
            vfs,
            dir: dir.to_owned(),
            config,
            obs,
        })
    }

    /// The configured checkpoint cadence and durability options.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.snap"))
    }

    fn prev_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.snap.prev"))
    }

    fn tmp_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.snap.tmp"))
    }

    fn journal_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.journal"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    // ---- snapshots -----------------------------------------------------

    fn encode_snapshot(stage: &str, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_str(stage);
        w.put_u64(seq);
        w.put_bytes(payload);
        let mut bytes = w.into_bytes();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    fn decode_snapshot(stage: &str, path: &str, bytes: &[u8]) -> Result<Snapshot, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Corrupt {
                path: path.to_owned(),
                detail: format!("snapshot too small ({} bytes)", bytes.len()),
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        let stored = u64::from_le_bytes(stored);
        if fnv1a64(body) != stored {
            return Err(StoreError::Corrupt {
                path: path.to_owned(),
                detail: "snapshot checksum mismatch".to_owned(),
            });
        }
        let mut r = ByteReader::new(body, path);
        if r.get_bytes()? != MAGIC {
            return Err(StoreError::Corrupt {
                path: path.to_owned(),
                detail: "bad snapshot magic".to_owned(),
            });
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::VersionMismatch {
                path: path.to_owned(),
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let found_stage = r.get_str()?.to_owned();
        if found_stage != stage {
            return Err(StoreError::StageMismatch {
                path: path.to_owned(),
                expected: stage.to_owned(),
                found: found_stage,
            });
        }
        let seq = r.get_u64()?;
        let payload = r.get_bytes()?.to_vec();
        Ok(Snapshot { seq, payload })
    }

    /// Atomically persist a snapshot for `stage` covering progress up to
    /// `seq`. The previous snapshot survives as `.snap.prev` so a fault
    /// while writing this one cannot lose more than one generation.
    pub fn snapshot(&mut self, stage: &str, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        let bytes = Store::encode_snapshot(stage, seq, payload);
        let checksum = fnv1a64(&bytes[..bytes.len() - 8]);
        let tmp = self.tmp_path(stage);
        let snap = self.snap_path(stage);
        let prev = self.prev_path(stage);
        self.vfs.write(&tmp, &bytes)?;
        self.vfs.sync(&tmp)?;
        if self.vfs.exists(&snap) {
            self.vfs.rename(&snap, &prev)?;
        }
        self.vfs.rename(&tmp, &snap)?;
        self.obs.incr("store.snapshots");
        // The manifest is an informational index; it is written with the
        // same temp+rename dance but a fault here is not load-bearing —
        // recovery validates the snapshot files themselves.
        self.rewrite_manifest(stage, seq, checksum)?;
        Ok(())
    }

    fn rewrite_manifest(&mut self, stage: &str, seq: u64, checksum: u64) -> Result<(), StoreError> {
        let mut entries = self.read_manifest();
        match entries.iter_mut().find(|(s, _, _)| s == stage) {
            Some(entry) => {
                entry.1 = seq;
                entry.2 = checksum;
            }
            None => entries.push((stage.to_owned(), seq, checksum)),
        }
        entries.sort();
        let mut w = ByteWriter::new();
        w.put_usize(entries.len());
        for (s, q, c) in &entries {
            w.put_str(s);
            w.put_u64(*q);
            w.put_u64(*c);
        }
        let mut bytes = w.into_bytes();
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let tmp = self.dir.join("MANIFEST.tmp");
        let manifest = self.manifest_path();
        self.vfs.write(&tmp, &bytes)?;
        self.vfs.sync(&tmp)?;
        self.vfs.rename(&tmp, &manifest)
    }

    /// The manifest's (stage, seq, checksum) entries; a missing or corrupt
    /// manifest yields an empty list (and counts a discard) because the
    /// snapshots themselves are the source of truth.
    pub fn read_manifest(&mut self) -> Vec<(String, u64, u64)> {
        let path = self.manifest_path();
        if !self.vfs.exists(&path) {
            return Vec::new();
        }
        let Ok(bytes) = self.vfs.read(&path) else {
            return Vec::new();
        };
        match Store::decode_manifest(&bytes) {
            Some(entries) => entries,
            None => {
                self.obs.incr("store.corrupt_discards");
                Vec::new()
            }
        }
    }

    fn decode_manifest(bytes: &[u8]) -> Option<Vec<(String, u64, u64)>> {
        if bytes.len() < 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        if fnv1a64(body) != u64::from_le_bytes(stored) {
            return None;
        }
        let mut r = ByteReader::new(body, "MANIFEST");
        let n = r.get_usize().ok()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let s = r.get_str().ok()?.to_owned();
            let q = r.get_u64().ok()?;
            let c = r.get_u64().ok()?;
            entries.push((s, q, c));
        }
        Some(entries)
    }

    /// Load the most recent valid snapshot for `stage`: the current
    /// generation if it validates, else the previous generation, else
    /// `None` (fresh start). Checksum and structural failures fall back a
    /// generation and count `store.corrupt_discards`; version and stage
    /// mismatches are hard errors — they mean the directory belongs to a
    /// different build or pipeline and silently restarting would mask it.
    pub fn load_snapshot(&mut self, stage: &str) -> Result<Option<Snapshot>, StoreError> {
        for path in [self.snap_path(stage), self.prev_path(stage)] {
            if !self.vfs.exists(&path) {
                continue;
            }
            let label = path.display().to_string();
            let bytes = match self.vfs.read(&path) {
                Ok(bytes) => bytes,
                Err(_) => {
                    self.obs.incr("store.corrupt_discards");
                    continue;
                }
            };
            match Store::decode_snapshot(stage, &label, &bytes) {
                Ok(snap) => {
                    self.obs.incr("store.recoveries");
                    return Ok(Some(snap));
                }
                Err(err @ StoreError::VersionMismatch { .. })
                | Err(err @ StoreError::StageMismatch { .. }) => return Err(err),
                Err(_) => {
                    self.obs.incr("store.corrupt_discards");
                }
            }
        }
        Ok(None)
    }

    // ---- journal -------------------------------------------------------

    /// Append one record to `stage`'s journal. The frame is
    /// `u32 len | u32 crc | u8 kind | payload`, CRC over kind+payload, so
    /// recovery can tell a complete frame from a torn tail.
    pub fn journal_append(
        &mut self,
        stage: &str,
        kind: u8,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let mut body = Vec::with_capacity(payload.len() + 1);
        body.push(kind);
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let path = self.journal_path(stage);
        self.vfs.append(&path, &frame)?;
        if self.config.sync_journal {
            self.vfs.sync(&path)?;
        }
        self.obs.incr("store.journal_appends");
        Ok(())
    }

    /// Read every valid journal record for `stage`, stopping at the first
    /// frame that fails length or CRC validation (the conservative prefix).
    /// Discarded tail bytes count `store.corrupt_discards`.
    pub fn journal_records(&mut self, stage: &str) -> Result<Vec<JournalRecord>, StoreError> {
        let path = self.journal_path(stage);
        if !self.vfs.exists(&path) {
            return Ok(Vec::new());
        }
        let bytes = self.vfs.read(&path)?;
        let (records, consumed) = Store::scan_journal(&bytes);
        if consumed < bytes.len() {
            self.obs.incr("store.corrupt_discards");
        }
        Ok(records)
    }

    /// Parse the valid frame prefix; returns records plus consumed length.
    fn scan_journal(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&bytes[pos..pos + 4]);
            let len = u32::from_le_bytes(len4) as usize;
            let mut crc4 = [0u8; 4];
            crc4.copy_from_slice(&bytes[pos + 4..pos + 8]);
            let stored_crc = u32::from_le_bytes(crc4);
            let Some(end) = pos.checked_add(8).and_then(|s| s.checked_add(len)) else {
                break;
            };
            if len == 0 || end > bytes.len() {
                break;
            }
            let body = &bytes[pos + 8..end];
            if crc32(body) != stored_crc {
                break;
            }
            records.push(JournalRecord {
                kind: body[0],
                payload: body[1..].to_vec(),
            });
            pos = end;
        }
        (records, pos)
    }

    /// Rewrite `stage`'s journal as its valid prefix only, atomically.
    /// Called once at resume so a torn tail left by the crash does not get
    /// appended after.
    pub fn journal_truncate_to_valid(&mut self, stage: &str) -> Result<(), StoreError> {
        let path = self.journal_path(stage);
        if !self.vfs.exists(&path) {
            return Ok(());
        }
        let bytes = self.vfs.read(&path)?;
        let (_, consumed) = Store::scan_journal(&bytes);
        if consumed == bytes.len() {
            return Ok(());
        }
        self.obs.incr("store.corrupt_discards");
        let tmp = self.dir.join(format!("{stage}.journal.tmp"));
        self.vfs.write(&tmp, &bytes[..consumed])?;
        self.vfs.sync(&tmp)?;
        self.vfs.rename(&tmp, &path)
    }

    /// Drop all durable state for `stage` — a fresh (non-`--resume`) run
    /// starts from nothing.
    pub fn reset_stage(&mut self, stage: &str) -> Result<(), StoreError> {
        for path in [
            self.snap_path(stage),
            self.prev_path(stage),
            self.tmp_path(stage),
            self.journal_path(stage),
        ] {
            self.vfs.remove(&path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{ChaosFs, FaultKind, FaultPlan};
    use std::collections::HashMap;

    // Minimal in-memory Vfs (mirrors the one in vfs.rs tests).
    #[derive(Debug, Default, Clone)]
    struct MemFs {
        files: std::rc::Rc<std::cell::RefCell<HashMap<PathBuf, Vec<u8>>>>,
    }

    impl Vfs for MemFs {
        fn read(&mut self, path: &Path) -> Result<Vec<u8>, StoreError> {
            self.files
                .borrow()
                .get(path)
                .cloned()
                .ok_or_else(|| StoreError::Io {
                    op: "read",
                    path: path.display().to_string(),
                    detail: "not found".into(),
                })
        }
        fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
            self.files
                .borrow_mut()
                .insert(path.to_owned(), bytes.to_vec());
            Ok(())
        }
        fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
            self.files
                .borrow_mut()
                .entry(path.to_owned())
                .or_default()
                .extend_from_slice(bytes);
            Ok(())
        }
        fn sync(&mut self, _path: &Path) -> Result<(), StoreError> {
            Ok(())
        }
        fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
            let mut files = self.files.borrow_mut();
            match files.remove(from) {
                Some(data) => {
                    files.insert(to.to_owned(), data);
                    Ok(())
                }
                None => Err(StoreError::Io {
                    op: "rename",
                    path: from.display().to_string(),
                    detail: "not found".into(),
                }),
            }
        }
        fn create_dir_all(&mut self, _path: &Path) -> Result<(), StoreError> {
            Ok(())
        }
        fn exists(&mut self, path: &Path) -> bool {
            self.files.borrow().contains_key(path)
        }
        fn remove(&mut self, path: &Path) -> Result<(), StoreError> {
            self.files.borrow_mut().remove(path);
            Ok(())
        }
    }

    fn mem_store(fs: MemFs) -> Store {
        Store::open_with_vfs(
            Box::new(fs),
            Path::new("ckpt"),
            StoreConfig::new(),
            Obs::disabled(),
        )
        .expect("open")
    }

    #[test]
    fn snapshot_round_trips() {
        let mut store = mem_store(MemFs::default());
        store.snapshot("crawl", 42, b"payload").unwrap();
        let snap = store.load_snapshot("crawl").unwrap().expect("present");
        assert_eq!(snap.seq, 42);
        assert_eq!(snap.payload, b"payload");
        assert_eq!(store.read_manifest().len(), 1);
    }

    #[test]
    fn missing_snapshot_is_none() {
        let mut store = mem_store(MemFs::default());
        assert_eq!(store.load_snapshot("crawl").unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_falls_back_a_generation() {
        let fs = MemFs::default();
        let mut store = mem_store(fs.clone());
        store.snapshot("crawl", 1, b"first").unwrap();
        store.snapshot("crawl", 2, b"second").unwrap();
        // Corrupt the current generation by hand.
        let snap_path = PathBuf::from("ckpt/crawl.snap");
        let mut bytes = fs.files.borrow().get(&snap_path).unwrap().clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs.files.borrow_mut().insert(snap_path, bytes);
        let snap = store
            .load_snapshot("crawl")
            .unwrap()
            .expect("prev survives");
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.payload, b"first");
    }

    #[test]
    fn stage_mismatch_is_a_hard_error() {
        let fs = MemFs::default();
        let mut store = mem_store(fs.clone());
        store.snapshot("crawl", 1, b"x").unwrap();
        let crawl_bytes = fs
            .files
            .borrow()
            .get(&PathBuf::from("ckpt/crawl.snap"))
            .unwrap()
            .clone();
        fs.files
            .borrow_mut()
            .insert(PathBuf::from("ckpt/kmeans.snap"), crawl_bytes);
        let err = store.load_snapshot("kmeans").unwrap_err();
        assert!(matches!(err, StoreError::StageMismatch { .. }), "{err}");
    }

    #[test]
    fn journal_round_trips_and_stops_at_torn_tail() {
        let fs = MemFs::default();
        let mut store = mem_store(fs.clone());
        store.journal_append("crawl", 1, b"one").unwrap();
        store.journal_append("crawl", 2, b"two").unwrap();
        store.journal_append("crawl", 3, b"three").unwrap();
        // Tear the last frame.
        let path = PathBuf::from("ckpt/crawl.journal");
        let mut bytes = fs.files.borrow().get(&path).unwrap().clone();
        bytes.truncate(bytes.len() - 2);
        fs.files.borrow_mut().insert(path.clone(), bytes);
        let records = store.journal_records("crawl").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, 1);
        assert_eq!(records[0].payload, b"one");
        assert_eq!(records[1].payload, b"two");
        // Truncation rewrites to exactly the valid prefix.
        store.journal_truncate_to_valid("crawl").unwrap();
        let after = store.journal_records("crawl").unwrap();
        assert_eq!(after.len(), 2);
        store.journal_append("crawl", 4, b"four").unwrap();
        assert_eq!(store.journal_records("crawl").unwrap().len(), 3);
    }

    #[test]
    fn journal_bit_flip_discards_from_flip_onward() {
        let fs = MemFs::default();
        let mut store = mem_store(fs.clone());
        for i in 0..5u8 {
            store.journal_append("s", i, &[i; 8]).unwrap();
        }
        let path = PathBuf::from("ckpt/s.journal");
        let mut bytes = fs.files.borrow().get(&path).unwrap().clone();
        let frame = 8 + 9; // header + kind + payload
        bytes[2 * frame + 10] ^= 0x01; // flip a bit inside frame 2's body
        fs.files.borrow_mut().insert(path, bytes);
        let records = store.journal_records("s").unwrap();
        assert_eq!(records.len(), 2, "frames after the flip are discarded");
    }

    #[test]
    fn reset_stage_clears_everything() {
        let mut store = mem_store(MemFs::default());
        store.snapshot("s", 1, b"x").unwrap();
        store.journal_append("s", 0, b"y").unwrap();
        store.reset_stage("s").unwrap();
        assert_eq!(store.load_snapshot("s").unwrap(), None);
        assert!(store.journal_records("s").unwrap().is_empty());
    }

    #[test]
    fn crash_during_snapshot_write_keeps_old_generation() {
        // Fault every mutating op index in turn; after each "crash" the
        // store must still load a valid snapshot (old or new).
        for kind in FaultKind::ALL {
            for at in 0..8u64 {
                let fs = MemFs::default();
                let mut clean = mem_store(fs.clone());
                clean.snapshot("s", 1, b"generation-1").unwrap();
                let clean_ops_baseline = 0; // plan indexes ops of the faulty store only
                let _ = clean_ops_baseline;
                let (chaos, _ctl) =
                    ChaosFs::controlled(fs.clone(), FaultPlan::AtOp { op: at, kind });
                let mut faulty = Store::open_with_vfs(
                    Box::new(chaos),
                    Path::new("ckpt"),
                    StoreConfig::new(),
                    Obs::disabled(),
                )
                .expect("open");
                let _ = faulty.snapshot("s", 2, b"generation-2");
                drop(faulty);
                let mut recovered = mem_store(fs);
                let snap = recovered
                    .load_snapshot("s")
                    .unwrap_or_else(|e| panic!("{}@{at}: {e}", kind.label()));
                let snap = snap.unwrap_or_else(|| panic!("{}@{at}: no generation", kind.label()));
                assert!(
                    snap.payload == b"generation-1" || snap.payload == b"generation-2",
                    "{}@{at}: got {:?}",
                    kind.label(),
                    snap.payload
                );
            }
        }
    }
}
