//! Store tuning knobs. This module is the config's home: the config-lint
//! sweep checks that every field documented here has a `with_` setter and
//! shows up in DESIGN.md.

/// Tuning for checkpoint cadence and journal durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreConfig {
    /// Write a full snapshot every this many units of progress (jobs for
    /// the crawl, pages for ingest, iterations already journal per-step for
    /// k-means/HAC). Must be at least 1.
    pub checkpoint_every: u64,
    /// Whether to fsync the journal after every append. Turning this off
    /// trades the last few journal frames for throughput; recovery still
    /// works because torn tails are discarded.
    pub sync_journal: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_every: 64,
            sync_journal: true,
        }
    }
}

impl StoreConfig {
    /// The default configuration.
    pub fn new() -> Self {
        StoreConfig::default()
    }

    /// Set the snapshot cadence (clamped up to 1).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Set whether journal appends fsync.
    pub fn with_sync_journal(mut self, sync: bool) -> Self {
        self.sync_journal = sync;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_setters() {
        let c = StoreConfig::new();
        assert_eq!(c.checkpoint_every, 64);
        assert!(c.sync_journal);
        let c = c.with_checkpoint_every(0).with_sync_journal(false);
        assert_eq!(c.checkpoint_every, 1, "cadence clamps up to 1");
        assert!(!c.sync_journal);
    }
}
