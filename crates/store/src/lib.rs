//! `cafc-store` — durable state for the CAFC pipeline.
//!
//! The clustering pipeline's long-running stages (crawl, ingest, k-means,
//! HAC) checkpoint their progress through this crate so an interrupted run
//! can resume instead of restarting: atomic checksummed snapshots capture
//! full stage state at a configurable cadence, and an append-only
//! CRC-framed journal records incremental progress between snapshots.
//!
//! Everything is dependency-free and deterministic. All I/O flows through
//! the [`Vfs`] trait; production uses [`StdFs`], tests and the
//! `cafc crash-test` sweep use [`ChaosFs`], which injects torn writes,
//! silent short writes, ENOSPC, EIO-on-fsync and bit-flip corruption on a
//! seeded, replayable schedule. The recovery contract — pinned by the
//! crash-recovery test matrix — is that a crash at *any* injected fault
//! point followed by `--resume` produces bit-identical results to an
//! uninterrupted run, or fails with a typed [`StoreError`]; it never
//! panics and never silently produces different output.

#![warn(missing_docs)]

mod codec;
mod config;
mod error;
mod store;
mod vfs;

pub use codec::{crc32, fnv1a64, ByteReader, ByteWriter};
pub use config::StoreConfig;
pub use error::StoreError;
pub use store::{JournalRecord, Snapshot, Store, SNAPSHOT_VERSION};
pub use vfs::{ChaosControl, ChaosFs, FaultKind, FaultPlan, StdFs, Vfs};
