//! Edge-case regression tests for the HTML substrate, beyond the per-module
//! unit tests: real-web tag soup, exotic attribute syntax, entity corners
//! and form-structure oddities observed in deep-web crawl data.

use cafc_html::{extract_forms, located_text, parse, TextLocation};

#[test]
fn attributes_with_exotic_but_legal_syntax() {
    let doc =
        parse(r#"<input type = "text"   name ='q' data-x=1 checked disabled value = unquoted>"#);
    let input = doc.elements_named("input").next().expect("input parsed");
    assert_eq!(doc.attr(input, "type"), Some("text"));
    assert_eq!(doc.attr(input, "name"), Some("q"));
    assert_eq!(doc.attr(input, "data-x"), Some("1"));
    assert_eq!(doc.attr(input, "checked"), Some(""));
    assert_eq!(doc.attr(input, "value"), Some("unquoted"));
}

#[test]
fn uppercase_attributes_lowercased() {
    let doc = parse(r#"<FORM ACTION="/x" METHOD="POST"><INPUT NAME=Q></FORM>"#);
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].action.as_deref(), Some("/x"));
    assert_eq!(forms[0].method, cafc_html::FormMethod::Post);
    assert_eq!(forms[0].fields[0].name.as_deref(), Some("Q")); // value case kept
}

#[test]
fn nested_forms_html_forbids_but_web_contains() {
    // Browsers implicitly ignore a <form> inside a <form>; our DOM nests it,
    // and extract_forms returns both — callers see two candidate forms.
    let doc = parse("<form action=a><input name=x><form action=b><input name=y></form></form>");
    let forms = extract_forms(&doc);
    assert_eq!(forms.len(), 2);
    // The outer form's walk reaches both fields (nested form content is
    // inside its subtree); the inner sees only its own.
    assert!(!forms[0].fields.is_empty());
    assert_eq!(forms[1].fields.len(), 1);
}

#[test]
fn optgroup_options_collected() {
    let doc = parse(
        "<form><select name=s><optgroup label=West><option>Utah</option>\
         <option>Nevada</option></optgroup><optgroup label=East>\
         <option>Ohio</option></optgroup></select></form>",
    );
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].fields[0].options, vec!["Utah", "Nevada", "Ohio"]);
}

#[test]
fn table_layout_form_still_extracts() {
    // The classic 2000s layout: the form's fields scattered across a table.
    let doc = parse(
        "<form action=/s><table><tr><td>From</td><td><input name=from></td></tr>\
         <tr><td>To</td><td><input name=to></td></tr>\
         <tr><td colspan=2><input type=submit value=Search></td></tr></table></form>",
    );
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].visible_field_count(), 2);
    assert!(forms[0].inner_text.contains("From"));
    assert!(forms[0].inner_text.contains("To"));
}

#[test]
fn comments_inside_forms_ignored() {
    let doc = parse("<form><!-- <input name=ghost> --><input name=real></form>");
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].fields.len(), 1);
}

#[test]
fn cdata_like_junk_survives() {
    let doc = parse("<![CDATA[ not html ]]><p>ok</p>");
    let text: Vec<_> = located_text(&doc).into_iter().map(|lt| lt.text).collect();
    assert!(text.contains(&"ok".to_owned()));
}

#[test]
fn mixed_case_entities_and_numeric() {
    let doc = parse("<p>&AMP; &amp; &#38; &#x26;</p>");
    let text = located_text(&doc);
    // &AMP; is not recognized (case-sensitive, like HTML4), the rest are.
    assert_eq!(text[0].text, "&AMP; & & &");
}

#[test]
fn title_inside_body_still_counts_as_title_location() {
    // Broken pages put <title> anywhere; we key on the element, not <head>.
    let doc = parse("<body><title>Late Title</title><p>x</p></body>");
    let title_runs: Vec<_> = located_text(&doc)
        .into_iter()
        .filter(|lt| lt.location == TextLocation::Title)
        .collect();
    assert_eq!(title_runs.len(), 1);
    assert_eq!(title_runs[0].text, "Late Title");
}

#[test]
fn whitespace_only_document() {
    let doc = parse("   \n\t  ");
    assert!(located_text(&doc).is_empty());
    assert!(extract_forms(&doc).is_empty());
}

#[test]
fn huge_attribute_value_no_blowup() {
    let big = "x".repeat(100_000);
    let html = format!(r#"<a href="{big}">link</a>"#);
    let doc = parse(&html);
    let a = doc.elements_named("a").next().expect("anchor parsed");
    assert_eq!(doc.attr(a, "href").map(str::len), Some(100_000));
}

#[test]
fn form_with_only_hidden_fields_has_zero_visible() {
    let doc = parse(
        "<form><input type=hidden name=a><input type=hidden name=b>\
         <input type=submit value=Go></form>",
    );
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].visible_field_count(), 0);
    assert!(!forms[0].is_single_attribute());
}

#[test]
fn select_multiple_and_size_attributes() {
    let doc = parse(r#"<form><select name=s multiple size=5><option>a</option></select></form>"#);
    let forms = extract_forms(&doc);
    assert_eq!(forms[0].fields[0].kind, cafc_html::FormFieldKind::Select);
}

#[test]
fn br_and_hr_between_fields() {
    let doc = parse("<form><input name=a><br><hr><input name=b></form>");
    assert_eq!(extract_forms(&doc)[0].fields.len(), 2);
}

#[test]
fn doctype_and_xml_prolog_skipped() {
    let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE html><p>x</p>");
    assert_eq!(located_text(&doc).len(), 1);
}

#[test]
fn real_world_soup_round_trip() {
    // A structurally-abusive page exercising most recovery paths at once.
    let html = r#"
        <HTML><head><TITLE>Acme&nbsp;Search</tItLe>
        <body bgcolor=white>
        <table><tr><td><form action=search.cgi>
        <b>Find:<input name=q size=30><input type=image src=go.gif>
        </td></table>
        <p>Copyright &copy; Acme <a href=about.html>about</ишка>
        "#;
    let doc = parse(html);
    assert_eq!(doc.title().as_deref(), Some("Acme Search"));
    let forms = extract_forms(&doc);
    assert_eq!(forms.len(), 1);
    assert!(forms[0].is_single_attribute());
    assert!(forms[0].inner_text.contains("Find:"));
}
