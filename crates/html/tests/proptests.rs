//! Property-based tests for the HTML substrate: the parser must never panic
//! and must uphold basic structural invariants on arbitrary input.

use cafc_html::{located_text, parse, Tokenizer};
use proptest::prelude::*;

proptest! {
    /// The tokenizer terminates and never panics on arbitrary input.
    #[test]
    fn tokenizer_total_on_arbitrary_input(s in ".{0,400}") {
        let toks = Tokenizer::run(&s);
        // Token count is bounded by input length (each token consumes >= 1 byte).
        prop_assert!(toks.len() <= s.len() + 1);
    }

    /// The DOM builder never panics and extraction is total.
    #[test]
    fn parser_total_on_arbitrary_input(s in ".{0,400}") {
        let doc = parse(&s);
        let _ = located_text(&doc);
        let _ = cafc_html::extract_forms(&doc);
        let _ = doc.title();
    }

    /// Parsing HTML-shaped input: every extracted text run is non-empty and
    /// contains no leading/trailing whitespace.
    #[test]
    fn located_text_is_trimmed(words in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let html = format!("<p>{}</p><form>{}</form>", words.join(" "), words.join(" "));
        let doc = parse(&html);
        for lt in located_text(&doc) {
            prop_assert!(!lt.text.is_empty());
            prop_assert_eq!(lt.text.trim(), lt.text.as_str());
        }
    }

    /// Text placed in the body never leaks into form locations and vice versa.
    #[test]
    fn location_separation(
        body_word in "[a-z]{3,10}",
        form_word in "[A-Z]{3,10}",
    ) {
        let html = format!("<p>{body_word}</p><form>{form_word} <input name=q></form>");
        let doc = parse(&html);
        for lt in located_text(&doc) {
            if lt.text == body_word {
                prop_assert!(!lt.location.is_form());
            }
            if lt.text == form_word {
                prop_assert!(lt.location.is_form());
            }
        }
    }

    /// Entity round-trip: text made of safe characters survives unchanged
    /// through tokenize + parse + extract.
    #[test]
    fn safe_text_roundtrip(words in proptest::collection::vec("[a-zA-Z0-9]{1,10}", 1..10)) {
        let text = words.join(" ");
        let html = format!("<div>{text}</div>");
        let doc = parse(&html);
        let got = located_text(&doc);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].text, &text);
    }

    /// Balanced nesting: n opened divs produce n div elements.
    #[test]
    fn balanced_nesting(n in 1usize..60) {
        let html = "<div>".repeat(n) + "x" + &"</div>".repeat(n);
        let doc = parse(&html);
        prop_assert_eq!(doc.elements_named("div").count(), n);
    }
}
