//! Table-driven pathological-input tests for the HTML substrate: the
//! entity decoder and tokenizer must absorb hostile fragments — truncated
//! entities, out-of-range code points, CDATA-like junk, unterminated tags —
//! without panicking and with documented passthrough behavior.

use cafc_html::{located_text, parse, Token, Tokenizer};

#[test]
fn entity_decoding_pathological_table() {
    // (input, expected decode output). Unknown and malformed entities pass
    // through verbatim — the browser behavior that keeps `?a=1&b=2` intact.
    let cases: &[(&str, &str)] = &[
        // Unterminated at EOF (mid-entity cut, the TruncateMidEntity shape).
        ("&amp", "&amp"),
        ("&#12", "&#12"),
        ("&#x1F4A", "&#x1F4A"),
        ("&quo", "&quo"),
        // Lone and bare ampersands.
        ("&", "&"),
        ("a & b", "a & b"),
        ("&;", "&;"),
        ("&&&", "&&&"),
        // Numeric references beyond the Unicode range.
        ("&#xFFFFFFFF;", "&#xFFFFFFFF;"),
        ("&#x110000;", "&#x110000;"),
        ("&#99999999;", "&#99999999;"),
        // NUL and C1 controls map to the replacement character.
        ("&#0;", "\u{fffd}"),
        ("&#x85;", "\u{fffd}"),
        // Unknown named entity passes through.
        ("&bogus;", "&bogus;"),
        // Over-long candidate (>32 chars) is not an entity.
        (
            "&aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa;",
            "&aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa;",
        ),
        // Sanity: the happy path still decodes around the hostile ones.
        ("&amp;&bogus;&lt;", "&&bogus;<"),
    ];
    for (input, expected) in cases {
        assert_eq!(
            cafc_html::entities::decode(input),
            *expected,
            "decode({input:?})"
        );
    }
}

#[test]
fn tokenizer_survives_pathological_fragments() {
    // None of these may panic; tokens must cover the input's visible text.
    let cases: &[&str] = &[
        "<",
        "<!",
        "</",
        "</>",
        "< >",
        "<3 apples for <5 dollars",
        "<input",                  // unterminated tag at EOF
        "<input name=\"q",         // EOF inside a quoted value
        "<a href=",                // EOF after '='
        "<![CDATA[ junk ]]>",      // CDATA-like junk
        "<!%$#@>",                 // bogus markup declaration
        "<script>var a = '<div>'", // unterminated raw-text element
        "<title>half a title",     // unterminated raw-text at EOF
        "<p/><p////>",             // slash soup
        "text &#x1F4A",            // mid-entity EOF inside text
        "\u{0}\u{1}<p>\u{7f}</p>", // control chars around markup
    ];
    for input in cases {
        let tokens = Tokenizer::run(input);
        // No token may carry an empty text payload (the tokenizer's own
        // contract), panic-free tokenization is the main assertion.
        for t in &tokens {
            if let Token::Text(s) = t {
                assert!(!s.is_empty(), "empty text token for {input:?}");
            }
        }
    }
}

#[test]
fn cdata_like_junk_does_not_leak_into_text() {
    let doc = parse("<p>before</p><![CDATA[ junk ]]><p>after</p>");
    let text: String = located_text(&doc)
        .into_iter()
        .map(|lt| lt.text)
        .collect::<Vec<_>>()
        .join(" ");
    assert!(text.contains("before") && text.contains("after"));
}

#[test]
fn parser_survives_pathological_documents() {
    // End-to-end: parse + text extraction on the tokenizer table plus a few
    // document-scale horrors.
    let mut cases: Vec<String> = vec![
        "<form><form><form><input name=a".to_owned(),
        "</div></div></div>".to_owned(),
        format!("<div title=\"{}\">deep breath</div>", "x".repeat(100_000)),
        format!("{}payload", "<div>".repeat(2000)),
        "&#xFFFFFFFF;".repeat(500),
    ];
    cases.push(String::new());
    for html in &cases {
        let doc = parse(html);
        let _ = located_text(&doc); // must not panic
    }
}

#[test]
fn truncated_real_page_keeps_prefix_text() {
    let page = "<html><title>Jobs</title><body><p>search postings</p><form><inp";
    let doc = parse(page);
    let all: String = located_text(&doc)
        .into_iter()
        .map(|lt| lt.text)
        .collect::<Vec<_>>()
        .join(" ");
    assert!(all.contains("Jobs"));
    assert!(all.contains("search postings"));
}
