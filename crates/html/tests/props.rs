//! `cafc-check` property suite for the HTML stack — the invariants the
//! fuzzing oracles (crates/fuzz) check per-execution, pinned here as
//! standing properties over generated pages and arbitrary hostile text.
//! Runs offline on every commit; any counterexample the fuzzer finds
//! lands in `fuzz/regressions/` and its root cause gets a fix plus a
//! regression test here.

use cafc_check::corpus::{any_text, html_page};
use cafc_check::gen::{pairs, usizes, Gen};
use cafc_check::{check, require, CheckConfig};
use cafc_html::coverage::Coverage;
use cafc_html::{parse, parse_chunked, strip_control_chars, Document, StreamingParser, Tokenizer};

/// Inputs that stress both markup structure and raw hostile bytes.
fn hostile_input() -> Gen<String> {
    let page = html_page();
    let noise = any_text(200);
    pairs(&page, &noise).map(|(p, n)| {
        let mut s = String::with_capacity(p.len() + n.len());
        s.push_str(p);
        s.push_str(n);
        s
    })
}

/// `strip_control_chars` is idempotent: sanitizing a sanitized string is
/// the identity and reports no change.
#[test]
fn sanitize_is_idempotent() {
    check!(CheckConfig::new(), any_text(400), |s: &String| {
        let once = strip_control_chars(s).0.into_owned();
        let (twice, changed) = strip_control_chars(&once);
        require!(!changed, "second sanitize pass reported a change on {s:?}");
        require!(twice == once, "second sanitize pass altered {once:?}");
        Ok(())
    });
}

/// `parse`, `parse_with_stats` and `parse_with_coverage` build the same
/// tree: stats and coverage recording never perturb the parse.
#[test]
fn parse_equals_parse_with_stats_and_coverage() {
    check!(CheckConfig::new(), hostile_input(), |s: &String| {
        let plain = parse(s);
        let (with_stats, _) = Document::parse_with_stats(s);
        require!(plain == with_stats, "parse != parse_with_stats on {s:?}");
        let cov = Coverage::enabled();
        let (instrumented, _) = Document::parse_with_coverage(s, &cov);
        require!(
            plain == instrumented,
            "coverage recording changed the tree on {s:?}"
        );
        Ok(())
    });
}

/// Chunked delivery is equivalent to whole delivery at every split point.
/// `parse_chunked` is a thin wrapper over the real incremental
/// [`StreamingParser`], so this pins the resumable tokenizer itself, not a
/// concatenate-then-parse shim.
#[test]
fn chunked_parse_equals_whole_parse() {
    let input_and_cut = pairs(&hostile_input(), &usizes(0, 1 << 16));
    check!(CheckConfig::new(), input_and_cut, |(s, cut): &(
        String,
        usize
    )| {
        let mut at = cut % (s.len() + 1);
        while at > 0 && !s.is_char_boundary(at) {
            at -= 1;
        }
        let chunks = [&s[..at], &s[at..]];
        require!(
            parse_chunked(&chunks) == parse(s),
            "split at byte {at} changed the parse of {s:?}"
        );
        Ok(())
    });
}

/// The streaming parser is chunking-invariant under arbitrary deliveries:
/// feed the same input as pseudo-random byte-sized pieces — cuts inside
/// tags, entities, and multi-byte UTF-8 sequences included — and the tree
/// is bit-identical to the one-shot parse.
#[test]
fn streaming_parse_survives_random_chunk_splits() {
    let input_and_seed = pairs(&hostile_input(), &usizes(0, 1 << 16));
    check!(CheckConfig::new(), input_and_seed, |(s, seed): &(
        String,
        usize
    )| {
        let mut parser = StreamingParser::new();
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let mut state = *seed as u64 ^ 0x9e37_79b9_7f4a_7c15;
        while pos < bytes.len() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let step = 1 + (state >> 33) as usize % 7;
            let end = (pos + step).min(bytes.len());
            parser.push_bytes(&bytes[pos..end]);
            pos = end;
        }
        require!(
            parser.finish() == parse(s),
            "random chunking (seed {seed}) changed the parse of {s:?}"
        );
        Ok(())
    });
}

/// The tokenizer's byte position is monotonically non-decreasing and
/// never exceeds the input length.
#[test]
fn tokenizer_position_stays_in_bounds() {
    check!(CheckConfig::new(), hostile_input(), |s: &String| {
        let mut tok = Tokenizer::new(s);
        let mut prev = tok.pos();
        while tok.next().is_some() {
            let pos = tok.pos();
            require!(pos >= prev, "pos went backwards: {prev} -> {pos} on {s:?}");
            require!(
                pos <= s.len(),
                "pos {pos} past input len {} on {s:?}",
                s.len()
            );
            prev = pos;
        }
        Ok(())
    });
}

/// Coverage is a pure function of input: two instrumented parses of the
/// same string produce identical hit maps and bitmap hashes.
#[test]
fn coverage_is_deterministic_per_input() {
    check!(CheckConfig::new(), hostile_input(), |s: &String| {
        let run = |input: &str| {
            let cov = Coverage::enabled();
            let _ = Document::parse_with_coverage(input, &cov);
            cov.snapshot().map(|m| (m.bitmap_hash(), m.edge_count()))
        };
        let a = run(s);
        let b = run(s);
        require!(a == b, "coverage differed across identical parses of {s:?}");
        require!(a.is_some(), "enabled coverage produced no snapshot");
        Ok(())
    });
}

/// Parsing records *some* coverage for any non-empty input: the proxy
/// cannot silently go dark (a regression here would disable guidance).
#[test]
fn nonempty_inputs_always_cover_something() {
    check!(CheckConfig::new(), hostile_input(), |s: &String| {
        if s.is_empty() {
            return Ok(());
        }
        let cov = Coverage::enabled();
        let _ = Document::parse_with_coverage(s, &cov);
        let edges = cov.snapshot().map(|m| m.edge_count()).unwrap_or(0);
        require!(edges > 0, "no coverage recorded for non-empty {s:?}");
        Ok(())
    });
}
