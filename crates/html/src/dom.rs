//! DOM tree construction from the token stream.
//!
//! The builder is a pragmatic approximation of the HTML tree-construction
//! algorithm: it handles void elements, self-closing syntax, the common
//! implicit-close pairs (`<li>`, `<option>`, `<p>`, table rows/cells) and
//! silently drops stray end tags. The output is an arena of [`Node`]s
//! addressed by [`NodeId`], which keeps the tree `Copy`-indexable and cheap
//! to traverse — important because the corpus pipeline parses hundreds of
//! pages per experiment run.

use crate::coverage::{Coverage, CoveragePoint};
use crate::tokenizer::{Attribute, Token, Tokenizer};

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with lowercased name, attributes and child nodes.
    Element {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Children in document order.
        children: Vec<NodeId>,
    },
    /// A text run (entity-decoded).
    Text(String),
    /// A comment (excluded from all text extraction).
    Comment(String),
}

impl Node {
    /// The element name, or `None` for text/comments.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            Node::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Text content if this is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// Elements that never have children.
pub(crate) const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Returns true if `name` is a void element.
pub fn is_void(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

/// `(incoming, closes)` pairs: seeing `incoming` while `closes` is the open
/// element implicitly closes it.
pub(crate) const IMPLICIT_CLOSE: &[(&str, &str)] = &[
    ("li", "li"),
    ("option", "option"),
    ("optgroup", "option"),
    ("optgroup", "optgroup"),
    ("p", "p"),
    ("tr", "tr"),
    ("tr", "td"),
    ("tr", "th"),
    ("td", "td"),
    ("td", "th"),
    ("th", "th"),
    ("th", "td"),
    ("dd", "dd"),
    ("dd", "dt"),
    ("dt", "dt"),
    ("dt", "dd"),
];

/// Maximum open-element depth. Start tags past this depth still create
/// nodes, but as siblings under the element at the cap rather than ever
/// deeper children — so entity-bomb nesting cannot overflow the stack of
/// any downstream recursive consumer, while no content is lost.
pub const MAX_DEPTH: usize = 512;

/// Maximum nodes per document — the [`NodeId`] u32 address space. Tokens
/// past the cap are dropped (a page this size is a parser attack, not
/// content).
const MAX_NODES: usize = u32::MAX as usize;

/// What the parser had to do to keep a hostile document tractable.
/// Produced by [`Document::parse_with_stats`]; the ingestion layer maps
/// these onto degradation reasons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Open-element nesting hit [`MAX_DEPTH`]; deeper elements were
    /// reparented to the capped depth.
    pub depth_capped: bool,
    /// The node arena hit its u32 capacity; later tokens were dropped.
    pub nodes_capped: bool,
}

/// A parsed HTML document: an arena of nodes plus the top-level roots.
///
/// Equality is structural (same arena contents and roots) — the fuzz
/// oracles use it to compare parses of the same input along different
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl Document {
    /// Parse `html` into a tree. Infallible.
    pub fn parse(html: &str) -> Document {
        Document::parse_with_stats(html).0
    }

    /// Parse `html`, also reporting which structural caps were hit.
    /// Infallible on any byte sequence.
    pub fn parse_with_stats(html: &str) -> (Document, ParseStats) {
        Document::parse_with_coverage(html, &Coverage::disabled())
    }

    /// Parse `html`, reporting tokenizer and tree-builder state transitions
    /// to `cov`. With a disabled handle this is exactly
    /// [`Document::parse_with_stats`]; coverage recording never changes the
    /// parse result.
    pub fn parse_with_coverage(html: &str, cov: &Coverage) -> (Document, ParseStats) {
        let mut builder = TreeBuilder::new(cov.clone());
        for token in Tokenizer::with_coverage(html, cov.clone()) {
            builder.feed(token);
            if builder.nodes_capped() {
                break;
            }
        }
        builder.finish()
    }

    fn push(&mut self, node: Node) -> NodeId {
        // parse_with_stats stops before the arena can outgrow u32.
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn append(&mut self, stack: &[NodeId], id: NodeId) {
        match stack.last() {
            // The stack holds element ids only; anything else would mean
            // arena corruption, which parenting to the root survives.
            Some(&parent) => match &mut self.nodes[parent.index()] {
                Node::Element { children, .. } => children.push(id),
                _ => self.roots.push(id),
            },
            None => self.roots.push(id),
        }
    }

    /// All nodes, by arena index.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Top-level nodes in document order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Children of a node (empty for text/comments).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match self.node(id) {
            Node::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Depth-first pre-order traversal of the whole document.
    pub fn walk(&self) -> Walk<'_> {
        let mut pending: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        pending.shrink_to_fit();
        Walk { doc: self, pending }
    }

    /// Depth-first pre-order traversal rooted at `id` (inclusive).
    pub fn walk_from(&self, id: NodeId) -> Walk<'_> {
        Walk {
            doc: self,
            pending: vec![id],
        }
    }

    /// All elements with the given (lowercase) name, in document order.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.walk()
            .filter(move |&id| self.node(id).element_name() == Some(name))
    }

    /// The first attribute value with this name on an element node.
    pub fn attr(&self, id: NodeId, attr_name: &str) -> Option<&str> {
        match self.node(id) {
            Node::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == attr_name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Concatenated descendant text of `id`, whitespace-normalized.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        for n in self.walk_from(id) {
            if let Some(t) = self.node(n).as_text() {
                parts.push(t.trim());
            }
        }
        let joined = parts.join(" ");
        normalize_ws(&joined)
    }

    /// The `<title>` text, if present.
    pub fn title(&self) -> Option<String> {
        self.elements_named("title")
            .next()
            .map(|id| self.text_content(id))
            .filter(|t| !t.is_empty())
    }
}

/// Incremental tree construction: the body of the old `parse_with_coverage`
/// loop, factored so tokens can be fed one at a time by the streaming
/// parser. Whole-document parsing and `StreamingParser` share this exact
/// code path, which is what makes `parse_chunked(chunks) ==
/// parse(chunks.concat())` a structural property instead of a test hope.
pub(crate) struct TreeBuilder {
    doc: Document,
    stats: ParseStats,
    /// Stack of open element node ids.
    stack: Vec<NodeId>,
    cov: Coverage,
}

impl TreeBuilder {
    /// An empty builder reporting tree transitions to `cov`.
    pub(crate) fn new(cov: Coverage) -> TreeBuilder {
        TreeBuilder {
            doc: Document {
                nodes: Vec::new(),
                roots: Vec::new(),
            },
            stats: ParseStats::default(),
            stack: Vec::new(),
            cov,
        }
    }

    /// Whether the node arena hit its cap; further tokens are dropped.
    pub(crate) fn nodes_capped(&self) -> bool {
        self.stats.nodes_capped
    }

    /// Apply one token to the tree under construction.
    pub(crate) fn feed(&mut self, token: Token) {
        if self.stats.nodes_capped {
            return;
        }
        if self.doc.nodes.len() >= MAX_NODES {
            self.cov.record(CoveragePoint::TreeNodesCapped);
            self.stats.nodes_capped = true;
            return;
        }
        match token {
            Token::Doctype(_) => {
                self.cov.record(CoveragePoint::TreeDoctypeDropped);
            }
            Token::Comment(c) => {
                self.cov.record(CoveragePoint::TreeComment);
                let id = self.doc.push(Node::Comment(c));
                self.doc.append(&self.stack, id);
            }
            Token::Text(t) => {
                self.cov.record(CoveragePoint::TreeText);
                let id = self.doc.push(Node::Text(t));
                self.doc.append(&self.stack, id);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Implicit closes (e.g. <option> closes an open <option>).
                while let Some(&top) = self.stack.last() {
                    // The stack only ever holds element ids.
                    let Some(top_name) = self.doc.nodes[top.index()].element_name() else {
                        break;
                    };
                    if IMPLICIT_CLOSE
                        .iter()
                        .any(|(inc, closes)| *inc == name && *closes == top_name)
                    {
                        self.cov.record(CoveragePoint::TreeImplicitClose);
                        self.stack.pop();
                    } else {
                        break;
                    }
                }
                let id = self.doc.push(Node::Element {
                    name: name.clone(),
                    attrs,
                    children: Vec::new(),
                });
                if self.stack.is_empty() {
                    self.cov.record(CoveragePoint::TreeRootAppend);
                }
                self.doc.append(&self.stack, id);
                if !self_closing && !is_void(&name) {
                    if self.stack.len() < MAX_DEPTH {
                        self.stack.push(id);
                    } else {
                        self.cov.record(CoveragePoint::TreeDepthCapped);
                        self.stats.depth_capped = true;
                    }
                } else {
                    self.cov.record(CoveragePoint::TreeVoid);
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element; ignore stray end tags.
                if let Some(pos) = self.stack.iter().rposition(|&id| {
                    self.doc.nodes[id.index()].element_name() == Some(name.as_str())
                }) {
                    self.cov.record(CoveragePoint::TreeEndMatched);
                    self.stack.truncate(pos);
                } else {
                    self.cov.record(CoveragePoint::TreeStrayEndDropped);
                }
            }
        }
    }

    /// The finished document and the caps hit while building it.
    pub(crate) fn finish(self) -> (Document, ParseStats) {
        (self.doc, self.stats)
    }
}

/// Collapse runs of whitespace into single spaces and trim.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Pre-order DFS iterator over node ids.
pub struct Walk<'a> {
    doc: &'a Document,
    pending: Vec<NodeId>,
}

impl<'a> Iterator for Walk<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.pending.pop()?;
        let children = self.doc.children(id);
        self.pending.extend(children.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let doc = Document::parse("<div><p>a</p><p>b</p></div>");
        let div = doc.elements_named("div").next().expect("div exists");
        assert_eq!(doc.children(div).len(), 2);
        assert_eq!(doc.text_content(div), "a b");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = Document::parse("<p><input name=a>text</p>");
        let input = doc.elements_named("input").next().expect("input exists");
        assert!(doc.children(input).is_empty());
        let p = doc.elements_named("p").next().expect("p exists");
        assert_eq!(doc.text_content(p), "text");
    }

    #[test]
    fn self_closing_elements_take_no_children() {
        let doc = Document::parse("<div/><span>x</span>");
        let div = doc.elements_named("div").next().expect("div");
        assert!(doc.children(div).is_empty());
    }

    #[test]
    fn implicit_option_close() {
        let doc = Document::parse("<select><option>One<option>Two</select>");
        let opts: Vec<_> = doc.elements_named("option").collect();
        assert_eq!(opts.len(), 2);
        assert_eq!(doc.text_content(opts[0]), "One");
        assert_eq!(doc.text_content(opts[1]), "Two");
    }

    #[test]
    fn implicit_li_close() {
        let doc = Document::parse("<ul><li>a<li>b<li>c</ul>");
        assert_eq!(doc.elements_named("li").count(), 3);
        let first = doc.elements_named("li").next().expect("li");
        assert_eq!(doc.text_content(first), "a");
    }

    #[test]
    fn implicit_table_cells() {
        let doc = Document::parse("<table><tr><td>1<td>2<tr><td>3</table>");
        assert_eq!(doc.elements_named("tr").count(), 2);
        assert_eq!(doc.elements_named("td").count(), 3);
    }

    #[test]
    fn stray_end_tags_ignored() {
        let doc = Document::parse("</p><b>x</b></div>");
        assert_eq!(doc.elements_named("b").count(), 1);
    }

    #[test]
    fn unclosed_elements_still_parent_following_content() {
        let doc = Document::parse("<div><span>a");
        let span = doc.elements_named("span").next().expect("span");
        assert_eq!(doc.text_content(span), "a");
    }

    #[test]
    fn mismatched_close_recovers() {
        // </div> closes the div, implicitly abandoning the span.
        let doc = Document::parse("<div><span>a</div><p>b</p>");
        let p = doc.elements_named("p").next().expect("p");
        assert_eq!(doc.text_content(p), "b");
        // p is a root-level element, not inside div.
        assert!(doc.roots().len() >= 2);
    }

    #[test]
    fn title_extraction() {
        let doc = Document::parse("<html><head><title> Book  Store </title></head></html>");
        assert_eq!(doc.title().as_deref(), Some("Book Store"));
    }

    #[test]
    fn missing_title_is_none() {
        assert_eq!(Document::parse("<p>x</p>").title(), None);
        assert_eq!(Document::parse("<title></title>").title(), None);
    }

    #[test]
    fn attr_lookup() {
        let doc = Document::parse(r#"<form action="/search" method=POST>"#);
        let form = doc.elements_named("form").next().expect("form");
        assert_eq!(doc.attr(form, "action"), Some("/search"));
        assert_eq!(doc.attr(form, "method"), Some("POST"));
        assert_eq!(doc.attr(form, "missing"), None);
    }

    #[test]
    fn comments_preserved_but_inert() {
        let doc = Document::parse("<p><!-- hidden -->shown</p>");
        let p = doc.elements_named("p").next().expect("p");
        assert_eq!(doc.text_content(p), "shown");
    }

    #[test]
    fn walk_is_preorder() {
        let doc = Document::parse("<a><b></b><c></c></a><d></d>");
        let names: Vec<_> = doc
            .walk()
            .filter_map(|id| doc.node(id).element_name().map(str::to_owned))
            .collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn normalize_ws_collapses() {
        assert_eq!(normalize_ws("  a \n\t b  "), "a b");
        assert_eq!(normalize_ws(""), "");
        assert_eq!(normalize_ws("   "), "");
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        let html = "<div>".repeat(5000) + "x" + &"</div>".repeat(5000);
        let doc = Document::parse(&html);
        assert_eq!(doc.elements_named("div").count(), 5000);
    }

    #[test]
    fn deep_nesting_caps_depth_but_keeps_content() {
        let html = "<div>".repeat(5000) + "payload" + &"</div>".repeat(5000);
        let (doc, stats) = Document::parse_with_stats(&html);
        assert!(stats.depth_capped);
        assert_eq!(doc.elements_named("div").count(), 5000);
        // The text survives and the realized tree depth is bounded.
        let all_text: String = doc.walk().filter_map(|id| doc.node(id).as_text()).collect();
        assert_eq!(all_text, "payload");
        fn depth(doc: &Document, id: NodeId) -> usize {
            1 + doc
                .children(id)
                .iter()
                .map(|&c| depth(doc, c))
                .max()
                .unwrap_or(0)
        }
        let max_depth = doc.roots().iter().map(|&r| depth(&doc, r)).max().unwrap();
        assert!(max_depth <= MAX_DEPTH + 1, "depth {max_depth} exceeds cap");
    }

    #[test]
    fn shallow_documents_report_no_caps() {
        let (_, stats) = Document::parse_with_stats("<div><p>fine</p></div>");
        assert_eq!(stats, ParseStats::default());
    }
}
