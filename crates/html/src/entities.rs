//! HTML character-entity decoding.
//!
//! Supports the named entities that occur in practice on form pages plus
//! decimal (`&#65;`) and hexadecimal (`&#x41;`) numeric references. Unknown
//! entities are passed through verbatim, which is what browsers do for
//! strings like `&foo` and avoids destroying query-string text such as
//! `?a=1&b=2` that frequently leaks into attribute values.

/// The named entities we decode. This is the set observed on real form
/// pages; extending it is a one-line change per entity.
pub(crate) const NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", " "),
    ("copy", "\u{a9}"),
    ("reg", "\u{ae}"),
    ("trade", "\u{2122}"),
    ("mdash", "\u{2014}"),
    ("ndash", "\u{2013}"),
    ("hellip", "\u{2026}"),
    ("laquo", "\u{ab}"),
    ("raquo", "\u{bb}"),
    ("middot", "\u{b7}"),
    ("bull", "\u{2022}"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("eacute", "\u{e9}"),
    ("egrave", "\u{e8}"),
    ("agrave", "\u{e0}"),
    ("ccedil", "\u{e7}"),
    ("uuml", "\u{fc}"),
    ("ouml", "\u{f6}"),
    ("auml", "\u{e4}"),
    ("szlig", "\u{df}"),
    ("ntilde", "\u{f1}"),
    ("pound", "\u{a3}"),
    ("euro", "\u{20ac}"),
    ("yen", "\u{a5}"),
    ("cent", "\u{a2}"),
    ("sect", "\u{a7}"),
    ("deg", "\u{b0}"),
    ("plusmn", "\u{b1}"),
    ("frac12", "\u{bd}"),
    ("times", "\u{d7}"),
    ("divide", "\u{f7}"),
];

/// Look up a named entity body (without `&` and `;`).
fn named(name: &str) -> Option<&'static str> {
    NAMED.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Decode a numeric character reference body such as `#65` or `#x41`.
fn numeric(body: &str) -> Option<char> {
    let digits = body.strip_prefix('#')?;
    let cp = if let Some(hex) = digits.strip_prefix(['x', 'X']) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        digits.parse::<u32>().ok()?
    };
    match cp {
        // Control characters and NUL map to replacement, like browsers.
        0 | 0x80..=0x9f => Some('\u{fffd}'),
        _ => char::from_u32(cp),
    }
}

/// Decode all entity references in `input`.
///
/// Returns the input unchanged (no allocation beyond the output string) when
/// no `&` occurs.
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_owned();
    }
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        // Find the end of a plausible entity: up to 32 chars, terminated by
        // ';'. Entities are ASCII alphanumerics or '#x...' bodies.
        let bytes = rest.as_bytes();
        let mut end = 1;
        while end < bytes.len() && end <= 32 {
            let b = bytes[end];
            if b == b';' {
                break;
            }
            if !(b.is_ascii_alphanumeric() || b == b'#') {
                end = 0; // not an entity
                break;
            }
            end += 1;
        }
        if end > 1 && end < bytes.len() && bytes[end] == b';' {
            let body = &rest[1..end];
            if let Some(rep) = named(body) {
                out.push_str(rep);
                rest = &rest[end + 1..];
                continue;
            }
            if let Some(ch) = numeric(body) {
                out.push(ch);
                rest = &rest[end + 1..];
                continue;
            }
        }
        // Not a recognized entity: emit the '&' literally and move on.
        out.push('&');
        rest = &rest[1..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_without_ampersand() {
        assert_eq!(decode("plain text"), "plain text");
    }

    #[test]
    fn named_entities() {
        assert_eq!(decode("a &amp; b"), "a & b");
        assert_eq!(decode("&lt;form&gt;"), "<form>");
        assert_eq!(decode("&quot;hi&quot;"), "\"hi\"");
        assert_eq!(decode("&nbsp;"), " ");
        assert_eq!(decode("&copy; 2006"), "\u{a9} 2006");
    }

    #[test]
    fn numeric_decimal_and_hex() {
        assert_eq!(decode("&#65;"), "A");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
        assert_eq!(decode("&#233;"), "é");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(decode("&unknown;"), "&unknown;");
        assert_eq!(decode("a&b"), "a&b");
        assert_eq!(decode("?a=1&b=2"), "?a=1&b=2");
    }

    #[test]
    fn unterminated_entity_is_literal() {
        assert_eq!(decode("&amp"), "&amp");
        assert_eq!(decode("fish & chips"), "fish & chips");
    }

    #[test]
    fn control_codepoints_become_replacement() {
        assert_eq!(decode("&#0;"), "\u{fffd}");
        assert_eq!(decode("&#x80;"), "\u{fffd}");
    }

    #[test]
    fn invalid_codepoint_is_literal() {
        // Surrogate: char::from_u32 fails, so the text stays as-is.
        assert_eq!(decode("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn consecutive_entities() {
        assert_eq!(decode("&lt;&lt;&gt;&gt;"), "<<>>");
    }

    #[test]
    fn entity_at_string_boundaries() {
        assert_eq!(decode("&amp; end"), "& end");
        assert_eq!(decode("start &amp;"), "start &");
    }

    #[test]
    fn overlong_candidate_rejected() {
        let long = format!("&{};", "a".repeat(40));
        assert_eq!(decode(&long), long);
    }
}
