//! Located text extraction — the raw material for location-aware TF-IDF.
//!
//! The form-page model weights a term by *where* it occurs (Equation 1's
//! `LOC_i` factor): option values inside forms are down-weighted because
//! they reflect database *contents* rather than schema; title terms are
//! up-weighted because, like search engines, the paper treats document
//! titles as strong topic indicators. This module walks the DOM once and
//! tags every text run with its [`TextLocation`].

use crate::dom::{Document, Node, NodeId};

/// Where a text run occurred in the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TextLocation {
    /// Inside `<title>`.
    Title,
    /// Inside a heading element (`<h1>`–`<h6>`).
    Heading,
    /// Anchor text of a link (outside any form).
    Anchor,
    /// Ordinary body text outside any form.
    Body,
    /// Free text between `<form>` tags (labels, captions) excluding options.
    FormText,
    /// Text inside an `<option>` element of a form.
    FormOption,
    /// Visible attribute text of form fields (button values, prefills).
    FormValue,
}

impl TextLocation {
    /// True for locations that belong to the *form content* (FC) space.
    pub fn is_form(self) -> bool {
        matches!(
            self,
            TextLocation::FormText | TextLocation::FormOption | TextLocation::FormValue
        )
    }

    /// All locations, for exhaustive iteration in tests and weighting tables.
    pub const ALL: [TextLocation; 7] = [
        TextLocation::Title,
        TextLocation::Heading,
        TextLocation::Anchor,
        TextLocation::Body,
        TextLocation::FormText,
        TextLocation::FormOption,
        TextLocation::FormValue,
    ];
}

/// A text run and where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedText {
    /// The text (entity-decoded, trimmed, non-empty).
    pub text: String,
    /// Its location class.
    pub location: TextLocation,
}

/// Traversal context carried down the DOM walk.
#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    in_title: bool,
    in_heading: bool,
    in_anchor: bool,
    in_form: bool,
    in_option: bool,
}

impl Ctx {
    fn location(self) -> TextLocation {
        if self.in_form {
            if self.in_option {
                TextLocation::FormOption
            } else {
                TextLocation::FormText
            }
        } else if self.in_title {
            TextLocation::Title
        } else if self.in_heading {
            TextLocation::Heading
        } else if self.in_anchor {
            TextLocation::Anchor
        } else {
            TextLocation::Body
        }
    }
}

/// Extract every visible text run of the document with its location.
///
/// Script and style content is skipped entirely; comments never surface.
/// Visible field values inside forms (submit-button labels, prefilled input
/// text) are emitted as [`TextLocation::FormValue`].
///
/// The walk carries an explicit stack — not the call stack — so document
/// depth (already capped by the parser) can never overflow it.
pub fn located_text(doc: &Document) -> Vec<LocatedText> {
    let mut out = Vec::new();
    let mut pending: Vec<(NodeId, Ctx)> = doc
        .roots()
        .iter()
        .rev()
        .map(|&r| (r, Ctx::default()))
        .collect();
    while let Some((id, ctx)) = pending.pop() {
        match doc.node(id) {
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.push(LocatedText {
                        text: crate::dom::normalize_ws(t),
                        location: ctx.location(),
                    });
                }
            }
            Node::Comment(_) => {}
            Node::Element { name, .. } => {
                let mut ctx = ctx;
                match name.as_str() {
                    "script" | "style" | "noscript" => continue,
                    "title" => ctx.in_title = true,
                    "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => ctx.in_heading = true,
                    "a" => ctx.in_anchor = true,
                    "form" => ctx.in_form = true,
                    "option" => ctx.in_option = true,
                    "input" if ctx.in_form => {
                        // Visible value text of buttons and prefilled inputs.
                        let ty = doc.attr(id, "type").map(str::to_ascii_lowercase);
                        let visible = !matches!(ty.as_deref(), Some("hidden") | Some("password"));
                        if visible {
                            if let Some(v) = doc.attr(id, "value") {
                                let v = v.trim();
                                if !v.is_empty() {
                                    out.push(LocatedText {
                                        text: crate::dom::normalize_ws(v),
                                        location: TextLocation::FormValue,
                                    });
                                }
                            }
                        }
                    }
                    "img" => {
                        // alt text is visible text in every location class.
                        if let Some(alt) = doc.attr(id, "alt") {
                            let alt = alt.trim();
                            if !alt.is_empty() {
                                out.push(LocatedText {
                                    text: crate::dom::normalize_ws(alt),
                                    location: ctx.location(),
                                });
                            }
                        }
                    }
                    _ => {}
                }
                pending.extend(doc.children(id).iter().rev().map(|&c| (c, ctx)));
            }
        }
    }
    out
}

/// Convenience: all text of the given location classes joined with spaces.
pub fn text_in_locations(doc: &Document, locations: &[TextLocation]) -> String {
    located_text(doc)
        .into_iter()
        .filter(|lt| locations.contains(&lt.location))
        .map(|lt| lt.text)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn extract(html: &str) -> Vec<LocatedText> {
        located_text(&parse(html))
    }

    fn lt(text: &str, location: TextLocation) -> LocatedText {
        LocatedText {
            text: text.into(),
            location,
        }
    }

    #[test]
    fn title_heading_body() {
        let got = extract("<title>Books</title><h1>Store</h1><p>welcome</p>");
        assert_eq!(
            got,
            vec![
                lt("Books", TextLocation::Title),
                lt("Store", TextLocation::Heading),
                lt("welcome", TextLocation::Body),
            ]
        );
    }

    #[test]
    fn anchor_text() {
        let got = extract(r#"<a href="/x">cheap flights</a>"#);
        assert_eq!(got, vec![lt("cheap flights", TextLocation::Anchor)]);
    }

    #[test]
    fn form_text_vs_option() {
        let got = extract("<form>Destination <select><option>Paris</option></select></form>");
        assert_eq!(
            got,
            vec![
                lt("Destination", TextLocation::FormText),
                lt("Paris", TextLocation::FormOption),
            ]
        );
    }

    #[test]
    fn form_overrides_anchor_and_heading() {
        let got = extract("<form><h2>Search</h2><a href=x>advanced</a></form>");
        assert_eq!(
            got,
            vec![
                lt("Search", TextLocation::FormText),
                lt("advanced", TextLocation::FormText)
            ]
        );
    }

    #[test]
    fn button_value_is_form_value() {
        let got = extract(r#"<form><input type=submit value="Find Flights"></form>"#);
        assert_eq!(got, vec![lt("Find Flights", TextLocation::FormValue)]);
    }

    #[test]
    fn hidden_and_password_values_invisible() {
        let got = extract(
            r#"<form><input type=hidden value=secret><input type=password value=pw></form>"#,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn script_and_style_skipped() {
        let got = extract("<script>skip me</script><style>.x{}</style><p>keep</p>");
        assert_eq!(got, vec![lt("keep", TextLocation::Body)]);
    }

    #[test]
    fn img_alt_text() {
        let got = extract(r#"<p><img src=x.gif alt="rental cars"></p>"#);
        assert_eq!(got, vec![lt("rental cars", TextLocation::Body)]);
    }

    #[test]
    fn text_outside_form_is_body() {
        // Figure 1(c) in the paper: label outside the FORM tags.
        let got = extract("<b>Search Jobs</b><form><input name=q></form>");
        assert_eq!(got, vec![lt("Search Jobs", TextLocation::Body)]);
    }

    #[test]
    fn text_in_locations_helper() {
        let doc = parse("<title>A</title><p>B</p><form>C</form>");
        assert_eq!(
            text_in_locations(&doc, &[TextLocation::Title, TextLocation::Body]),
            "A B"
        );
        assert_eq!(text_in_locations(&doc, &[TextLocation::FormText]), "C");
    }

    #[test]
    fn whitespace_normalized() {
        let got = extract("<p>a\n\n   b</p>");
        assert_eq!(got, vec![lt("a b", TextLocation::Body)]);
    }

    #[test]
    fn is_form_predicate() {
        assert!(TextLocation::FormText.is_form());
        assert!(TextLocation::FormOption.is_form());
        assert!(TextLocation::FormValue.is_form());
        assert!(!TextLocation::Body.is_form());
        assert!(!TextLocation::Title.is_form());
    }
}
