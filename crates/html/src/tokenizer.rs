//! A forgiving HTML tokenizer.
//!
//! Converts raw HTML into a stream of [`Token`]s. The grammar accepted is a
//! superset of what well-formed pages use and degrades gracefully on the
//! malformed markup that dominates real form pages: unclosed tags, bare
//! attributes, unquoted values, stray `<` in text, case-mixed tag names.
//!
//! Raw-text elements (`<script>`, `<style>`, `<textarea>`, `<title>`,
//! `<xmp>`) are handled per the HTML parsing rules: their content is
//! consumed verbatim until the matching end tag, so JavaScript containing
//! `<` or `"</div>"` strings cannot corrupt the token stream.

use crate::coverage::{Coverage, CoveragePoint};
use crate::entities::decode;

/// A single HTML attribute, with its value entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value; empty string for bare attributes like `checked`.
    pub value: String,
}

/// One lexical token of the HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=value ...>`; `self_closing` is true for `<br/>` forms.
    StartTag {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in document order; duplicates preserved.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Tag name, lowercased.
        name: String,
    },
    /// A run of character data, entity-decoded. Never empty.
    Text(String),
    /// `<!-- ... -->` contents (not decoded).
    Comment(String),
    /// `<!DOCTYPE ...>` body.
    Doctype(String),
}

/// Elements whose content is raw text: no tags are recognized inside until
/// the matching close tag.
pub(crate) const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "textarea", "title", "xmp"];

/// Streaming tokenizer over an HTML string.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// When set, we are inside a raw-text element of this name. The
    /// streaming parser snapshots and restores this field across chunk
    /// boundaries, so a `<script>` opened in one chunk keeps raw-text
    /// semantics in the next.
    pub(crate) raw_text_until: Option<String>,
    /// Coverage sink; disabled (a single branch per record) by default.
    cov: Coverage,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer::with_coverage(input, Coverage::disabled())
    }

    /// Create a tokenizer that reports state transitions to `cov`.
    pub fn with_coverage(input: &'a str, cov: Coverage) -> Self {
        Tokenizer {
            input,
            pos: 0,
            raw_text_until: None,
            cov,
        }
    }

    /// Current byte offset into the input. Monotonically non-decreasing
    /// and never past `input.len()` — an invariant the fuzz oracles pin.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Tokenize the whole input into a vector.
    pub fn run(input: &'a str) -> Vec<Token> {
        Tokenizer::new(input).collect()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    pub(crate) fn bump(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.input.len());
    }

    /// Scan raw text until `</name` (ASCII case-insensitive).
    fn next_raw_text(&mut self, name: &str) -> Option<Token> {
        let rest = self.rest();
        let lower = rest.to_ascii_lowercase();
        let needle = format!("</{name}");
        match lower.find(&needle) {
            Some(0) => {
                // Immediately at the end tag: consume `</name ...>`.
                self.cov.record(CoveragePoint::RawTextClose);
                self.raw_text_until = None;
                let after = &rest[needle.len()..];
                let close = after.find('>').map(|i| i + 1).unwrap_or(after.len());
                self.bump(needle.len() + close);
                Some(Token::EndTag {
                    name: name.to_owned(),
                })
            }
            Some(idx) => {
                let text = &rest[..idx];
                self.bump(idx);
                if text.is_empty() {
                    self.next_token()
                } else {
                    self.cov.record(CoveragePoint::Text);
                    Some(Token::Text(decode(text)))
                }
            }
            None => {
                // Unterminated raw text: everything remaining is content.
                self.cov.record(CoveragePoint::RawTextUnterminated);
                self.raw_text_until = None;
                let text = rest;
                self.bump(rest.len());
                if text.is_empty() {
                    None
                } else {
                    Some(Token::Text(decode(text)))
                }
            }
        }
    }

    pub(crate) fn next_token(&mut self) -> Option<Token> {
        if let Some(name) = self.raw_text_until.clone() {
            return self.next_raw_text(&name);
        }
        let rest = self.rest();
        if rest.is_empty() {
            return None;
        }
        if let Some(after_lt) = rest.strip_prefix('<') {
            if let Some(comment) = after_lt.strip_prefix("!--") {
                // Comment: scan for -->
                let (body, consumed) = match comment.find("-->") {
                    Some(i) => {
                        self.cov.record(CoveragePoint::Comment);
                        (&comment[..i], 4 + i + 3)
                    }
                    None => {
                        self.cov.record(CoveragePoint::CommentUnterminated);
                        (comment, rest.len())
                    }
                };
                self.bump(consumed);
                return Some(Token::Comment(body.to_owned()));
            }
            if after_lt.starts_with('!') || after_lt.starts_with('?') {
                // Doctype / processing instruction: scan for '>'.
                self.cov.record(CoveragePoint::Doctype);
                let (body, consumed) = match after_lt.find('>') {
                    Some(i) => (&after_lt[1..i], 1 + i + 1),
                    None => (&after_lt[1..], rest.len()),
                };
                self.bump(consumed);
                return Some(Token::Doctype(body.trim().to_owned()));
            }
            if let Some(after_slash) = after_lt.strip_prefix('/') {
                // End tag.
                if after_slash
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic())
                {
                    let (name_end, _) = tag_name_end(after_slash);
                    let name = after_slash[..name_end].to_ascii_lowercase();
                    let after_name = &after_slash[name_end..];
                    let consumed = 2
                        + name_end
                        + after_name
                            .find('>')
                            .map(|i| i + 1)
                            .unwrap_or(after_name.len());
                    self.bump(consumed);
                    self.cov.record(CoveragePoint::EndTag);
                    self.cov
                        .record(CoveragePoint::TagName(CoveragePoint::tag_bucket(&name)));
                    return Some(Token::EndTag { name });
                }
                // `</` not followed by a letter: literal text.
                self.cov.record(CoveragePoint::StrayEndTag);
                self.bump(1);
                return Some(Token::Text("<".to_owned()));
            }
            if after_lt
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
            {
                return Some(self.scan_start_tag(after_lt));
            }
            // Stray '<': treat as text.
            self.cov.record(CoveragePoint::StrayLt);
            self.bump(1);
            return Some(Token::Text("<".to_owned()));
        }
        // Character data until the next '<'.
        self.cov.record(CoveragePoint::Text);
        let end = rest.find('<').unwrap_or(rest.len());
        let text = &rest[..end];
        self.bump(end);
        Some(Token::Text(decode(text)))
    }

    /// Parse a start tag beginning right after `<`; `after_lt` starts at the
    /// first name character.
    fn scan_start_tag(&mut self, after_lt: &str) -> Token {
        let (name_end, _) = tag_name_end(after_lt);
        let name = after_lt[..name_end].to_ascii_lowercase();
        self.cov.record(CoveragePoint::StartTag);
        self.cov
            .record(CoveragePoint::TagName(CoveragePoint::tag_bucket(&name)));
        let mut s = &after_lt[name_end..];
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            s = s.trim_start();
            if s.is_empty() {
                // Unterminated tag: consume everything.
                self.cov.record(CoveragePoint::TagUnterminatedEof);
                self.bump(self.rest().len());
                break;
            }
            if let Some(r) = s.strip_prefix("/>") {
                self.cov.record(CoveragePoint::SelfClosing);
                self_closing = true;
                let consumed = self.rest().len() - r.len();
                self.bump(consumed);
                break;
            }
            if let Some(r) = s.strip_prefix('>') {
                let consumed = self.rest().len() - r.len();
                self.bump(consumed);
                break;
            }
            if let Some(r) = s.strip_prefix('/') {
                // Stray slash not followed by '>': skip it.
                self.cov.record(CoveragePoint::StraySlash);
                s = r;
                continue;
            }
            // Attribute name.
            let name_len = s
                .char_indices()
                .find(|(_, c)| c.is_whitespace() || matches!(c, '=' | '>' | '/'))
                .map(|(i, _)| i)
                .unwrap_or(s.len());
            if name_len == 0 {
                // Unexpected char (e.g. a quote); skip one char to make progress.
                self.cov.record(CoveragePoint::TagJunkSkipped);
                let mut it = s.chars();
                it.next();
                s = it.as_str();
                continue;
            }
            let attr_name = s[..name_len].to_ascii_lowercase();
            self.cov
                .record(CoveragePoint::AttrName(CoveragePoint::attr_bucket(
                    &attr_name,
                )));
            s = s[name_len..].trim_start();
            let mut value = String::new();
            if let Some(r) = s.strip_prefix('=') {
                let r = r.trim_start();
                if let Some(q) = r.strip_prefix('"') {
                    self.cov.record(CoveragePoint::AttrDoubleQuoted);
                    let end = q.find('"').unwrap_or(q.len());
                    value = decode(&q[..end]);
                    s = &q[(end + 1).min(q.len())..];
                } else if let Some(q) = r.strip_prefix('\'') {
                    self.cov.record(CoveragePoint::AttrSingleQuoted);
                    let end = q.find('\'').unwrap_or(q.len());
                    value = decode(&q[..end]);
                    s = &q[(end + 1).min(q.len())..];
                } else {
                    self.cov.record(CoveragePoint::AttrUnquoted);
                    let end = r
                        .char_indices()
                        .find(|(_, c)| c.is_whitespace() || *c == '>')
                        .map(|(i, _)| i)
                        .unwrap_or(r.len());
                    value = decode(&r[..end]);
                    s = &r[end..];
                }
            } else {
                self.cov.record(CoveragePoint::AttrBare);
            }
            attrs.push(Attribute {
                name: attr_name,
                value,
            });
        }
        if RAW_TEXT_ELEMENTS.contains(&name.as_str()) && !self_closing {
            self.cov.record(CoveragePoint::RawTextEnter);
            self.raw_text_until = Some(name.clone());
        }
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }
}

/// Index of the first character after the tag name, plus that index.
fn tag_name_end(s: &str) -> (usize, ()) {
    let idx = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-' || *c == ':'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (idx, ())
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        loop {
            let before = self.pos;
            let tok = self.next_token()?;
            // Suppress pure-whitespace text tokens only if empty after decode;
            // whitespace is significant for word separation, so keep it.
            if let Token::Text(t) = &tok {
                if t.is_empty() {
                    if self.pos == before {
                        // Safety net against non-advancing loops.
                        self.bump(1);
                    }
                    continue;
                }
            }
            debug_assert!(self.pos > before || self.pos == self.input.len());
            return Some(tok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::run(s)
    }

    fn start(name: &str) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        assert_eq!(
            toks("<p>hi</p>"),
            vec![
                start("p"),
                Token::Text("hi".into()),
                Token::EndTag { name: "p".into() }
            ]
        );
    }

    #[test]
    fn tag_names_lowercased() {
        assert_eq!(
            toks("<DIV></DiV>"),
            vec![start("div"), Token::EndTag { name: "div".into() }]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_bare() {
        let t = toks(r#"<input type="text" name='kw' size=20 required>"#);
        match &t[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(name, "input");
                assert!(!self_closing);
                assert_eq!(
                    attrs,
                    &vec![
                        Attribute {
                            name: "type".into(),
                            value: "text".into()
                        },
                        Attribute {
                            name: "name".into(),
                            value: "kw".into()
                        },
                        Attribute {
                            name: "size".into(),
                            value: "20".into()
                        },
                        Attribute {
                            name: "required".into(),
                            value: "".into()
                        },
                    ]
                );
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn self_closing() {
        let t = toks("<br/><hr />");
        assert!(matches!(
            &t[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(
            &t[1],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let t = toks(r#"<a title="A &amp; B">x &lt; y</a>"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].value, "A & B"),
            _ => panic!(),
        }
        assert_eq!(t[1], Token::Text("x < y".into()));
    }

    #[test]
    fn comments() {
        let t = toks("a<!-- note -->b");
        assert_eq!(
            t,
            vec![
                Token::Text("a".into()),
                Token::Comment(" note ".into()),
                Token::Text("b".into())
            ]
        );
    }

    #[test]
    fn unterminated_comment_consumes_rest() {
        let t = toks("a<!-- oops");
        assert_eq!(
            t,
            vec![Token::Text("a".into()), Token::Comment(" oops".into())]
        );
    }

    #[test]
    fn doctype() {
        let t = toks("<!DOCTYPE html><p>x</p>");
        assert_eq!(t[0], Token::Doctype("DOCTYPE html".into()));
    }

    #[test]
    fn script_raw_text() {
        let t = toks(r#"<script>if (a < b) { document.write("</p>"); }</script>after"#);
        // Raw-text mode only terminates on `</script`, so the embedded
        // "</p>" string stays inside a single text token.
        assert_eq!(
            t,
            vec![
                start("script"),
                Token::Text(r#"if (a < b) { document.write("</p>"); }"#.into()),
                Token::EndTag {
                    name: "script".into()
                },
                Token::Text("after".into()),
            ]
        );
    }

    #[test]
    fn script_with_less_than_survives() {
        let t = toks("<script>for(i=0;i<10;i++){}</script>ok");
        assert!(t.contains(&Token::Text("for(i=0;i<10;i++){}".into())));
        assert!(t.contains(&Token::Text("ok".into())));
    }

    #[test]
    fn unterminated_script() {
        let t = toks("<script>var x = 1;");
        assert_eq!(t, vec![start("script"), Token::Text("var x = 1;".into())]);
    }

    #[test]
    fn textarea_content_is_raw() {
        let t = toks("<textarea><b>not bold</b></textarea>");
        assert_eq!(
            t,
            vec![
                start("textarea"),
                Token::Text("<b>not bold</b>".into()),
                Token::EndTag {
                    name: "textarea".into()
                },
            ]
        );
    }

    #[test]
    fn stray_lt_is_text() {
        let t = toks("1 < 2 and 3 > 2");
        let joined: String = t
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(joined, "1 < 2 and 3 > 2");
    }

    #[test]
    fn end_tag_with_junk() {
        let t = toks("</p attr=1>");
        assert_eq!(t, vec![Token::EndTag { name: "p".into() }]);
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let t = toks("<input type=text");
        assert_eq!(t.len(), 1);
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "input"));
    }

    #[test]
    fn empty_input() {
        assert!(toks("").is_empty());
    }

    #[test]
    fn only_whitespace_text_is_kept() {
        let t = toks("a  b");
        assert_eq!(t, vec![Token::Text("a  b".into())]);
    }

    #[test]
    fn attr_value_with_gt_in_quotes() {
        let t = toks(r#"<a href="x>y">t</a>"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].value, "x>y"),
            _ => panic!(),
        }
    }

    #[test]
    fn never_panics_on_garbage() {
        for s in [
            "<", "</", "<>", "< >", "<a b=\"", "<a b='x", "<!", "<!-", "&", "&#", "&#;",
        ] {
            let _ = toks(s);
        }
    }
}
