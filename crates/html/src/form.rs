//! Form extraction — the *FC* (form content) side of the form-page model.
//!
//! A [`Form`] captures everything CAFC observes about a `<form>` element:
//! its submission metadata, its visible fields (text inputs, selects,
//! radios, checkboxes, textareas), the option values of its selects, and the
//! free text appearing between the `FORM` tags. Hidden fields
//! (`type="hidden"`) are excluded, exactly as in the paper ("we do not
//! consider hidden attributes ... which are invisible to users").

use crate::dom::{Document, Node, NodeId};

/// HTTP method of a form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormMethod {
    /// `method="get"` (the default).
    Get,
    /// `method="post"`.
    Post,
}

/// The kind of a visible form field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormFieldKind {
    /// `<input type="text">` (also `search`, unknown types, and missing type).
    Text,
    /// `<input type="password">`.
    Password,
    /// `<input type="checkbox">`.
    Checkbox,
    /// `<input type="radio">`.
    Radio,
    /// `<input type="submit">` / `<button>`.
    Submit,
    /// `<input type="image">` — a graphical submit button.
    Image,
    /// `<input type="reset">`.
    Reset,
    /// `<input type="file">`.
    File,
    /// `<select>`.
    Select,
    /// `<textarea>`.
    Textarea,
}

impl FormFieldKind {
    /// Whether this field is a *query attribute* of the form — an element a
    /// user fills to pose a query. Buttons are excluded.
    pub fn is_query_attribute(self) -> bool {
        !matches!(
            self,
            FormFieldKind::Submit | FormFieldKind::Reset | FormFieldKind::Image
        )
    }
}

/// A visible field of a form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    /// Field kind.
    pub kind: FormFieldKind,
    /// The `name` attribute, if any.
    pub name: Option<String>,
    /// The `value` attribute (button labels, prefilled text), if any.
    pub value: Option<String>,
    /// For selects: the visible text of each `<option>`.
    pub options: Vec<String>,
}

/// An extracted form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Form {
    /// The `action` URL, if present.
    pub action: Option<String>,
    /// Submission method; defaults to GET like browsers.
    pub method: FormMethod,
    /// Visible fields, in document order. Hidden inputs are excluded.
    pub fields: Vec<FormField>,
    /// Free text between the form tags, *excluding* option text,
    /// whitespace-normalized. This is the label/caption text of the form.
    pub inner_text: String,
    /// Visible text of every `<option>` in the form, in document order.
    pub option_texts: Vec<String>,
}

impl Form {
    /// Number of fields a user can fill (excludes submit/reset/image).
    pub fn visible_field_count(&self) -> usize {
        self.fields
            .iter()
            .filter(|f| f.kind.is_query_attribute())
            .count()
    }

    /// True when the form has exactly one fillable field — the paper's
    /// "single-attribute" (often keyword-based) interfaces.
    pub fn is_single_attribute(&self) -> bool {
        self.visible_field_count() == 1
    }

    /// Whether the form contains a password field — a strong signal of a
    /// login (non-searchable) form, used by the searchable-form classifier.
    pub fn has_password_field(&self) -> bool {
        self.fields
            .iter()
            .any(|f| f.kind == FormFieldKind::Password)
    }

    /// Whether the form has any free-text input.
    pub fn has_text_field(&self) -> bool {
        self.fields
            .iter()
            .any(|f| matches!(f.kind, FormFieldKind::Text | FormFieldKind::Textarea))
    }

    /// The labels on submit buttons (e.g. "Search", "Go", "Login").
    pub fn submit_labels(&self) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(|f| matches!(f.kind, FormFieldKind::Submit | FormFieldKind::Image))
            .filter_map(|f| f.value.as_deref())
    }
}

/// Extract every form in the document, in document order.
pub fn extract_forms(doc: &Document) -> Vec<Form> {
    doc.elements_named("form")
        .map(|id| extract_form(doc, id))
        .collect()
}

/// Extract the form rooted at `form_id` (which must be a `<form>` element).
pub fn extract_form(doc: &Document, form_id: NodeId) -> Form {
    let method = match doc
        .attr(form_id, "method")
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("post") => FormMethod::Post,
        _ => FormMethod::Get,
    };
    let action = doc
        .attr(form_id, "action")
        .map(str::to_owned)
        .filter(|a| !a.is_empty());

    let mut fields = Vec::new();
    let mut text_parts: Vec<String> = Vec::new();
    let mut option_texts = Vec::new();
    collect(
        doc,
        form_id,
        false,
        &mut fields,
        &mut text_parts,
        &mut option_texts,
    );

    let inner_text = crate::dom::normalize_ws(&text_parts.join(" "));
    Form {
        action,
        method,
        fields,
        inner_text,
        option_texts,
    }
}

/// Recursive walk below the form element. `in_option` marks text that
/// belongs to an `<option>` (kept separate so TF-IDF can down-weight it).
fn collect(
    doc: &Document,
    id: NodeId,
    in_option: bool,
    fields: &mut Vec<FormField>,
    text_parts: &mut Vec<String>,
    option_texts: &mut Vec<String>,
) {
    for &child in doc.children(id) {
        match doc.node(child) {
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    if in_option {
                        // Option text is recorded by the <option> handler.
                    } else {
                        text_parts.push(t.to_owned());
                    }
                }
            }
            Node::Comment(_) => {}
            Node::Element { name, .. } => match name.as_str() {
                "input" => {
                    if let Some(field) = input_field(doc, child) {
                        fields.push(field);
                    }
                }
                "select" => {
                    let mut options = Vec::new();
                    for opt in doc
                        .walk_from(child)
                        .filter(|&n| doc.node(n).element_name() == Some("option"))
                    {
                        let text = doc.text_content(opt);
                        let text = if text.is_empty() {
                            doc.attr(opt, "value").unwrap_or_default().to_owned()
                        } else {
                            text
                        };
                        if !text.is_empty() {
                            options.push(text.clone());
                            option_texts.push(text);
                        }
                    }
                    fields.push(FormField {
                        kind: FormFieldKind::Select,
                        name: doc.attr(child, "name").map(str::to_owned),
                        value: None,
                        options,
                    });
                }
                "textarea" => {
                    fields.push(FormField {
                        kind: FormFieldKind::Textarea,
                        name: doc.attr(child, "name").map(str::to_owned),
                        value: None,
                        options: Vec::new(),
                    });
                }
                "button" => {
                    fields.push(FormField {
                        kind: FormFieldKind::Submit,
                        name: doc.attr(child, "name").map(str::to_owned),
                        value: Some(doc.text_content(child)).filter(|t| !t.is_empty()),
                        options: Vec::new(),
                    });
                    // Button label is also visible form text.
                    let label = doc.text_content(child);
                    if !label.is_empty() {
                        text_parts.push(label);
                    }
                }
                "option" => {
                    collect(doc, child, true, fields, text_parts, option_texts);
                }
                "script" | "style" => {}
                _ => collect(doc, child, in_option, fields, text_parts, option_texts),
            },
        }
    }
}

/// Build a [`FormField`] from an `<input>`, or `None` for hidden inputs.
fn input_field(doc: &Document, id: NodeId) -> Option<FormField> {
    let ty = doc.attr(id, "type").map(str::to_ascii_lowercase);
    let kind = match ty.as_deref() {
        Some("hidden") => return None,
        Some("password") => FormFieldKind::Password,
        Some("checkbox") => FormFieldKind::Checkbox,
        Some("radio") => FormFieldKind::Radio,
        Some("submit") => FormFieldKind::Submit,
        Some("image") => FormFieldKind::Image,
        Some("reset") => FormFieldKind::Reset,
        Some("file") => FormFieldKind::File,
        // text, search, unknown, or missing type all behave as text inputs.
        _ => FormFieldKind::Text,
    };
    Some(FormField {
        kind,
        name: doc.attr(id, "name").map(str::to_owned),
        value: doc.attr(id, "value").map(str::to_owned),
        options: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn one_form(html: &str) -> Form {
        let doc = parse(html);
        let mut forms = extract_forms(&doc);
        assert_eq!(forms.len(), 1, "expected exactly one form in {html}");
        forms.remove(0)
    }

    #[test]
    fn keyword_form() {
        let f = one_form(
            r#"<form action="/s"><input type=text name=q><input type=submit value=Search></form>"#,
        );
        assert_eq!(f.action.as_deref(), Some("/s"));
        assert_eq!(f.method, FormMethod::Get);
        assert_eq!(f.fields.len(), 2);
        assert!(f.is_single_attribute());
        assert!(f.has_text_field());
        assert_eq!(f.submit_labels().collect::<Vec<_>>(), vec!["Search"]);
    }

    #[test]
    fn multi_attribute_form_with_selects() {
        let f = one_form(
            r#"<form method=POST>
                Job Category: <select name=cat><option>Engineering</option><option>Sales</option></select>
                State: <select name=state><option>Utah</option></select>
                <input type=submit value="Find Jobs">
            </form>"#,
        );
        assert_eq!(f.method, FormMethod::Post);
        assert_eq!(f.visible_field_count(), 2);
        assert!(!f.is_single_attribute());
        assert_eq!(f.option_texts, vec!["Engineering", "Sales", "Utah"]);
        assert!(f.inner_text.contains("Job Category:"));
        assert!(f.inner_text.contains("State:"));
        // Option text is *not* part of the free inner text.
        assert!(!f.inner_text.contains("Engineering"));
    }

    #[test]
    fn hidden_inputs_excluded() {
        let f = one_form(r#"<form><input type=hidden name=sid value=42><input name=q></form>"#);
        assert_eq!(f.fields.len(), 1);
        assert_eq!(f.fields[0].kind, FormFieldKind::Text);
    }

    #[test]
    fn password_detection() {
        let f = one_form(r#"<form><input name=u><input type=password name=p></form>"#);
        assert!(f.has_password_field());
        assert_eq!(f.visible_field_count(), 2);
    }

    #[test]
    fn input_without_type_is_text() {
        let f = one_form("<form><input name=q></form>");
        assert_eq!(f.fields[0].kind, FormFieldKind::Text);
    }

    #[test]
    fn button_element_is_submit_and_label_text() {
        let f = one_form("<form><input name=q><button>Go Now</button></form>");
        assert_eq!(f.fields.len(), 2);
        assert_eq!(f.fields[1].kind, FormFieldKind::Submit);
        assert_eq!(f.fields[1].value.as_deref(), Some("Go Now"));
        assert!(f.inner_text.contains("Go Now"));
    }

    #[test]
    fn option_value_attr_fallback() {
        let f = one_form(r#"<form><select name=s><option value="CA"></option></select></form>"#);
        assert_eq!(f.fields[0].options, vec!["CA"]);
    }

    #[test]
    fn radio_and_checkbox() {
        let f = one_form(
            r#"<form><input type=radio name=cond value=new><input type=checkbox name=used></form>"#,
        );
        assert_eq!(f.fields[0].kind, FormFieldKind::Radio);
        assert_eq!(f.fields[1].kind, FormFieldKind::Checkbox);
        assert_eq!(f.visible_field_count(), 2);
    }

    #[test]
    fn image_submit_counts_as_button() {
        let f = one_form(r#"<form><input name=q><input type=image src=go.gif value=go></form>"#);
        assert!(f.is_single_attribute());
    }

    #[test]
    fn text_outside_form_not_included() {
        // The paper's Figure 1(c): "Search Jobs" sits *outside* the FORM tags.
        let doc = parse(r#"<p>Search Jobs</p><form><input name=q></form>"#);
        let forms = extract_forms(&doc);
        assert_eq!(forms[0].inner_text, "");
    }

    #[test]
    fn multiple_forms_in_order() {
        let doc =
            parse(r#"<form action=a><input name=x></form><form action=b><input name=y></form>"#);
        let forms = extract_forms(&doc);
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[0].action.as_deref(), Some("a"));
        assert_eq!(forms[1].action.as_deref(), Some("b"));
    }

    #[test]
    fn script_inside_form_ignored() {
        let f = one_form(
            r#"<form><script>var a="<input name=fake>";</script><input name=real></form>"#,
        );
        assert_eq!(f.fields.len(), 1);
        assert_eq!(f.fields[0].name.as_deref(), Some("real"));
        assert_eq!(f.inner_text, "");
    }

    #[test]
    fn nested_markup_text_collected() {
        let f = one_form("<form><b>Departure</b> city <input name=dep></form>");
        assert_eq!(f.inner_text, "Departure city");
    }

    #[test]
    fn empty_form() {
        let f = one_form("<form></form>");
        assert!(f.fields.is_empty());
        assert_eq!(f.visible_field_count(), 0);
        assert!(!f.has_text_field());
    }
}
