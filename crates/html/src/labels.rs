//! Heuristic form-field label extraction.
//!
//! The paper's motivation (§1) is that "approaches to label extraction
//! often use heuristics ... to guess the appropriate label for a given
//! form attribute" and that this is brittle — CAFC deliberately avoids
//! depending on it. We implement the standard heuristics anyway, both as
//! a library feature (schema-matching systems downstream of CAFC need
//! labels) and so the brittleness is observable:
//!
//! 1. an explicit `<label for="id">` whose target matches the field's
//!    `id`;
//! 2. a wrapping `<label>` element;
//! 3. the nearest preceding text run inside the form, provided no other
//!    field intervenes (the layout heuristic of Raghavan & Garcia-Molina's
//!    HiWE, simplified to document order).

use crate::dom::{Document, Node, NodeId};
use crate::form::{FormField, FormFieldKind};

/// A field together with its guessed label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledField {
    /// The field (same data as [`crate::form::Form::fields`]).
    pub field: FormField,
    /// The extracted label text, if any heuristic fired.
    pub label: Option<String>,
    /// Which heuristic produced the label.
    pub source: LabelSource,
}

/// Provenance of an extracted label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// `<label for=…>` matched the field id.
    ExplicitFor,
    /// The field was nested inside a `<label>`.
    Wrapping,
    /// Nearest preceding text run.
    PrecedingText,
    /// No heuristic fired.
    None,
}

/// Extract fields with guessed labels from the form rooted at `form_id`.
pub fn extract_labeled_fields(doc: &Document, form_id: NodeId) -> Vec<LabeledField> {
    // Collect `<label for=…>` text by target id, over the whole document
    // (labels may sit outside the form element).
    let mut for_labels: Vec<(String, String)> = Vec::new();
    for label_el in doc.elements_named("label") {
        if let Some(target) = doc.attr(label_el, "for") {
            let text = doc.text_content(label_el);
            if !text.is_empty() {
                for_labels.push((target.to_owned(), text));
            }
        }
    }

    let mut out = Vec::new();
    let mut last_text: Option<String> = None;
    walk(doc, form_id, &mut last_text, &for_labels, false, &mut out);
    out
}

/// In-order walk below the form tracking the most recent text run.
fn walk(
    doc: &Document,
    id: NodeId,
    last_text: &mut Option<String>,
    for_labels: &[(String, String)],
    inside_label: bool,
    out: &mut Vec<LabeledField>,
) {
    for &child in doc.children(id) {
        match doc.node(child) {
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    *last_text = Some(crate::dom::normalize_ws(t));
                }
            }
            Node::Comment(_) => {}
            Node::Element { name, .. } => match name.as_str() {
                "input" | "select" | "textarea" => {
                    if let Some(field) = field_of(doc, child, name) {
                        let labeled =
                            label_for(doc, child, &field, last_text, for_labels, inside_label);
                        // Consume the preceding text so it cannot label two
                        // consecutive fields.
                        if labeled.source == LabelSource::PrecedingText {
                            *last_text = None;
                        }
                        out.push(labeled);
                    }
                    // A select's option text must not become the next
                    // field's label.
                    if name == "select" {
                        *last_text = None;
                    }
                }
                "label" => {
                    // Text inside the label is both "preceding text" for
                    // its wrapped field and the wrapping label itself.
                    walk(doc, child, last_text, for_labels, true, out);
                }
                "script" | "style" | "option" => {}
                _ => walk(doc, child, last_text, for_labels, inside_label, out),
            },
        }
    }
}

fn field_of(doc: &Document, id: NodeId, name: &str) -> Option<FormField> {
    match name {
        "input" => {
            let ty = doc.attr(id, "type").map(str::to_ascii_lowercase);
            if ty.as_deref() == Some("hidden") {
                return None;
            }
            let kind = match ty.as_deref() {
                Some("password") => FormFieldKind::Password,
                Some("checkbox") => FormFieldKind::Checkbox,
                Some("radio") => FormFieldKind::Radio,
                Some("submit") => FormFieldKind::Submit,
                Some("image") => FormFieldKind::Image,
                Some("reset") => FormFieldKind::Reset,
                Some("file") => FormFieldKind::File,
                _ => FormFieldKind::Text,
            };
            Some(FormField {
                kind,
                name: doc.attr(id, "name").map(str::to_owned),
                value: doc.attr(id, "value").map(str::to_owned),
                options: Vec::new(),
            })
        }
        "select" => Some(FormField {
            kind: FormFieldKind::Select,
            name: doc.attr(id, "name").map(str::to_owned),
            value: None,
            options: doc
                .walk_from(id)
                .filter(|&n| doc.node(n).element_name() == Some("option"))
                .map(|n| doc.text_content(n))
                .filter(|t| !t.is_empty())
                .collect(),
        }),
        "textarea" => Some(FormField {
            kind: FormFieldKind::Textarea,
            name: doc.attr(id, "name").map(str::to_owned),
            value: None,
            options: Vec::new(),
        }),
        _ => None,
    }
}

fn label_for(
    doc: &Document,
    field_node: NodeId,
    field: &FormField,
    last_text: &Option<String>,
    for_labels: &[(String, String)],
    inside_label: bool,
) -> LabeledField {
    // Heuristic 1: <label for=…> matching the field's id.
    if let Some(field_id) = doc.attr(field_node, "id") {
        if let Some((_, text)) = for_labels.iter().find(|(target, _)| target == field_id) {
            return LabeledField {
                field: field.clone(),
                label: Some(text.clone()),
                source: LabelSource::ExplicitFor,
            };
        }
    }
    // Heuristic 2: wrapping <label> — the tracked text inside it.
    if inside_label {
        if let Some(text) = last_text {
            return LabeledField {
                field: field.clone(),
                label: Some(text.clone()),
                source: LabelSource::Wrapping,
            };
        }
    }
    // Heuristic 3: nearest preceding text. Buttons rarely have labels and
    // their own value is more informative; skip.
    if field.kind.is_query_attribute() {
        if let Some(text) = last_text {
            return LabeledField {
                field: field.clone(),
                label: Some(text.clone()),
                source: LabelSource::PrecedingText,
            };
        }
    }
    LabeledField {
        field: field.clone(),
        label: None,
        source: LabelSource::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn labeled(html: &str) -> Vec<LabeledField> {
        let doc = parse(html);
        let form = doc.elements_named("form").next().expect("form exists");
        extract_labeled_fields(&doc, form)
    }

    #[test]
    fn explicit_for_label() {
        let fields = labeled(
            r#"<form><label for="dep">Departure City</label>
               <input type=text id=dep name=dep></form>"#,
        );
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].label.as_deref(), Some("Departure City"));
        assert_eq!(fields[0].source, LabelSource::ExplicitFor);
    }

    #[test]
    fn explicit_for_outside_form() {
        // The paper notes label elements may not be nested predictably.
        let fields =
            labeled(r#"<label for="q">Search Jobs</label><form><input id=q name=q></form>"#);
        assert_eq!(fields[0].label.as_deref(), Some("Search Jobs"));
    }

    #[test]
    fn wrapping_label() {
        let fields = labeled("<form><label>Job Category <select name=c><option>Sales</option></select></label></form>");
        assert_eq!(fields[0].label.as_deref(), Some("Job Category"));
        assert_eq!(fields[0].source, LabelSource::Wrapping);
    }

    #[test]
    fn preceding_text_heuristic() {
        let fields =
            labeled("<form><b>State:</b> <select name=s><option>Utah</option></select></form>");
        assert_eq!(fields[0].label.as_deref(), Some("State:"));
        assert_eq!(fields[0].source, LabelSource::PrecedingText);
    }

    #[test]
    fn preceding_text_not_reused() {
        let fields = labeled("<form>Keywords <input name=a><input name=b></form>");
        assert_eq!(fields[0].label.as_deref(), Some("Keywords"));
        assert_eq!(fields[1].label, None);
        assert_eq!(fields[1].source, LabelSource::None);
    }

    #[test]
    fn option_text_never_labels_next_field() {
        let fields = labeled(
            "<form>Make <select name=m><option>Ford</option></select><input name=zip></form>",
        );
        assert_eq!(fields[0].label.as_deref(), Some("Make"));
        assert_eq!(fields[1].label, None, "option text leaked as label");
    }

    #[test]
    fn hidden_fields_skipped() {
        let fields = labeled("<form>Visible <input type=hidden name=h><input name=v></form>");
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].field.name.as_deref(), Some("v"));
        assert_eq!(fields[0].label.as_deref(), Some("Visible"));
    }

    #[test]
    fn submit_button_gets_no_preceding_label() {
        let fields = labeled(r#"<form>Go <input type=submit value=Search></form>"#);
        assert_eq!(fields[0].label, None);
    }

    #[test]
    fn label_less_form() {
        let fields = labeled("<form><input name=q></form>");
        assert_eq!(fields[0].label, None);
        assert_eq!(fields[0].source, LabelSource::None);
    }

    #[test]
    fn multi_field_form_all_labelled() {
        let fields = labeled(
            "<form>From <input name=from><br>To <input name=to><br>\
             Date <select name=d><option>May</option></select></form>",
        );
        let labels: Vec<Option<&str>> = fields.iter().map(|f| f.label.as_deref()).collect();
        assert_eq!(labels, vec![Some("From"), Some("To"), Some("Date")]);
    }
}
