//! Pre-parse input sanitation for hostile documents.
//!
//! Real crawls hand the parser whatever the socket produced: NUL bytes,
//! stray C0/C1 control characters, backspace runs. None of it is
//! renderable text, and some of it (NUL in particular) confuses naive
//! downstream string handling. The ingestion layer strips it *before*
//! tokenizing and records that it did so (see `cafc`'s ingestion report).

use std::borrow::Cow;

/// True for characters that carry no visible text and should never reach
/// the tokenizer: C0 controls except `\t`/`\n`/`\r`, DEL, and the C1 block.
fn is_disallowed_control(c: char) -> bool {
    (c.is_control() && !matches!(c, '\t' | '\n' | '\r')) || ('\u{80}'..='\u{9f}').contains(&c)
}

/// Strip disallowed control characters, reporting whether any were found.
///
/// Clean input (the overwhelmingly common case) is borrowed, not copied.
pub fn strip_control_chars(input: &str) -> (Cow<'_, str>, bool) {
    if !input.chars().any(is_disallowed_control) {
        return (Cow::Borrowed(input), false);
    }
    let cleaned: String = input
        .chars()
        .filter(|&c| !is_disallowed_control(c))
        .collect();
    (Cow::Owned(cleaned), true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_is_borrowed() {
        let (out, stripped) = strip_control_chars("plain <b>text</b>\nwith\ttabs\r\n");
        assert!(!stripped);
        assert!(matches!(out, Cow::Borrowed(_)));
    }

    #[test]
    fn nul_and_c0_stripped() {
        let (out, stripped) = strip_control_chars("a\u{0}b\u{1}c\u{8}d");
        assert!(stripped);
        assert_eq!(out, "abcd");
    }

    #[test]
    fn c1_block_stripped() {
        let (out, stripped) = strip_control_chars("x\u{85}y\u{9f}z");
        assert!(stripped);
        assert_eq!(out, "xyz");
    }

    #[test]
    fn whitespace_controls_kept() {
        let (out, stripped) = strip_control_chars("a\tb\nc\rd");
        assert!(!stripped);
        assert_eq!(out, "a\tb\nc\rd");
    }

    #[test]
    fn all_control_input_becomes_empty() {
        let (out, stripped) = strip_control_chars("\u{0}\u{1}\u{2}");
        assert!(stripped);
        assert_eq!(out, "");
    }
}
