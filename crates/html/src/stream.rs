//! Push-based incremental HTML parsing.
//!
//! [`StreamingParser`] accepts a document in arbitrary chunks —
//! [`push_chunk`](StreamingParser::push_chunk) for `&str` pieces,
//! [`push_bytes`](StreamingParser::push_bytes) for raw bytes that may split
//! UTF-8 sequences — and produces a [`Document`] bit-identical to
//! [`Document::parse`] over the concatenated input. That equivalence is the
//! contract PR 6's fuzz oracle pinned (`parse_chunked(chunks) ==
//! parse(chunks.concat())`) and the property suites replay across random
//! split points.
//!
//! ## How resumption works
//!
//! The tokenizer's grammar is EOF-sensitive: an unterminated `<!--`, a tag
//! missing its `>`, or a lone `</` at end of input all lex differently than
//! they would with more bytes behind them. A naive "lex what you have"
//! strategy would therefore commit tokens that a longer input contradicts.
//! Instead the parser buffers the unconsumed tail and, on every push,
//! re-lexes it with a fresh [`Tokenizer`] whose raw-text state was restored
//! from the previous drain. Each lexed token is either
//!
//! * **committed** — fed to the incremental tree builder, its bytes dropped
//!   from the buffer, the tokenizer's raw-text state persisted — or
//! * **held** — discarded along with any state changes, ending the drain.
//!
//! A token is held whenever it ends within one byte of the buffer's end:
//! every EOF-dependent branch consumes input to the very end, and the one
//! branch that does not (a stray `</` lexing as `Text("<")` with a single
//! byte left) still lands inside that margin. Holding is always safe — held
//! bytes are simply re-lexed with more context on the next push — so the
//! rule over-holds (e.g. a text run touching the buffer end waits for the
//! next chunk rather than splitting into two text nodes) and never
//! under-holds. [`finish`](StreamingParser::finish) runs one final drain
//! with the EOF interpretation enabled, where nothing is held.
//!
//! Between pushes the parser retains only the held tail: partial tags,
//! entities, text runs, and — the one unbounded case — the body of a
//! raw-text element (`<script>`…) whose close tag has not arrived, which
//! cannot be emitted early because the token model represents it as a
//! single text run.

use crate::coverage::Coverage;
use crate::dom::{Document, ParseStats, TreeBuilder};
use crate::tokenizer::{Token, Tokenizer};

/// An incremental HTML parser: push chunks, then [`finish`] into a
/// [`Document`] identical to parsing the whole input at once.
///
/// ```
/// use cafc_html::StreamingParser;
///
/// let mut parser = StreamingParser::new();
/// parser.push_chunk("<p>hel");
/// parser.push_chunk("lo <b>wor");
/// parser.push_chunk("ld</b></p>");
/// assert_eq!(parser.finish(), cafc_html::parse("<p>hello <b>world</b></p>"));
/// ```
///
/// [`finish`]: StreamingParser::finish
pub struct StreamingParser {
    /// Decoded-but-uncommitted input: the held tail of the document.
    buf: String,
    /// 0–3 trailing bytes of an incomplete UTF-8 sequence from
    /// [`push_bytes`](StreamingParser::push_bytes).
    utf8_tail: Vec<u8>,
    /// Raw-text element the committed prefix left open, if any.
    raw_text_until: Option<String>,
    builder: TreeBuilder,
}

impl StreamingParser {
    /// An empty parser.
    ///
    /// Coverage instrumentation stays disabled internally: held tokens are
    /// re-lexed on later pushes, which would double-count tokenizer
    /// transitions; the fuzz oracles compare the *documents*, which are
    /// unaffected.
    pub fn new() -> StreamingParser {
        StreamingParser {
            buf: String::new(),
            utf8_tail: Vec::new(),
            raw_text_until: None,
            builder: TreeBuilder::new(Coverage::disabled()),
        }
    }

    /// Feed the next chunk of the document.
    pub fn push_chunk(&mut self, chunk: &str) {
        if self.utf8_tail.is_empty() {
            self.buf.push_str(chunk);
            self.drain(false);
        } else {
            // A byte push left a dangling UTF-8 prefix; route this chunk
            // through the byte path so the tail resolves consistently.
            self.push_bytes(chunk.as_bytes());
        }
    }

    /// Feed raw bytes, which may end mid-way through a UTF-8 sequence.
    ///
    /// Invalid sequences decode to U+FFFD exactly as
    /// [`String::from_utf8_lossy`] would over the concatenated byte stream,
    /// so `push_bytes` over any split of `bytes` is equivalent to
    /// `push_chunk(&String::from_utf8_lossy(bytes))` over the whole.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        let mut data = std::mem::take(&mut self.utf8_tail);
        data.extend_from_slice(bytes);
        let mut rest: &[u8] = &data;
        loop {
            match std::str::from_utf8(rest) {
                Ok(valid) => {
                    self.buf.push_str(valid);
                    break;
                }
                Err(err) => {
                    let (valid, bad) = rest.split_at(err.valid_up_to());
                    if let Ok(valid) = std::str::from_utf8(valid) {
                        self.buf.push_str(valid);
                    }
                    match err.error_len() {
                        // Incomplete trailing sequence: keep it for the
                        // next push to complete.
                        None => {
                            self.utf8_tail = bad.to_vec();
                            break;
                        }
                        // Invalid bytes: one replacement char per maximal
                        // invalid subsequence, per from_utf8_lossy.
                        Some(n) => {
                            self.buf.push('\u{FFFD}');
                            rest = &bad[n..];
                        }
                    }
                }
            }
        }
        self.drain(false);
    }

    /// Bytes currently buffered awaiting more input (held tail plus any
    /// incomplete UTF-8 sequence).
    pub fn buffered(&self) -> usize {
        self.buf.len() + self.utf8_tail.len()
    }

    /// End of input: resolve the held tail under EOF semantics and return
    /// the document.
    pub fn finish(self) -> Document {
        self.finish_with_stats().0
    }

    /// Like [`finish`](StreamingParser::finish), also reporting which
    /// structural caps were hit.
    pub fn finish_with_stats(mut self) -> (Document, ParseStats) {
        if !self.utf8_tail.is_empty() {
            // The stream ended inside a UTF-8 sequence: one replacement
            // char, as from_utf8_lossy emits for a truncated tail.
            self.utf8_tail.clear();
            self.buf.push('\u{FFFD}');
        }
        self.drain(true);
        self.builder.finish()
    }

    /// Lex the buffered tail, committing every token that cannot be
    /// contradicted by future input (all of them when `at_eof`).
    fn drain(&mut self, at_eof: bool) {
        let mut committed = 0usize;
        let mut committed_raw = self.raw_text_until.clone();
        {
            let mut lexer = Tokenizer::new(&self.buf);
            lexer.raw_text_until = self.raw_text_until.clone();
            loop {
                let before = lexer.pos();
                let Some(token) = lexer.next_token() else {
                    break;
                };
                let end = lexer.pos();
                // Hold anything ending within a byte of the buffer end: the
                // EOF-dependent lexes all consume to the end, and the stray
                // `</` case stops one byte short of it.
                if !at_eof && self.buf.len() - end <= 1 {
                    break;
                }
                if let Token::Text(t) = &token {
                    if t.is_empty() {
                        // Mirror the Iterator impl: skip empty text, with
                        // its safety bump against non-advancing lexes.
                        if end == before {
                            lexer.bump(1);
                        }
                        committed = lexer.pos();
                        committed_raw = lexer.raw_text_until.clone();
                        continue;
                    }
                }
                self.builder.feed(token);
                committed = end;
                committed_raw = lexer.raw_text_until.clone();
            }
        }
        self.raw_text_until = committed_raw;
        self.buf.drain(..committed);
    }
}

impl Default for StreamingParser {
    fn default() -> Self {
        StreamingParser::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Parse `input` streamed one `step`-byte (char-boundary-snapped) chunk
    /// at a time and assert equivalence with the whole-input parse.
    fn assert_streamed(input: &str, step: usize) {
        let mut parser = StreamingParser::new();
        let mut start = 0;
        while start < input.len() {
            let mut end = (start + step).min(input.len());
            while !input.is_char_boundary(end) {
                end += 1;
            }
            parser.push_chunk(&input[start..end]);
            start = end;
        }
        assert_eq!(
            parser.finish(),
            parse(input),
            "streamed parse diverged (step {step}): {input:?}"
        );
    }

    const SAMPLES: &[&str] = &[
        "",
        "plain text, no markup",
        "<p>hello <b>world</b></p>",
        "<ul><li>a<li>b<li>c</ul>",
        "<div><span>a</div><p>b</p>",
        r#"<form action="/search" method=POST><input type=text name=kw></form>"#,
        r#"<a title="A &amp; B">x &lt; y</a>"#,
        "<script>if (a < b) { document.write(\"</p>\"); }</script>after",
        "<textarea><b>not bold</b></textarea>",
        "<script>var unterminated = 1;",
        "a<!-- comment -->b",
        "a<!-- unterminated",
        "<!DOCTYPE html><p>x</p>",
        "1 < 2 and 3 > 2",
        "</p stray><b>x</b></div>",
        "<input type=text",
        "text ending in <",
        "text ending in </",
        "<",
        "</",
        "<>",
        "< >",
        "<a b=\"",
        "<a b='x",
        "<!",
        "<!-",
        "&",
        "&#",
        "&#;",
        "caf\u{e9} r\u{e9}sum\u{e9} \u{2603} <b>\u{1f600}</b>",
    ];

    #[test]
    fn every_split_matches_whole_parse() {
        for input in SAMPLES {
            for step in 1..=8 {
                assert_streamed(input, step);
            }
            assert_streamed(input, 64);
        }
    }

    #[test]
    fn single_push_matches_whole_parse() {
        for input in SAMPLES {
            let mut parser = StreamingParser::new();
            parser.push_chunk(input);
            assert_eq!(parser.finish(), parse(input), "single push: {input:?}");
        }
    }

    #[test]
    fn byte_pushes_split_utf8_sequences() {
        let input = "caf\u{e9} \u{2603} <b>\u{1f600}</b> fin";
        for step in 1..=5 {
            let mut parser = StreamingParser::new();
            for chunk in input.as_bytes().chunks(step) {
                parser.push_bytes(chunk);
            }
            assert_eq!(parser.finish(), parse(input), "byte step {step}");
        }
    }

    #[test]
    fn invalid_bytes_match_lossy_decoding() {
        let bytes: &[u8] = b"<p>a\xff\xfeb</p><i>\xf0\x9f tail</i>";
        let expected = parse(&String::from_utf8_lossy(bytes));
        for step in 1..=6 {
            let mut parser = StreamingParser::new();
            for chunk in bytes.chunks(step) {
                parser.push_bytes(chunk);
            }
            assert_eq!(parser.finish(), expected, "byte step {step}");
        }
    }

    #[test]
    fn truncated_utf8_tail_becomes_replacement_char() {
        let mut parser = StreamingParser::new();
        parser.push_bytes(b"<p>x\xf0\x9f");
        assert_eq!(parser.finish(), parse("<p>x\u{fffd}"));
    }

    #[test]
    fn str_chunk_after_dangling_byte_tail() {
        // A str push while a byte tail dangles must not reorder the two.
        let mut parser = StreamingParser::new();
        parser.push_bytes(b"<p>a\xc3");
        parser.push_chunk("<i>b</i>");
        // The dangling \xc3 cannot be completed by the next chunk's ASCII
        // lead byte, so it decodes to U+FFFD in place.
        assert_eq!(parser.finish(), parse("<p>a\u{fffd}<i>b</i>"));
    }

    #[test]
    fn buffered_drops_after_commit() {
        let mut parser = StreamingParser::new();
        parser.push_chunk("<p>hello</p><i>");
        // Everything except the trailing unterminated tag is committed.
        assert!(parser.buffered() <= "<i>".len());
    }

    #[test]
    fn raw_text_state_survives_chunk_boundaries() {
        let mut parser = StreamingParser::new();
        parser.push_chunk("<script>if (a <");
        parser.push_chunk(" b) {}</scr");
        parser.push_chunk("ipt>done");
        assert_eq!(parser.finish(), parse("<script>if (a < b) {}</script>done"));
    }

    #[test]
    fn finish_with_stats_reports_caps() {
        let html = "<div>".repeat(5000) + "payload" + &"</div>".repeat(5000);
        let mut parser = StreamingParser::new();
        for chunk in html.as_bytes().chunks(97) {
            parser.push_bytes(chunk);
        }
        let (doc, stats) = parser.finish_with_stats();
        let (expected_doc, expected_stats) = Document::parse_with_stats(&html);
        assert!(stats.depth_capped);
        assert_eq!(stats, expected_stats);
        assert_eq!(doc, expected_doc);
    }
}
