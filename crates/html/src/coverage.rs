//! A cheap coverage proxy over the tokenizer and tree builder.
//!
//! Real coverage-guided fuzzers (libFuzzer, AFL) instrument compiled
//! branches; this workspace cannot (no sanitizer runtime offline), so the
//! HTML stack exposes the next best thing: every interesting state
//! transition in the tokenizer and every recovery decision in the tree
//! builder reports a [`CoveragePoint`] to an optional [`Coverage`] handle.
//! Consecutive points form *edges* (AFL-style `prev → cur` pairs) that are
//! hashed into a fixed-size hit map, so "this input exercised new
//! behaviour" is a pure, deterministic function of the input bytes — the
//! signal `cafc-fuzz` schedules its corpus by.
//!
//! The handle follows the `cafc-obs` pattern: [`Coverage::disabled`]
//! carries `None` and every `record` call is a single branch, so the
//! production parse path pays (almost) nothing. Instrumentation is
//! single-threaded by construction — one tokenizer, one map — which keeps
//! the handle a plain `Rc<RefCell<…>>`.

use std::cell::RefCell;
use std::rc::Rc;

/// Number of hit-map bins. Power of two so the edge hash reduces with a
/// mask; large enough that the ~100-point alphabet squared collides
/// rarely.
pub const MAP_SIZE: usize = 4096;

/// One observed behaviour of the tokenizer or tree builder.
///
/// The variants enumerate the state machine's interesting transitions:
/// which token class was produced, how attributes were quoted, which
/// recovery path the tree builder took. `TagName`/`AttrName`/`EntityForm`
/// carry a small hash bucket so that *which* tag/attribute/entity was seen
/// widens the coverage space beyond the raw branch alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoveragePoint {
    /// A character-data run was emitted.
    Text,
    /// A start tag was scanned.
    StartTag,
    /// An end tag was scanned.
    EndTag,
    /// `</` not followed by a letter degraded to literal text.
    StrayEndTag,
    /// A `<!-- -->` comment was scanned.
    Comment,
    /// A comment ran to end-of-input without `-->`.
    CommentUnterminated,
    /// A `<!…>`/`<?…>` declaration was scanned.
    Doctype,
    /// A stray `<` degraded to literal text.
    StrayLt,
    /// A start tag entered raw-text mode (`<script>`, `<style>`, …).
    RawTextEnter,
    /// Raw-text mode ended at its matching close tag.
    RawTextClose,
    /// Raw-text mode ran to end-of-input unterminated.
    RawTextUnterminated,
    /// A tag ended with `/>`.
    SelfClosing,
    /// A tag ran to end-of-input before `>`.
    TagUnterminatedEof,
    /// A stray `/` inside a tag was skipped.
    StraySlash,
    /// An unexpected character inside a tag was skipped.
    TagJunkSkipped,
    /// A bare attribute (no `=`).
    AttrBare,
    /// A double-quoted attribute value.
    AttrDoubleQuoted,
    /// A single-quoted attribute value.
    AttrSingleQuoted,
    /// An unquoted attribute value.
    AttrUnquoted,
    /// A start-tag name, bucketed by hash (64 buckets).
    TagName(u8),
    /// An attribute name, bucketed by hash (32 buckets).
    AttrName(u8),
    /// Tree builder: a text node was appended.
    TreeText,
    /// Tree builder: a comment node was appended.
    TreeComment,
    /// Tree builder: a doctype token was dropped.
    TreeDoctypeDropped,
    /// Tree builder: an open element was implicitly closed.
    TreeImplicitClose,
    /// Tree builder: an end tag matched an open element.
    TreeEndMatched,
    /// Tree builder: a stray end tag was dropped.
    TreeStrayEndDropped,
    /// Tree builder: a void or self-closing element took no children.
    TreeVoid,
    /// Tree builder: a node was appended at the document root.
    TreeRootAppend,
    /// Tree builder: the open-element depth cap was hit.
    TreeDepthCapped,
    /// Tree builder: the node-arena cap was hit.
    TreeNodesCapped,
}

impl CoveragePoint {
    /// The stable numeric id of this point. Ids are dense and versioned
    /// with the enum: the plain variants occupy `0..32`, `TagName` buckets
    /// `32..96`, `AttrName` buckets `96..128`.
    pub fn id(self) -> u32 {
        use CoveragePoint::*;
        match self {
            Text => 0,
            StartTag => 1,
            EndTag => 2,
            StrayEndTag => 3,
            Comment => 4,
            CommentUnterminated => 5,
            Doctype => 6,
            StrayLt => 7,
            RawTextEnter => 8,
            RawTextClose => 9,
            RawTextUnterminated => 10,
            SelfClosing => 11,
            TagUnterminatedEof => 12,
            StraySlash => 13,
            TagJunkSkipped => 14,
            AttrBare => 15,
            AttrDoubleQuoted => 16,
            AttrSingleQuoted => 17,
            AttrUnquoted => 18,
            TreeText => 19,
            TreeComment => 20,
            TreeDoctypeDropped => 21,
            TreeImplicitClose => 22,
            TreeEndMatched => 23,
            TreeStrayEndDropped => 24,
            TreeVoid => 25,
            TreeRootAppend => 26,
            TreeDepthCapped => 27,
            TreeNodesCapped => 28,
            TagName(b) => 32 + u32::from(b % 64),
            AttrName(b) => 96 + u32::from(b % 32),
        }
    }

    /// The hash bucket for a tag name (for [`CoveragePoint::TagName`]).
    pub fn tag_bucket(name: &str) -> u8 {
        (fnv1a(name.as_bytes()) % 64) as u8
    }

    /// The hash bucket for an attribute name (for
    /// [`CoveragePoint::AttrName`]).
    pub fn attr_bucket(name: &str) -> u8 {
        (fnv1a(name.as_bytes()) % 32) as u8
    }
}

/// FNV-1a over bytes — the crate-local hash for coverage buckets and
/// content addressing. Dependency-free and stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small 32-bit integer mix (xorshift-multiply) for edge hashing.
#[inline]
fn mix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^ (x >> 16)
}

/// The hit map one instrumented parse fills in: AFL-style `prev → cur`
/// edge counters over [`CoveragePoint`] ids, reduced into [`MAP_SIZE`]
/// bins. Recording is a pure function of the point sequence, so the same
/// input always produces the same map (and the same
/// [`CoverageMap::bitmap_hash`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    bins: Vec<u32>,
    prev: u32,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap {
            bins: vec![0; MAP_SIZE],
            prev: 0,
        }
    }

    /// Record one coverage point, forming an edge with the previous one.
    #[inline]
    pub fn record(&mut self, point: CoveragePoint) {
        let id = point.id();
        let idx = (mix32(self.prev ^ id.wrapping_mul(0x9e37_79b9)) as usize) & (MAP_SIZE - 1);
        self.bins[idx] = self.bins[idx].saturating_add(1);
        // Shift the previous id (AFL's trick) so A→B and B→A hash apart.
        self.prev = id.wrapping_mul(2).wrapping_add(1);
    }

    /// Clear all bins and the edge state.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.prev = 0;
    }

    /// The raw hit counters.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Number of distinct edges (non-zero bins) hit.
    pub fn edge_count(&self) -> usize {
        self.bins.iter().filter(|&&b| b > 0).count()
    }

    /// The AFL-style bucket class of a hit count: 0, 1, 2, 3, 4–7, 8–15,
    /// 16–31, 32–127, 128+ map to classes 0–8. Count novelty is judged in
    /// classes, not raw counts, so loop-trip jitter does not read as new
    /// coverage.
    pub fn class_of(count: u32) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 3,
            4..=7 => 4,
            8..=15 => 5,
            16..=31 => 6,
            32..=127 => 7,
            _ => 8,
        }
    }

    /// The per-bin bucket classes (same length as [`CoverageMap::bins`]).
    pub fn classes(&self) -> Vec<u8> {
        self.bins.iter().map(|&b| Self::class_of(b)).collect()
    }

    /// A stable 64-bit hash of the bucketized hit bitmap — the coverage
    /// signature of one input. Pure function of the recorded point
    /// sequence.
    pub fn bitmap_hash(&self) -> u64 {
        fnv1a(&self.classes())
    }
}

/// Shared inner state of an enabled [`Coverage`] handle.
type Shared = Rc<RefCell<CoverageMap>>;

/// The coverage handle threaded through the tokenizer and tree builder.
///
/// [`Coverage::disabled`] is the default everywhere: it carries `None`
/// and recording is one branch. [`Coverage::enabled`] shares one
/// [`CoverageMap`] across clones, so the tokenizer and the tree builder
/// write into the same map during an instrumented parse.
#[derive(Debug, Clone, Default)]
pub struct Coverage(Option<Shared>);

impl Coverage {
    /// The no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Coverage {
        Coverage(None)
    }

    /// A recording handle over a fresh map.
    pub fn enabled() -> Coverage {
        Coverage(Some(Rc::new(RefCell::new(CoverageMap::new()))))
    }

    /// Whether this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record a point (no-op when disabled).
    #[inline]
    pub fn record(&self, point: CoveragePoint) {
        if let Some(map) = &self.0 {
            map.borrow_mut().record(point);
        }
    }

    /// A copy of the current map; `None` when disabled.
    pub fn snapshot(&self) -> Option<CoverageMap> {
        self.0.as_ref().map(|m| m.borrow().clone())
    }

    /// Clear the map (no-op when disabled).
    pub fn reset(&self) {
        if let Some(map) = &self.0 {
            map.borrow_mut().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let cov = Coverage::disabled();
        cov.record(CoveragePoint::Text);
        assert!(!cov.is_enabled());
        assert!(cov.snapshot().is_none());
    }

    #[test]
    fn enabled_handle_shares_one_map_across_clones() {
        let cov = Coverage::enabled();
        let clone = cov.clone();
        cov.record(CoveragePoint::StartTag);
        clone.record(CoveragePoint::EndTag);
        let map = cov.snapshot().expect("enabled");
        assert_eq!(map.bins().iter().map(|&b| u64::from(b)).sum::<u64>(), 2);
    }

    #[test]
    fn recording_is_deterministic() {
        let seq = [
            CoveragePoint::StartTag,
            CoveragePoint::TagName(3),
            CoveragePoint::Text,
            CoveragePoint::EndTag,
        ];
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        for p in seq {
            a.record(p);
            b.record(p);
        }
        assert_eq!(a.bitmap_hash(), b.bitmap_hash());
        assert_eq!(a.bins(), b.bins());
    }

    #[test]
    fn order_matters_for_edges() {
        let mut ab = CoverageMap::new();
        ab.record(CoveragePoint::StartTag);
        ab.record(CoveragePoint::EndTag);
        let mut ba = CoverageMap::new();
        ba.record(CoveragePoint::EndTag);
        ba.record(CoveragePoint::StartTag);
        assert_ne!(ab.bitmap_hash(), ba.bitmap_hash());
    }

    #[test]
    fn count_classes_bucketize() {
        assert_eq!(CoverageMap::class_of(0), 0);
        assert_eq!(CoverageMap::class_of(1), 1);
        assert_eq!(CoverageMap::class_of(5), 4);
        assert_eq!(CoverageMap::class_of(100), 7);
        assert_eq!(CoverageMap::class_of(10_000), 8);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = CoverageMap::new();
        m.record(CoveragePoint::Text);
        assert_eq!(m.edge_count(), 1);
        m.reset();
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m, CoverageMap::new());
    }

    #[test]
    fn point_ids_are_unique() {
        let mut ids: Vec<u32> = (0..64)
            .map(|b| CoveragePoint::TagName(b).id())
            .chain((0..32).map(|b| CoveragePoint::AttrName(b).id()))
            .chain(
                [
                    CoveragePoint::Text,
                    CoveragePoint::StartTag,
                    CoveragePoint::EndTag,
                    CoveragePoint::StrayEndTag,
                    CoveragePoint::Comment,
                    CoveragePoint::CommentUnterminated,
                    CoveragePoint::Doctype,
                    CoveragePoint::StrayLt,
                    CoveragePoint::RawTextEnter,
                    CoveragePoint::RawTextClose,
                    CoveragePoint::RawTextUnterminated,
                    CoveragePoint::SelfClosing,
                    CoveragePoint::TagUnterminatedEof,
                    CoveragePoint::StraySlash,
                    CoveragePoint::TagJunkSkipped,
                    CoveragePoint::AttrBare,
                    CoveragePoint::AttrDoubleQuoted,
                    CoveragePoint::AttrSingleQuoted,
                    CoveragePoint::AttrUnquoted,
                    CoveragePoint::TreeText,
                    CoveragePoint::TreeComment,
                    CoveragePoint::TreeDoctypeDropped,
                    CoveragePoint::TreeImplicitClose,
                    CoveragePoint::TreeEndMatched,
                    CoveragePoint::TreeStrayEndDropped,
                    CoveragePoint::TreeVoid,
                    CoveragePoint::TreeRootAppend,
                    CoveragePoint::TreeDepthCapped,
                    CoveragePoint::TreeNodesCapped,
                ]
                .iter()
                .map(|p| p.id()),
            )
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "coverage point ids must not collide");
    }
}
