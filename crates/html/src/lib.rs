//! # cafc-html
//!
//! A small, dependency-free HTML processing library built for the CAFC
//! (Context-Aware Form Clustering) system. It provides exactly what the
//! form-page model of Barbosa, Freire & Silva (ICDE 2007) needs from HTML:
//!
//! * a forgiving [`tokenizer`] that turns real-world HTML into a token
//!   stream (start/end tags, attributes, text, comments, doctypes), with
//!   entity decoding and raw-text handling for `<script>`/`<style>`;
//! * a [`dom`] tree builder that recovers from unbalanced markup the way
//!   browsers roughly do (void elements, implicit closes, stray end tags);
//! * a [`form`] extractor that pulls `<form>` elements with their fields,
//!   option values and submission metadata — the *FC* feature space;
//! * a located-text [`extract`] walker that emits every text run together
//!   with *where* it occurred (title, body, inside a form, inside an
//!   `<option>`, anchor text) — the raw material for the location-aware
//!   TF-IDF weights of the *PC* and *FC* feature spaces.
//!
//! The parser is intentionally not a full HTML5 implementation: it is a
//! robust approximation tuned for text and form extraction, which is all the
//! clustering pipeline observes. It never panics on malformed input.
//!
//! ## Quick example
//!
//! ```
//! let html = r#"<html><head><title>Find a Job</title></head>
//! <body><h1>Search Jobs</h1>
//! <form action="/search" method="get">
//!   Keywords: <input type="text" name="kw">
//!   <select name="state"><option>Utah</option><option>Ohio</option></select>
//!   <input type="submit" value="Go">
//! </form></body></html>"#;
//!
//! let doc = cafc_html::parse(html);
//! assert_eq!(doc.title().as_deref(), Some("Find a Job"));
//! let forms = cafc_html::extract_forms(&doc);
//! assert_eq!(forms.len(), 1);
//! assert_eq!(forms[0].visible_field_count(), 2); // text + select (submit excluded)
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod dom;
pub mod entities;
pub mod extract;
pub mod form;
pub mod labels;
pub mod sanitize;
pub mod stream;
pub mod tokenizer;

pub use coverage::{Coverage, CoverageMap, CoveragePoint};
pub use dom::{Document, Node, NodeId, ParseStats};
pub use extract::{located_text, LocatedText, TextLocation};
pub use form::{extract_forms, Form, FormField, FormFieldKind, FormMethod};
pub use labels::{extract_labeled_fields, LabelSource, LabeledField};
pub use sanitize::strip_control_chars;
pub use stream::StreamingParser;
pub use tokenizer::{Attribute, Token, Tokenizer};

/// Parse an HTML document into a DOM tree.
///
/// This is the main entry point of the crate. Parsing is infallible: any
/// byte sequence produces *some* tree (malformed constructs degrade into
/// text or are skipped), mirroring the paper's requirement that form pages
/// "designed primarily for human consumption" are processed fully
/// automatically.
pub fn parse(html: &str) -> Document {
    dom::Document::parse(html)
}

/// Parse an HTML document delivered in chunks.
///
/// A thin wrapper over [`StreamingParser`]: each chunk is pushed as it
/// arrives and only the unconsumed tail (partial tags, entities, raw-text
/// runs) is buffered between pushes — the input is never reassembled. The
/// contract pinned by the `cafc-fuzz` chunked≡whole oracle since PR 6
/// still holds, now over the real incremental implementation:
/// `parse_chunked(chunks) == parse(chunks.concat())` for every split of
/// every input.
pub fn parse_chunked<S: AsRef<str>>(chunks: &[S]) -> Document {
    let mut parser = StreamingParser::new();
    for chunk in chunks {
        parser.push_chunk(chunk.as_ref());
    }
    parser.finish()
}

/// The syntactic atoms of this parser's grammar, for fuzzing dictionaries.
///
/// Extracted from the state machine itself: markup delimiters the
/// tokenizer dispatches on, the raw-text and void element names, the
/// implicit-close tag pairs, and entity forms (every named entity plus the
/// numeric prefixes). Sorted and deduplicated, so the output is stable as
/// long as the grammar is — a property the fuzz engine's dictionary tests
/// pin.
pub fn syntax_dictionary() -> Vec<String> {
    let mut atoms: Vec<String> = Vec::new();
    // Markup delimiters and quoting forms the tokenizer branches on.
    for s in [
        "<",
        ">",
        "</",
        "/>",
        "<!--",
        "-->",
        "<!",
        "<?",
        "<!DOCTYPE html>",
        "=",
        "=\"",
        "='",
        "\"",
        "'",
        "/",
        " ",
    ] {
        atoms.push(s.to_owned());
    }
    // Element vocabulary: raw-text, void, and implicit-close names.
    for name in tokenizer::RAW_TEXT_ELEMENTS {
        atoms.push(format!("<{name}>"));
        atoms.push(format!("</{name}>"));
    }
    for name in dom::VOID_ELEMENTS {
        atoms.push(format!("<{name}>"));
    }
    for (incoming, closes) in dom::IMPLICIT_CLOSE {
        atoms.push(format!("<{incoming}>"));
        atoms.push(format!("<{closes}>"));
    }
    // Entity forms: numeric prefixes and every named entity.
    for s in ["&", "&#", "&#x", "&#65;", "&#x41;", "&#0;", "&#x110000;"] {
        atoms.push(s.to_owned());
    }
    for (name, _) in entities::NAMED {
        atoms.push(format!("&{name};"));
        // Missing-semicolon form: passes through undecoded, a distinct path.
        atoms.push(format!("&{name}"));
    }
    atoms.sort();
    atoms.dedup();
    atoms
}

#[cfg(test)]
mod tests {
    #[test]
    fn end_to_end_smoke() {
        let doc = super::parse("<p>hello <b>world</b></p>");
        let text: Vec<_> = super::located_text(&doc);
        let joined: String = text
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(joined.contains("hello"));
        assert!(joined.contains("world"));
    }
}
