//! The cluster index: labels, summaries, and keyword search.

use cafc::{FormPageCorpus, Partition};
use cafc_text::Analyzer;
use cafc_vsm::SparseVector;
use cafc_webgraph::{PageId, WebGraph};

/// One database (form page) inside the index.
#[derive(Debug, Clone)]
pub struct ClusterEntry {
    /// Item index into the corpus.
    pub item: usize,
    /// The page URL.
    pub url: String,
    /// The page title, if it had one.
    pub title: String,
    /// Number of fillable form attributes.
    pub attributes: usize,
}

/// A summarized cluster.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Cluster index within the partition.
    pub cluster: usize,
    /// Auto-generated label from the strongest centroid terms.
    pub label: String,
    /// The top discriminating terms with their centroid weights.
    pub top_terms: Vec<(String, f64)>,
    /// Member databases, in partition order.
    pub entries: Vec<ClusterEntry>,
}

/// A search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Cluster index.
    pub cluster: usize,
    /// For page-level search: the item index; `None` for cluster hits.
    pub item: Option<usize>,
    /// Cosine score against the query vector.
    pub score: f64,
}

/// A searchable, labelled view over a clustering.
#[derive(Debug)]
pub struct ClusterIndex<'a> {
    corpus: &'a FormPageCorpus,
    /// Page-content centroid per cluster (possibly empty for empty clusters).
    centroids: Vec<SparseVector>,
    summaries: Vec<ClusterSummary>,
    analyzer: Analyzer,
}

impl<'a> ClusterIndex<'a> {
    /// Build an index from a clustering over `corpus`, with page metadata
    /// resolved from `graph`/`targets` (aligned with corpus items).
    ///
    /// # Panics
    /// Panics if `targets.len()` differs from the corpus length.
    pub fn from_graph(
        corpus: &'a FormPageCorpus,
        partition: &Partition,
        graph: &WebGraph,
        targets: &[PageId],
        label_terms: usize,
    ) -> Self {
        assert_eq!(
            targets.len(),
            corpus.len(),
            "targets must align with corpus items"
        );
        let metadata: Vec<(String, String, usize)> = targets
            .iter()
            .map(|&p| {
                let url = graph.url(p).to_string();
                match graph.html(p) {
                    Some(html) => {
                        let doc = cafc_html::parse(html);
                        let title = doc.title().unwrap_or_else(|| "(untitled)".to_owned());
                        let arity = cafc_html::extract_forms(&doc)
                            .first()
                            .map_or(0, cafc_html::Form::visible_field_count);
                        (url, title, arity)
                    }
                    None => (url, "(no content)".to_owned(), 0),
                }
            })
            .collect();
        Self::from_metadata(corpus, partition, &metadata, label_terms)
    }

    /// Build from explicit `(url, title, attributes)` metadata per item.
    pub fn from_metadata(
        corpus: &'a FormPageCorpus,
        partition: &Partition,
        metadata: &[(String, String, usize)],
        label_terms: usize,
    ) -> Self {
        assert_eq!(
            metadata.len(),
            corpus.len(),
            "metadata must align with corpus items"
        );
        let mut centroids = Vec::new();
        let mut summaries = Vec::new();
        for (ci, members) in partition.clusters().iter().enumerate() {
            let centroid = SparseVector::centroid(members.iter().map(|&m| &corpus.pc[m]));
            let top: Vec<(String, f64)> = centroid
                .top_terms(label_terms.max(1))
                .into_iter()
                .map(|(t, w)| (corpus.dict.term(t).to_owned(), w))
                .collect();
            let label = top
                .iter()
                .take(3)
                .map(|(t, _)| capitalize(t))
                .collect::<Vec<_>>()
                .join(" / ");
            let entries = members
                .iter()
                .map(|&m| {
                    let (url, title, attributes) = metadata[m].clone();
                    ClusterEntry {
                        item: m,
                        url,
                        title,
                        attributes,
                    }
                })
                .collect();
            summaries.push(ClusterSummary {
                cluster: ci,
                label: if label.is_empty() {
                    format!("Cluster {ci}")
                } else {
                    label
                },
                top_terms: top,
                entries,
            });
            centroids.push(centroid);
        }
        ClusterIndex {
            corpus,
            centroids,
            summaries,
            analyzer: Analyzer::default(),
        }
    }

    /// The cluster summaries, in partition order.
    pub fn summaries(&self) -> &[ClusterSummary] {
        &self.summaries
    }

    /// Number of clusters (including empty ones).
    pub fn num_clusters(&self) -> usize {
        self.summaries.len()
    }

    /// Build the query vector: analyzed terms known to the corpus
    /// dictionary, unit weight per distinct term.
    fn query_vector(&self, query: &str) -> SparseVector {
        let mut dict_probe = cafc_text::TermDict::new();
        let terms = self.analyzer.analyze(query, &mut dict_probe);
        let entries: Vec<(cafc_text::TermId, f64)> = terms
            .iter()
            .filter_map(|&t| self.corpus.dict.get(dict_probe.term(t)))
            .map(|id| (id, 1.0))
            .collect();
        SparseVector::from_entries(entries)
    }

    /// Rank clusters against a free-text query. Empty and zero-score
    /// clusters are omitted; results are sorted by descending score.
    pub fn search(&self, query: &str) -> Vec<SearchHit> {
        let q = self.query_vector(query);
        let mut hits: Vec<SearchHit> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(ci, c)| SearchHit {
                cluster: ci,
                item: None,
                score: q.cosine(c),
            })
            .filter(|h| h.score > 0.0)
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits
    }

    /// Rank individual databases against a free-text query.
    pub fn search_pages(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let q = self.query_vector(query);
        let mut hits = Vec::new();
        for summary in &self.summaries {
            for entry in &summary.entries {
                let score = q.cosine(&self.corpus.pc[entry.item]);
                if score > 0.0 {
                    hits.push(SearchHit {
                        cluster: summary.cluster,
                        item: Some(entry.item),
                        score,
                    });
                }
            }
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits.truncate(limit);
        hits
    }

    /// Entry metadata for an item (for rendering search results).
    pub fn entry(&self, item: usize) -> Option<&ClusterEntry> {
        self.summaries
            .iter()
            .flat_map(|s| &s.entries)
            .find(|e| e.item == item)
    }
}

fn capitalize(word: &str) -> String {
    let mut cs = word.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc::{FeatureConfig, FormPageSpace, ModelOptions};
    use cafc_cluster::ClusterSpace;

    fn fixture() -> (FormPageCorpus, Partition, Vec<(String, String, usize)>) {
        let pages = [
            "<title>Cheap Flights</title><p>airfare travel flights deals airline</p>\
             <form>departure <input name=a></form>",
            "<p>flights airfare vacation airline travel</p><form>arrival <input name=b></form>",
            "<title>Job Board</title><p>careers employment salary resume hiring</p>\
             <form>keywords <input name=c></form>",
            "<p>employment careers openings resume salary</p><form>category <input name=d></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 4);
        let metadata = (0..4)
            .map(|i| (format!("http://s{i}.com/f"), format!("Site {i}"), 1usize))
            .collect();
        (corpus, partition, metadata)
    }

    #[test]
    fn labels_from_centroid_terms() {
        let (corpus, partition, metadata) = fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 5);
        assert_eq!(index.num_clusters(), 2);
        let labels: Vec<&str> = index.summaries().iter().map(|s| s.label.as_str()).collect();
        // The airfare cluster's label mentions flight/airfare vocabulary.
        assert!(
            labels[0].to_lowercase().contains("flight")
                || labels[0].to_lowercase().contains("airfar"),
            "label: {}",
            labels[0]
        );
        assert!(
            labels[1].to_lowercase().contains("career")
                || labels[1].to_lowercase().contains("employ")
                || labels[1].to_lowercase().contains("salari"),
            "label: {}",
            labels[1]
        );
    }

    #[test]
    fn search_ranks_matching_cluster_first() {
        let (corpus, partition, metadata) = fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 5);
        let hits = index.search("cheap international flights");
        assert!(!hits.is_empty());
        assert_eq!(hits[0].cluster, 0);
        let hits = index.search("engineering careers and salary");
        assert_eq!(hits[0].cluster, 1);
    }

    #[test]
    fn search_unknown_terms_yields_nothing() {
        let (corpus, partition, metadata) = fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 5);
        assert!(index.search("zzzqqq xyzzy").is_empty());
    }

    #[test]
    fn page_search_returns_items() {
        let (corpus, partition, metadata) = fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 5);
        let hits = index.search_pages("airfare deals", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].cluster, 0);
        let item = hits[0].item.expect("page hit has item");
        assert!(item < 2, "top hit should be an airfare page, got {item}");
        assert!(index.entry(item).is_some());
    }

    #[test]
    fn page_search_respects_limit() {
        let (corpus, partition, metadata) = fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 5);
        assert!(index.search_pages("travel careers", 1).len() <= 1);
    }

    #[test]
    fn from_graph_collects_metadata() {
        use cafc_corpus::{generate, CorpusConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let web = generate(&CorpusConfig::small(55));
        let targets = web.form_page_ids();
        let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let mut rng = StdRng::seed_from_u64(1);
        let out = cafc::cafc_c(&space, 8, &cafc::KMeansOptions::default(), &mut rng);
        let index = ClusterIndex::from_graph(&corpus, &out.partition, &web.graph, &targets, 5);
        assert_eq!(index.num_clusters(), 8);
        let total: usize = index.summaries().iter().map(|s| s.entries.len()).sum();
        assert_eq!(total, targets.len());
        // Every entry resolves a URL and a title.
        for s in index.summaries() {
            for e in &s.entries {
                assert!(e.url.starts_with("http://"));
                assert!(!e.title.is_empty());
            }
        }
        let _ = space.len(); // space kept alive for clarity
    }
}
