//! # cafc-explore
//!
//! Exploration of CAFC clusterings — the paper's §6 direction: "it is
//! important to provide means for applications and users to explore the
//! resulting clusters. We are currently investigating visual and
//! query-based interfaces for this purpose."
//!
//! A [`ClusterIndex`] wraps a clustering with:
//!
//! * automatic cluster **labels** from the strongest centroid terms;
//! * **keyword search** over clusters and over individual databases,
//!   ranked by cosine similarity in the page-content space;
//! * rendered **reports**: a plain-text directory and a self-contained
//!   HTML page (the "hidden-web directory" application of §5).

#![warn(missing_docs)]

pub mod index;
pub mod report;

pub use index::{ClusterEntry, ClusterIndex, ClusterSummary, SearchHit};
pub use report::{html_report, text_report};
