//! Rendered directory reports: plain text and self-contained HTML.

use crate::index::ClusterIndex;

/// Render the index as an aligned plain-text directory.
pub fn text_report(index: &ClusterIndex<'_>) -> String {
    let mut out = String::new();
    out.push_str("HIDDEN-WEB DATABASE DIRECTORY\n");
    out.push_str("=============================\n\n");
    for summary in index.summaries() {
        if summary.entries.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "{} ({} databases)\n",
            summary.label,
            summary.entries.len()
        ));
        let terms: Vec<&str> = summary
            .top_terms
            .iter()
            .take(6)
            .map(|(t, _)| t.as_str())
            .collect();
        out.push_str(&format!("  terms: {}\n", terms.join(", ")));
        for entry in &summary.entries {
            out.push_str(&format!(
                "  - {} [{} attrs] {}\n",
                entry.title, entry.attributes, entry.url
            ));
        }
        out.push('\n');
    }
    out
}

/// Minimal HTML escaping for text nodes and attribute values.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the index as a self-contained HTML directory page.
pub fn html_report(index: &ClusterIndex<'_>) -> String {
    let mut body = String::new();
    for summary in index.summaries() {
        if summary.entries.is_empty() {
            continue;
        }
        body.push_str(&format!(
            "<section><h2>{} <small>({} databases)</small></h2>\n",
            escape(&summary.label),
            summary.entries.len()
        ));
        let terms: Vec<String> = summary
            .top_terms
            .iter()
            .take(6)
            .map(|(t, _)| escape(t))
            .collect();
        body.push_str(&format!(
            "<p class=\"terms\">{}</p>\n<ul>\n",
            terms.join(", ")
        ));
        for entry in &summary.entries {
            body.push_str(&format!(
                "<li><a href=\"{}\">{}</a> <span class=\"arity\">{} attributes</span></li>\n",
                escape(&entry.url),
                escape(&entry.title),
                entry.attributes
            ));
        }
        body.push_str("</ul></section>\n");
    }
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>Hidden-Web Database Directory</title>\
         <style>body{{font-family:sans-serif;max-width:52rem;margin:2rem auto}}\
         .terms{{color:#666;font-size:.9rem}}.arity{{color:#999;font-size:.8rem}}</style>\
         </head><body>\n<h1>Hidden-Web Database Directory</h1>\n{body}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ClusterIndex;
    use cafc::{FormPageCorpus, ModelOptions, Partition};

    fn index_fixture() -> (FormPageCorpus, Partition, Vec<(String, String, usize)>) {
        let pages = [
            "<p>airfare flights travel airline</p><form>departure <input name=a></form>",
            "<p>careers employment salary</p><form>keywords <input name=b></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let partition = Partition::new(vec![vec![0], vec![1]], 2);
        let metadata = vec![
            (
                "http://fly.com/f".to_owned(),
                "Fly & Save <cheap>".to_owned(),
                2,
            ),
            ("http://work.com/f".to_owned(), "Work Now".to_owned(), 1),
        ];
        (corpus, partition, metadata)
    }

    #[test]
    fn text_report_lists_everything() {
        let (corpus, partition, metadata) = index_fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 4);
        let report = text_report(&index);
        assert!(report.contains("http://fly.com/f"));
        assert!(report.contains("Work Now"));
        assert!(report.contains("databases"));
    }

    #[test]
    fn html_report_is_escaped_and_complete() {
        let (corpus, partition, metadata) = index_fixture();
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 4);
        let html = html_report(&index);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(
            html.contains("Fly &amp; Save &lt;cheap&gt;"),
            "title must be escaped"
        );
        assert!(html.contains("href=\"http://work.com/f\""));
        // The report itself parses with our own HTML parser.
        let doc = cafc_html::parse(&html);
        assert_eq!(
            doc.title().as_deref(),
            Some("Hidden-Web Database Directory")
        );
        assert_eq!(doc.elements_named("section").count(), 2);
    }

    #[test]
    fn empty_clusters_omitted() {
        let (corpus, _, metadata) = index_fixture();
        let partition = Partition::new(vec![vec![0, 1], vec![]], 2);
        let index = ClusterIndex::from_metadata(&corpus, &partition, &metadata, 4);
        let html = html_report(&index);
        assert_eq!(cafc_html::parse(&html).elements_named("section").count(), 1);
    }
}
