//! cafc-check properties for the retrieval stack.
//!
//! The load-bearing claims, pinned over generated corpora:
//!
//! * the term-at-a-time postings scan is bit-identical to the
//!   doc-at-a-time brute-force reference (differential oracle);
//! * routed, budgeted retrieval never invents or rescores a document —
//!   every hit it returns appears in the exhaustive ranking with the
//!   exact same float;
//! * BM25 scores are finite, positive and bounded by the idf mass of the
//!   query, and the idf itself is positive and strictly decreasing in
//!   document frequency;
//! * index construction and routing are deterministic across
//!   [`ExecPolicy`] — serial and parallel builds answer queries
//!   byte-identically.

use cafc_check::corpus::{clustering, sparse_entries};
use cafc_check::gen::{pairs, usizes, vecs, Gen};
use cafc_check::{check, require, require_eq, CheckConfig};
use cafc_exec::ExecPolicy;
use cafc_index::{bm25_idf, Bm25Params, ClusterRouter, InvertedIndex};
use cafc_obs::Obs;
use cafc_text::TermId;
use cafc_vsm::SparseVector;

/// Term-id universe for generated corpora — small enough that documents
/// collide on terms (otherwise every query matches at most one document
/// and the properties are vacuous).
const MAX_TERM: usize = 24;

/// A generated retrieval scenario: raw TF vectors, a clustering of them,
/// and a query.
#[derive(Debug, Clone)]
struct Scenario {
    docs: Vec<SparseVector>,
    clusters: Vec<Vec<usize>>,
    query: Vec<TermId>,
}

/// Entries from [`sparse_entries`] carry signed weights; an index stores
/// only positive TF mass, so fold each weight through `abs`. Zero weights
/// are dropped by `SparseVector::from_entries`.
fn to_tf(entries: &[(usize, f64)]) -> SparseVector {
    SparseVector::from_entries(
        entries
            .iter()
            .map(|&(t, w)| (TermId(t as u32), w.abs()))
            .collect(),
    )
}

fn scenarios() -> Gen<Scenario> {
    vecs(&sparse_entries(MAX_TERM, 6), 1, 12).flat_map(|entries| {
        let docs: Vec<SparseVector> = entries.iter().map(|e| to_tf(e)).collect();
        let n = docs.len();
        pairs(&clustering(n, 4), &vecs(&usizes(0, MAX_TERM - 1), 1, 4)).map(move |(cl, terms)| {
            Scenario {
                docs: docs.clone(),
                clusters: cl.clone(),
                query: terms.iter().map(|&t| TermId(t as u32)).collect(),
            }
        })
    })
}

fn build(s: &Scenario, policy: ExecPolicy) -> InvertedIndex {
    InvertedIndex::build(&s.docs, &s.clusters, policy, &Obs::default())
}

/// The postings scan and the brute-force document scan are the same
/// function: identical hits, bit-identical scores, identical matched-doc
/// counts.
#[test]
fn postings_scan_matches_brute_force_reference() {
    check!(CheckConfig::new(), scenarios(), |s| {
        let index = build(s, ExecPolicy::Serial);
        let params = Bm25Params::new();
        let k = s.docs.len();
        let (fast, fast_stats) = index.search_bm25(&s.query, k, &index.full_order(), None, &params);
        let (slow, slow_stats) = index.scan_bm25(&s.docs, &s.query, k, &params);
        require_eq!(fast, slow);
        require_eq!(fast_stats.docs_scored, slow_stats.docs_scored);
        // Both sides walk every matching posting exactly once.
        require_eq!(fast_stats.postings_scanned, slow_stats.postings_scanned);
        Ok(())
    });
}

/// Routed, budgeted retrieval returns a subset of the exhaustive ranking:
/// every hit reappears in the full scan with the exact same score, the
/// hit list is sorted (score descending, doc ascending), and it never
/// scans more postings than the full scan.
#[test]
fn routed_retrieval_is_a_scored_subset_of_the_full_scan() {
    check!(CheckConfig::new(), scenarios(), |s| {
        let index = build(s, ExecPolicy::Serial);
        let params = Bm25Params::new();
        let router = ClusterRouter::new(&s.docs, &s.clusters);
        let mut order = router.route(&SparseVector::from_entries(
            s.query.iter().map(|&t| (t, 1.0)).collect(),
        ));
        order.extend(router.num_clusters()..index.num_shards());
        let k = s.docs.len();
        let (full, full_stats) = index.search_bm25(&s.query, k, &index.full_order(), None, &params);
        for budget in [1, 4, usize::MAX] {
            let (routed, stats) = index.search_bm25(&s.query, k, &order, Some(budget), &params);
            require!(stats.postings_scanned <= full_stats.postings_scanned);
            for (i, hit) in routed.iter().enumerate() {
                if i > 0 {
                    let prev = routed[i - 1];
                    require!(
                        prev.score > hit.score || (prev.score == hit.score && prev.doc < hit.doc),
                        "routed hits out of order at {i}: {prev:?} then {hit:?}"
                    );
                }
                require!(
                    full.iter()
                        .any(|f| f.doc == hit.doc && f.score.to_bits() == hit.score.to_bits()),
                    "routed hit {hit:?} missing from the full ranking {full:?}"
                );
            }
        }
        // Without a budget the shard order is irrelevant: same hits.
        let (unbudgeted, _) = index.search_bm25(&s.query, k, &order, None, &params);
        require_eq!(unbudgeted, full);
        Ok(())
    });
}

/// Every BM25 hit score is finite, strictly positive and bounded above by
/// `Σ idf(t) · (k1 + 1)` over the query terms (each term's contribution
/// saturates below `idf · (k1 + 1)`).
#[test]
fn bm25_scores_are_finite_positive_and_bounded() {
    check!(CheckConfig::new(), scenarios(), |s| {
        let index = build(s, ExecPolicy::Serial);
        let params = Bm25Params::new();
        let mut q = s.query.clone();
        q.sort_unstable();
        q.dedup();
        let bound: f64 = q
            .iter()
            .map(|&t| bm25_idf(index.num_docs(), index.df(t)) * (params.k1 + 1.0))
            .sum();
        let (hits, _) =
            index.search_bm25(&s.query, s.docs.len(), &index.full_order(), None, &params);
        for hit in &hits {
            require!(hit.score.is_finite(), "non-finite score {hit:?}");
            require!(hit.score > 0.0, "non-positive score {hit:?}");
            require!(
                hit.score <= bound,
                "score {} above the idf bound {bound}",
                hit.score
            );
        }
        Ok(())
    });
}

/// The Lucene idf is strictly positive for every `df ≤ N` and strictly
/// decreasing in `df`: rarer terms always weigh more.
#[test]
fn idf_is_positive_and_strictly_decreasing_in_df() {
    let gen = pairs(&usizes(1, 300), &pairs(&usizes(0, 300), &usizes(0, 300)));
    check!(CheckConfig::new(), gen, |&(n, (a, b))| {
        let (a, b) = (a.min(n) as u32, b.min(n) as u32);
        let (lo, hi) = (a.min(b), a.max(b));
        require!(bm25_idf(n, lo) > 0.0);
        require!(bm25_idf(n, hi) > 0.0);
        if lo < hi {
            require!(
                bm25_idf(n, lo) > bm25_idf(n, hi),
                "idf not decreasing: idf({n}, {lo}) <= idf({n}, {hi})"
            );
        }
        Ok(())
    });
}

/// Index construction and routed retrieval are pure functions of the
/// corpus: serial and parallel builds agree on every statistic, on the
/// route order, and on the byte-exact result of a budgeted routed scan.
#[test]
fn build_and_routing_are_deterministic_across_exec_policies() {
    check!(CheckConfig::new(), scenarios(), |s| {
        let serial = build(s, ExecPolicy::Serial);
        for threads in [2, 5] {
            let parallel = build(s, ExecPolicy::Parallel { threads });
            require_eq!(serial.num_docs(), parallel.num_docs());
            require_eq!(serial.num_shards(), parallel.num_shards());
            require_eq!(serial.num_postings(), parallel.num_postings());
            require_eq!(serial.avgdl().to_bits(), parallel.avgdl().to_bits());
            for t in 0..MAX_TERM {
                require_eq!(serial.df(TermId(t as u32)), parallel.df(TermId(t as u32)));
            }
            for d in 0..s.docs.len() {
                require_eq!(serial.doc_len(d).to_bits(), parallel.doc_len(d).to_bits());
            }
            let qvec = SparseVector::from_entries(s.query.iter().map(|&t| (t, 1.0)).collect());
            let router = ClusterRouter::new(&s.docs, &s.clusters);
            let mut order = router.route(&qvec);
            order.extend(router.num_clusters()..serial.num_shards());
            require_eq!(order, {
                let r = ClusterRouter::new(&s.docs, &s.clusters);
                let mut o = r.route(&qvec);
                o.extend(r.num_clusters()..parallel.num_shards());
                o
            });
            let params = Bm25Params::new();
            let a = serial.search_bm25(&s.query, 10, &order, Some(8), &params);
            let b = parallel.search_bm25(&s.query, 10, &order, Some(8), &params);
            require_eq!(a, b);
        }
        Ok(())
    });
}
