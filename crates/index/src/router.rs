//! Query-to-cluster routing: rank clusters by centroid similarity.
//!
//! The cluster-then-search contract: the clustering already grouped
//! databases by domain, so a query about airfare only needs the airfare
//! cluster's postings. The router orders clusters by query-to-centroid
//! cosine (descending, ties by cluster id ascending) and the searcher
//! walks that order under a postings budget. Ordering is a pure function
//! of the centroids and the query — no randomness, no thread-count
//! dependence — so routing is deterministic across
//! [`ExecPolicy`](cafc_exec::ExecPolicy) and across runs.

use cafc_vsm::SparseVector;

/// Ranks clusters against a query vector. Build with
/// [`ClusterRouter::new`] from the same document vectors and cluster
/// member lists the index was sharded by.
#[derive(Debug, Clone)]
pub struct ClusterRouter {
    centroids: Vec<SparseVector>,
}

impl ClusterRouter {
    /// Compute one centroid per cluster from the member documents'
    /// vectors (normally the TF-IDF page-content space, matching the
    /// clustering geometry). Empty clusters get empty centroids and sort
    /// last among zero-similarity clusters by id.
    pub fn new(docs: &[SparseVector], clusters: &[Vec<usize>]) -> ClusterRouter {
        let centroids = clusters
            .iter()
            .map(|members| {
                SparseVector::centroid(
                    members
                        .iter()
                        .filter(|&&m| m < docs.len())
                        .map(|&m| &docs[m]),
                )
            })
            .collect();
        ClusterRouter { centroids }
    }

    /// Number of routable clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// A cluster's centroid.
    pub fn centroid(&self, cluster: usize) -> Option<&SparseVector> {
        self.centroids.get(cluster)
    }

    /// Every cluster id ordered by query-to-centroid cosine, descending;
    /// ties (including all zero-similarity clusters) break by cluster id
    /// ascending. The full order is returned — the budget, not the
    /// router, decides how far a scan walks.
    pub fn route(&self, query: &SparseVector) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(ci, c)| (ci, query.cosine(c)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.into_iter().map(|(ci, _)| ci).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_text::TermId;

    fn vector(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn routes_matching_cluster_first() {
        let docs = vec![
            vector(&[(0, 2.0), (1, 1.0)]),
            vector(&[(0, 1.0), (1, 2.0)]),
            vector(&[(5, 2.0), (6, 1.0)]),
            vector(&[(5, 1.0), (6, 2.0)]),
        ];
        let router = ClusterRouter::new(&docs, &[vec![0, 1], vec![2, 3]]);
        assert_eq!(router.num_clusters(), 2);
        assert_eq!(router.route(&vector(&[(0, 1.0)])), vec![0, 1]);
        assert_eq!(router.route(&vector(&[(6, 1.0)])), vec![1, 0]);
    }

    #[test]
    fn unknown_query_orders_by_id() {
        let docs = vec![vector(&[(0, 1.0)]), vector(&[(1, 1.0)])];
        let router = ClusterRouter::new(&docs, &[vec![1], vec![0]]);
        assert_eq!(router.route(&vector(&[(9, 1.0)])), vec![0, 1]);
    }

    #[test]
    fn empty_clusters_sort_last() {
        let docs = vec![vector(&[(0, 1.0)])];
        let router = ClusterRouter::new(&docs, &[vec![], vec![0]]);
        assert_eq!(router.route(&vector(&[(0, 1.0)])), vec![1, 0]);
        assert!(router.centroid(0).is_some_and(SparseVector::is_empty));
    }
}
