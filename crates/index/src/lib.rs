//! # cafc-index — inverted index, BM25 and cluster-routed retrieval
//!
//! The query side of the cluster-then-search architecture: the paper
//! clusters hidden-web sources so users can *find* the right databases;
//! this crate turns a clustered corpus into something a query can be
//! answered against.
//!
//! ## The pieces
//!
//! * [`InvertedIndex`] — term → postings (document id, raw term
//!   frequency), sharded by cluster so a router can skip whole clusters,
//!   with *global* document-frequency and document-length statistics so a
//!   routed scan produces bit-identical scores to a full scan. Built
//!   through the exec layer: chunked accumulation merged in chunk order,
//!   so the index is bit-identical under every
//!   [`ExecPolicy`](cafc_exec::ExecPolicy).
//! * [`Bm25Params`] — Okapi BM25 with the Lucene non-negative idf,
//!   `ln(1 + (N − df + ½)/(df + ½))`, over the corpus' location-weighted
//!   term frequencies.
//! * [`ClusterRouter`] — ranks clusters by query-to-centroid cosine; the
//!   searcher scans the best clusters' postings first and stops when a
//!   postings budget is exhausted.
//! * [`rrf_fuse`] — reciprocal-rank fusion of the BM25 and TF-IDF
//!   rankings: `score(d) = Σ 1/(60 + rank(d))`.
//!
//! ## Determinism contract
//!
//! Every score is accumulated per document in ascending query-term order,
//! in both the term-at-a-time postings path ([`InvertedIndex::search_bm25`])
//! and the doc-at-a-time reference scan ([`InvertedIndex::scan_bm25`]), so
//! the two produce bit-identical floats. Ties are broken (score
//! descending, document id ascending) with a total order, so result lists
//! are byte-stable across runs, thread counts and scan strategies.

#![warn(missing_docs)]

pub mod bm25;
pub mod fuse;
pub mod postings;
pub mod router;

pub use bm25::{bm25_idf, Bm25Params};
pub use fuse::{rrf_fuse, RRF_C};
pub use postings::{Hit, InvertedIndex, Posting, ScanStats};
pub use router::ClusterRouter;
