//! Okapi BM25 scoring over location-weighted term frequencies.
//!
//! The corpus' "term frequency" is Equation 1's `Σ LOC_i` mass — a page
//! with *flights* twice in the title counts 4.0, not 2 — which BM25's
//! saturation handles exactly like an integer count. The idf is the
//! Lucene/ATIRE non-negative variant, so a term appearing in every
//! document contributes a small positive weight instead of a negative one
//! (the classic Robertson idf goes negative for `df > N/2`, which breaks
//! the score-monotonicity properties the check suite pins down).

/// The non-negative BM25 idf: `ln(1 + (N − df + ½)/(df + ½))`.
///
/// Strictly positive for every `df ≤ N` (the fraction is positive), and
/// strictly decreasing in `df` — rarer terms always weigh more. Finite for
/// every valid input because the fraction is finite and positive.
pub fn bm25_idf(num_docs: usize, df: u32) -> f64 {
    let n = num_docs as f64;
    let df = f64::from(df);
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// BM25 free parameters.
///
/// Construct with [`Bm25Params::new`] (the conventional `k1 = 1.2`,
/// `b = 0.75`) plus the chainable `with_*` setters; the struct is
/// `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct Bm25Params {
    /// Term-frequency saturation: higher `k1` lets repeated terms keep
    /// adding score for longer.
    pub k1: f64,
    /// Length normalization strength in `[0, 1]`: `0` ignores document
    /// length, `1` fully normalizes by `dl / avgdl`.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

impl Bm25Params {
    /// The conventional parameters (same as `Default`): `k1 = 1.2`,
    /// `b = 0.75`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the term-frequency saturation parameter.
    pub fn with_k1(mut self, k1: f64) -> Self {
        self.k1 = k1;
        self
    }

    /// Set the length-normalization strength.
    pub fn with_b(mut self, b: f64) -> Self {
        self.b = b;
        self
    }

    /// One term's BM25 contribution:
    /// `idf · tf·(k1+1) / (tf + k1·(1 − b + b·dl/avgdl))`.
    ///
    /// With `tf > 0`, `idf > 0` and a non-degenerate collection the result
    /// is finite and positive; an empty collection (`avgdl == 0`) skips
    /// length normalization rather than dividing by zero.
    pub fn score_term(&self, tf: f64, idf: f64, doc_len: f64, avgdl: f64) -> f64 {
        let norm = if avgdl > 0.0 {
            1.0 - self.b + self.b * doc_len / avgdl
        } else {
            1.0
        };
        idf * (tf * (self.k1 + 1.0)) / (tf + self.k1 * norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_is_positive_and_monotone() {
        let n = 1000;
        let mut prev = f64::INFINITY;
        for df in 1..=1000 {
            let idf = bm25_idf(n, df);
            assert!(idf > 0.0, "idf({df}) = {idf}");
            assert!(idf < prev, "idf must strictly decrease in df");
            prev = idf;
        }
    }

    #[test]
    fn score_saturates_in_tf() {
        let p = Bm25Params::new();
        let idf = bm25_idf(100, 3);
        let s1 = p.score_term(1.0, idf, 10.0, 10.0);
        let s2 = p.score_term(2.0, idf, 10.0, 10.0);
        let s100 = p.score_term(100.0, idf, 10.0, 10.0);
        assert!(s2 > s1, "more occurrences score higher");
        assert!(
            s100 < idf * (p.k1 + 1.0),
            "score is bounded by idf·(k1+1) regardless of tf"
        );
    }

    #[test]
    fn longer_documents_are_penalized() {
        let p = Bm25Params::new();
        let idf = bm25_idf(100, 3);
        let short = p.score_term(2.0, idf, 5.0, 10.0);
        let long = p.score_term(2.0, idf, 50.0, 10.0);
        assert!(short > long);
    }

    #[test]
    fn empty_collection_does_not_divide_by_zero() {
        let p = Bm25Params::new();
        let s = p.score_term(1.0, 1.0, 0.0, 0.0);
        assert!(s.is_finite());
    }

    #[test]
    fn setters_chain() {
        let p = Bm25Params::new().with_k1(2.0).with_b(0.0);
        assert_eq!(p.k1, 2.0);
        assert_eq!(p.b, 0.0);
        // b = 0: document length is ignored entirely.
        let a = p.score_term(2.0, 1.0, 5.0, 10.0);
        let b = p.score_term(2.0, 1.0, 500.0, 10.0);
        assert_eq!(a, b);
    }
}
