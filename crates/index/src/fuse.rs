//! Reciprocal-rank fusion of multiple rankings.
//!
//! BM25 and TF-IDF cosine scores live on incomparable scales; RRF
//! (Cormack, Clarke & Büttcher, SIGIR 2009) fuses them through ranks
//! alone: `score(d) = Σ_rankings 1/(C + rank_r(d))` with the conventional
//! `C = 60`, summing only over rankings that contain `d`. Rank positions
//! are 1-based; fused ties break by document id ascending, so fusion is
//! as deterministic as its inputs.

use crate::postings::Hit;
use std::collections::HashMap;

/// The conventional RRF smoothing constant.
pub const RRF_C: f64 = 60.0;

/// Fuse rankings by reciprocal rank; returns the top `k` fused hits,
/// scored `Σ 1/(RRF_C + rank)`, sorted (fused score descending, doc id
/// ascending).
///
/// Each input ranking contributes by position only — its scores are
/// ignored — so callers can fuse rankings from different scoring spaces
/// directly. Summation per document happens in ranking-list order
/// (deterministic), and every fused score is finite because ranks are
/// at least 1.
pub fn rrf_fuse(rankings: &[&[Hit]], k: usize) -> Vec<Hit> {
    let mut fused: HashMap<usize, f64> = HashMap::new();
    for ranking in rankings {
        for (rank0, hit) in ranking.iter().enumerate() {
            *fused.entry(hit.doc).or_insert(0.0) += 1.0 / (RRF_C + (rank0 + 1) as f64);
        }
    }
    let mut hits: Vec<Hit> = fused
        .into_iter()
        .map(|(doc, score)| Hit { doc, score })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(docs: &[usize]) -> Vec<Hit> {
        docs.iter()
            .enumerate()
            .map(|(i, &doc)| Hit {
                doc,
                score: 100.0 - i as f64,
            })
            .collect()
    }

    #[test]
    fn agreement_wins() {
        let a = hits(&[1, 2, 3]);
        let b = hits(&[2, 1, 4]);
        let fused = rrf_fuse(&[&a, &b], 10);
        // Docs 1 and 2 appear top-2 in both rankings and tie exactly
        // (1/61 + 1/62 each); the tie breaks by doc id.
        assert_eq!(fused[0].doc, 1);
        assert_eq!(fused[1].doc, 2);
        assert_eq!(fused[0].score, fused[1].score);
        assert!(fused.iter().any(|h| h.doc == 3));
        assert!(fused.iter().any(|h| h.doc == 4));
    }

    #[test]
    fn single_ranking_preserves_order() {
        let a = hits(&[7, 3, 9]);
        let fused = rrf_fuse(&[&a], 10);
        assert_eq!(
            fused.iter().map(|h| h.doc).collect::<Vec<_>>(),
            vec![7, 3, 9]
        );
    }

    #[test]
    fn truncates_to_k() {
        let a = hits(&[1, 2, 3, 4, 5]);
        assert_eq!(rrf_fuse(&[&a], 2).len(), 2);
        assert!(rrf_fuse(&[], 5).is_empty());
    }
}
