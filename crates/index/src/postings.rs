//! The cluster-sharded inverted index.
//!
//! Postings are sharded by cluster — each shard maps term → postings for
//! the documents assigned to that cluster — so cluster-routed retrieval
//! can skip whole shards. Collection statistics (document frequency,
//! document length, `avgdl`) are **global**: a document's BM25 score does
//! not depend on which shards a query visits, only *whether* its shard is
//! visited. Routed retrieval therefore returns a subset of the full-scan
//! ranking, never differently-scored documents.

use crate::bm25::{bm25_idf, Bm25Params};
use cafc_exec::{par_chunks_obs, par_reduce, ExecPolicy};
use cafc_obs::Obs;
use cafc_text::TermId;
use cafc_vsm::SparseVector;
use std::collections::{BTreeMap, HashMap};

/// Documents per work unit during index construction. Fixed (never derived
/// from the thread count) so chunk boundaries — and therefore posting
/// append order — are identical under every [`ExecPolicy`].
const DOC_CHUNK: usize = 64;

/// One posting: a document and the term's location-weighted frequency in
/// it. Only strictly positive frequencies are indexed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// Document id (index into the corpus).
    pub doc: u32,
    /// Location-weighted term frequency (Equation 1's `Σ LOC`), `> 0`.
    pub tf: f64,
}

/// One ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document id.
    pub doc: usize,
    /// Score under whatever ranking produced the hit.
    pub score: f64,
}

/// What a retrieval pass actually touched — the currency of the
/// routed-vs-full comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Postings visited across all shards scanned.
    pub postings_scanned: usize,
    /// Distinct documents that accumulated a score.
    pub docs_scored: usize,
    /// Shards (clusters) visited before the budget ran out.
    pub clusters_visited: usize,
}

/// Per-cluster postings: parallel sorted arrays, `terms[i]` owns
/// `postings[i]`.
#[derive(Debug, Clone, Default)]
struct Shard {
    terms: Vec<TermId>,
    postings: Vec<Vec<Posting>>,
}

impl Shard {
    fn get(&self, term: TermId) -> Option<&[Posting]> {
        self.terms
            .binary_search(&term)
            .ok()
            .map(|i| self.postings[i].as_slice())
    }
}

/// The inverted index: cluster-sharded postings plus global collection
/// statistics. Build with [`InvertedIndex::build`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    shards: Vec<Shard>,
    /// Global document frequency, indexed by term id.
    df: Vec<u32>,
    /// Global document length (total indexed tf mass), indexed by doc id.
    doc_len: Vec<f64>,
    /// Mean document length (0.0 for an empty collection).
    avgdl: f64,
}

impl InvertedIndex {
    /// Build an index over `docs_tf` (raw location-weighted TF vectors,
    /// aligned with corpus items) sharded by `clusters` (disjoint member
    /// lists; documents not covered by any cluster land in one trailing
    /// shard). Pass a single cluster containing every document for an
    /// unsharded index.
    ///
    /// Bit-identical under every `policy`: documents are accumulated in
    /// fixed-size chunks and the chunk-local postings are concatenated in
    /// chunk order, which reproduces the serial doc-ascending posting
    /// order exactly. Instrumentation (when `obs` is enabled): per-chunk
    /// `index.build.*` metrics plus gauges `index.shards`, `index.terms`
    /// and `index.postings`.
    pub fn build(
        docs_tf: &[SparseVector],
        clusters: &[Vec<usize>],
        policy: ExecPolicy,
        obs: &Obs,
    ) -> InvertedIndex {
        let n = docs_tf.len();
        let mut doc_shard: Vec<u32> = vec![u32::MAX; n];
        for (ci, members) in clusters.iter().enumerate() {
            for &m in members {
                if m < n {
                    doc_shard[m] = ci as u32;
                }
            }
        }
        let overflow = clusters.len() as u32;
        let mut num_shards = clusters.len();
        if doc_shard.contains(&u32::MAX) {
            num_shards += 1;
            for s in &mut doc_shard {
                if *s == u32::MAX {
                    *s = overflow;
                }
            }
        }

        // Chunked accumulation: each chunk builds (shard, term) → postings
        // for its documents in ascending doc order; merging chunks in
        // order keeps every postings list ascending by doc id.
        type Local = (BTreeMap<(u32, TermId), Vec<Posting>>, Vec<f64>);
        let chunks: Vec<Local> =
            par_chunks_obs(policy, n, DOC_CHUNK, obs, "index.build", |range| {
                let mut local: BTreeMap<(u32, TermId), Vec<Posting>> = BTreeMap::new();
                let mut lens = Vec::with_capacity(range.len());
                for doc in range {
                    let shard = doc_shard[doc];
                    let mut len = 0.0;
                    for &(term, tf) in docs_tf[doc].entries() {
                        if tf > 0.0 {
                            len += tf;
                            local.entry((shard, term)).or_default().push(Posting {
                                doc: doc as u32,
                                tf,
                            });
                        }
                    }
                    lens.push(len);
                }
                (local, lens)
            });

        let mut maps: Vec<BTreeMap<TermId, Vec<Posting>>> = vec![BTreeMap::new(); num_shards];
        let mut doc_len = Vec::with_capacity(n);
        for (local, lens) in chunks {
            for ((shard, term), posts) in local {
                maps[shard as usize].entry(term).or_default().extend(posts);
            }
            doc_len.extend(lens);
        }

        let mut df: Vec<u32> = Vec::new();
        let mut shards = Vec::with_capacity(num_shards);
        let mut total_postings = 0usize;
        for map in maps {
            let mut terms = Vec::with_capacity(map.len());
            let mut postings = Vec::with_capacity(map.len());
            for (term, posts) in map {
                if df.len() <= term.index() {
                    df.resize(term.index() + 1, 0);
                }
                df[term.index()] += posts.len() as u32;
                total_postings += posts.len();
                terms.push(term);
                postings.push(posts);
            }
            shards.push(Shard { terms, postings });
        }

        // Fixed-chunk reduction -> the same float sum under every policy.
        let total_len = par_reduce(
            policy,
            n,
            DOC_CHUNK,
            |range| range.map(|d| doc_len[d]).sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        let avgdl = if n > 0 { total_len / n as f64 } else { 0.0 };

        obs.gauge("index.shards", num_shards as f64);
        obs.gauge("index.terms", df.iter().filter(|&&d| d > 0).count() as f64);
        obs.gauge("index.postings", total_postings as f64);
        InvertedIndex {
            shards,
            df,
            doc_len,
            avgdl,
        }
    }

    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Number of shards (clusters, plus a trailing overflow shard when the
    /// cluster lists did not cover every document).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total postings stored across all shards.
    pub fn num_postings(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.postings.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Global document frequency of a term.
    pub fn df(&self, term: TermId) -> u32 {
        self.df.get(term.index()).copied().unwrap_or(0)
    }

    /// Global document length (indexed tf mass) of a document.
    pub fn doc_len(&self, doc: usize) -> f64 {
        self.doc_len.get(doc).copied().unwrap_or(0.0)
    }

    /// Mean document length (0.0 for an empty collection).
    pub fn avgdl(&self) -> f64 {
        self.avgdl
    }

    /// The trivial visit order: every shard, in shard order. A full scan.
    pub fn full_order(&self) -> Vec<usize> {
        (0..self.shards.len()).collect()
    }

    /// Sorted, deduplicated copy of a query's term ids — the canonical
    /// term order every scoring path accumulates in.
    fn normalize(query: &[TermId]) -> Vec<TermId> {
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        q
    }

    /// Term-at-a-time BM25 over the shards in `order`, stopping early once
    /// `budget` postings have been scanned (the shard in progress is
    /// always finished, so a budget never truncates a cluster's ranking
    /// mid-way). Returns the top `k` hits sorted by (score descending,
    /// doc id ascending) and the scan accounting.
    ///
    /// Scores use global statistics, so a document scores identically
    /// whether it is reached by a routed or a full scan, and identically
    /// to the doc-at-a-time reference ([`InvertedIndex::scan_bm25`]).
    pub fn search_bm25(
        &self,
        query: &[TermId],
        k: usize,
        order: &[usize],
        budget: Option<usize>,
        params: &Bm25Params,
    ) -> (Vec<Hit>, ScanStats) {
        let query = Self::normalize(query);
        let idf: Vec<f64> = query
            .iter()
            .map(|&t| bm25_idf(self.num_docs(), self.df(t)))
            .collect();
        let mut stats = ScanStats::default();
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for &si in order {
            if budget.is_some_and(|b| stats.postings_scanned >= b) {
                break;
            }
            let Some(shard) = self.shards.get(si) else {
                continue;
            };
            stats.clusters_visited += 1;
            // Outer loop over terms in ascending order: each document
            // accumulates its term contributions in that fixed order, the
            // same order the doc-at-a-time reference uses.
            for (&term, &idf) in query.iter().zip(&idf) {
                let Some(postings) = shard.get(term) else {
                    continue;
                };
                stats.postings_scanned += postings.len();
                for p in postings {
                    let s = params.score_term(p.tf, idf, self.doc_len(p.doc as usize), self.avgdl);
                    *acc.entry(p.doc).or_insert(0.0) += s;
                }
            }
        }
        stats.docs_scored = acc.len();
        (top_k(acc, k), stats)
    }

    /// Doc-at-a-time BM25 reference: scan every document's raw TF vector
    /// directly, using this index's global statistics. The differential
    /// oracle for [`InvertedIndex::search_bm25`] — same scores, same
    /// order, reached without touching the postings lists.
    pub fn scan_bm25(
        &self,
        docs_tf: &[SparseVector],
        query: &[TermId],
        k: usize,
        params: &Bm25Params,
    ) -> (Vec<Hit>, ScanStats) {
        let query = Self::normalize(query);
        let idf: Vec<f64> = query
            .iter()
            .map(|&t| bm25_idf(self.num_docs(), self.df(t)))
            .collect();
        let mut stats = ScanStats {
            clusters_visited: self.num_shards(),
            ..ScanStats::default()
        };
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for (doc, vector) in docs_tf.iter().enumerate() {
            let mut score = 0.0;
            let mut matched = false;
            for (&term, &idf) in query.iter().zip(&idf) {
                let tf = vector.get(term);
                if tf > 0.0 {
                    stats.postings_scanned += 1;
                    matched = true;
                    score += params.score_term(tf, idf, self.doc_len(doc), self.avgdl);
                }
            }
            if matched {
                acc.insert(doc as u32, score);
            }
        }
        stats.docs_scored = acc.len();
        (top_k(acc, k), stats)
    }

    /// Candidate discovery through the postings in `order` under the same
    /// budget semantics as [`InvertedIndex::search_bm25`]: every document
    /// holding at least one query term in a visited shard, ascending by
    /// doc id. The TF-IDF retrieval path scores these candidates against
    /// the cosine space; routing and budgeting cost exactly what they cost
    /// the BM25 path.
    pub fn candidates(
        &self,
        query: &[TermId],
        order: &[usize],
        budget: Option<usize>,
    ) -> (Vec<usize>, ScanStats) {
        let query = Self::normalize(query);
        let mut stats = ScanStats::default();
        let mut docs: Vec<usize> = Vec::new();
        for &si in order {
            if budget.is_some_and(|b| stats.postings_scanned >= b) {
                break;
            }
            let Some(shard) = self.shards.get(si) else {
                continue;
            };
            stats.clusters_visited += 1;
            for &term in &query {
                let Some(postings) = shard.get(term) else {
                    continue;
                };
                stats.postings_scanned += postings.len();
                docs.extend(postings.iter().map(|p| p.doc as usize));
            }
        }
        docs.sort_unstable();
        docs.dedup();
        stats.docs_scored = docs.len();
        (docs, stats)
    }
}

/// Collect the accumulator into hits sorted by (score descending, doc id
/// ascending) — a total order, so the result is deterministic regardless
/// of hash-map iteration order — truncated to `k`.
fn top_k(acc: HashMap<u32, f64>, k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = acc
        .into_iter()
        .map(|(doc, score)| Hit {
            doc: doc as usize,
            score,
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_text::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn vector(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(i, w)| (t(i), w)).collect())
    }

    /// Two "flight" docs (terms 0, 1) and two "job" docs (terms 2, 3);
    /// term 4 appears everywhere.
    fn docs() -> Vec<SparseVector> {
        vec![
            vector(&[(0, 2.0), (1, 1.0), (4, 1.0)]),
            vector(&[(0, 1.0), (1, 3.0), (4, 1.0)]),
            vector(&[(2, 2.0), (3, 1.0), (4, 1.0)]),
            vector(&[(2, 1.0), (3, 2.0), (4, 1.0)]),
        ]
    }

    fn clusters() -> Vec<Vec<usize>> {
        vec![vec![0, 1], vec![2, 3]]
    }

    fn build(docs: &[SparseVector], clusters: &[Vec<usize>]) -> InvertedIndex {
        InvertedIndex::build(docs, clusters, ExecPolicy::Serial, &Obs::disabled())
    }

    #[test]
    fn build_collects_global_stats() {
        let docs = docs();
        let index = build(&docs, &clusters());
        assert_eq!(index.num_docs(), 4);
        assert_eq!(index.num_shards(), 2);
        assert_eq!(index.df(t(0)), 2);
        assert_eq!(index.df(t(4)), 4);
        assert_eq!(index.df(t(9)), 0);
        assert_eq!(index.doc_len(0), 4.0);
        assert_eq!(index.avgdl(), 4.25);
        assert_eq!(index.num_postings(), 12);
    }

    #[test]
    fn uncovered_docs_land_in_overflow_shard() {
        let docs = docs();
        let index = build(&docs, &[vec![0, 1]]);
        assert_eq!(index.num_shards(), 2, "overflow shard appended");
        let (hits, _) =
            index.search_bm25(&[t(2)], 10, &index.full_order(), None, &Bm25Params::new());
        assert_eq!(hits.len(), 2, "overflow docs remain searchable");
    }

    #[test]
    fn postings_search_matches_scan_bitwise() {
        let docs = docs();
        let index = build(&docs, &clusters());
        let params = Bm25Params::new();
        for query in [
            vec![t(0)],
            vec![t(0), t(1)],
            vec![t(4), t(2)],
            vec![t(1), t(0), t(1)], // duplicates normalize away
            vec![t(7)],             // unknown term
        ] {
            let (indexed, _) = index.search_bm25(&query, 10, &index.full_order(), None, &params);
            let (scanned, _) = index.scan_bm25(&docs, &query, 10, &params);
            assert_eq!(indexed, scanned, "query {query:?}");
        }
    }

    #[test]
    fn routed_scan_touches_fewer_postings() {
        let docs = docs();
        let index = build(&docs, &clusters());
        let params = Bm25Params::new();
        // Query for flight vocabulary, routed to shard 0 only via budget.
        let (routed, routed_stats) = index.search_bm25(&[t(0), t(4)], 2, &[0, 1], Some(1), &params);
        let (full, full_stats) =
            index.search_bm25(&[t(0), t(4)], 2, &index.full_order(), None, &params);
        assert!(routed_stats.postings_scanned < full_stats.postings_scanned);
        assert_eq!(routed_stats.clusters_visited, 1);
        assert_eq!(routed, full, "the right cluster held the full top-2");
        // Scores are global: every routed hit appears in the full ranking
        // with the identical score.
        for hit in &routed {
            assert!(full.contains(hit));
        }
    }

    #[test]
    fn budget_finishes_current_shard() {
        let docs = docs();
        let index = build(&docs, &clusters());
        let (_, stats) = index.search_bm25(
            &[t(4)],
            10,
            &[0, 1],
            Some(1), // exhausted inside shard 0, but shard 0 completes
            &Bm25Params::new(),
        );
        assert_eq!(stats.clusters_visited, 1);
        assert_eq!(stats.postings_scanned, 2, "shard 0's postings all scanned");
    }

    #[test]
    fn candidates_ascend_and_dedup() {
        let docs = docs();
        let index = build(&docs, &clusters());
        let (cands, stats) = index.candidates(&[t(0), t(4)], &index.full_order(), None);
        assert_eq!(cands, vec![0, 1, 2, 3]);
        assert_eq!(stats.docs_scored, 4);
        let (cands, _) = index.candidates(&[t(0)], &[1], None);
        assert!(cands.is_empty(), "shard 1 has no postings for term 0");
    }

    #[test]
    fn ties_break_by_doc_id() {
        let docs = vec![
            vector(&[(0, 1.0)]),
            vector(&[(0, 1.0)]),
            vector(&[(1, 1.0)]),
        ];
        let index = build(&docs, &[vec![0, 1, 2]]);
        let (hits, _) =
            index.search_bm25(&[t(0)], 10, &index.full_order(), None, &Bm25Params::new());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].score, hits[1].score);
        assert_eq!((hits[0].doc, hits[1].doc), (0, 1));
    }

    #[test]
    fn exec_policies_build_identical_indexes() {
        // Enough docs to cross DOC_CHUNK boundaries.
        let docs: Vec<SparseVector> = (0..200)
            .map(|i| {
                vector(&[
                    (i % 17, 1.0 + f64::from(i % 3)),
                    (i % 5 + 20, 0.5),
                    (40, 1.0),
                ])
            })
            .collect();
        let clusters: Vec<Vec<usize>> = (0..4)
            .map(|c| (0..docs.len()).filter(|d| d % 4 == c).collect())
            .collect();
        let baseline = build(&docs, &clusters);
        for policy in [
            ExecPolicy::Parallel { threads: 3 },
            ExecPolicy::Parallel { threads: 8 },
            ExecPolicy::Auto,
        ] {
            let index = InvertedIndex::build(&docs, &clusters, policy, &Obs::disabled());
            assert_eq!(index.df, baseline.df, "{policy:?}");
            assert_eq!(index.doc_len, baseline.doc_len, "{policy:?}");
            assert_eq!(
                index.avgdl.to_bits(),
                baseline.avgdl.to_bits(),
                "{policy:?}"
            );
            for (a, b) in index.shards.iter().zip(&baseline.shards) {
                assert_eq!(a.terms, b.terms, "{policy:?}");
                assert_eq!(a.postings, b.postings, "{policy:?}");
            }
        }
    }

    #[test]
    fn empty_collection_is_searchable() {
        let index = build(&[], &[]);
        assert_eq!(index.num_docs(), 0);
        assert_eq!(index.avgdl(), 0.0);
        let (hits, stats) =
            index.search_bm25(&[t(0)], 5, &index.full_order(), None, &Bm25Params::new());
        assert!(hits.is_empty());
        assert_eq!(stats, ScanStats::default());
    }
}
