//! # cafc-eval
//!
//! Cluster-quality metrics used in the paper's evaluation (§4.1):
//!
//! * **Entropy** (Equation 5): per-cluster class entropy
//!   `E_j = −Σ_i p_ij log(p_ij)`, totalled as the cluster-size-weighted sum.
//!   Lower is better; 0 means every cluster is pure.
//! * **F-measure** (Equation 6, after Larsen & Aone): the harmonic mean of
//!   `Recall(i,j) = n_ij / n_i` and `Precision(i,j) = n_ij / n_j`, combined
//!   over the clustering by weighted average. Higher is better; 1 is
//!   perfect.
//! * Supporting measures: purity, misclustered-item counts, and a full
//!   class-by-cluster [`ConfusionMatrix`] for the §4.2 error analysis
//!   (Music/Movie confusions, single-attribute mistakes).
//!
//! All functions take the clustering as `&[Vec<usize>]` (cluster member
//! lists over items `0..n`) and the gold standard as a label slice.

#![warn(missing_docs)]

pub mod agreement;
pub mod confusion;
pub mod metrics;
pub mod validate;

pub use agreement::{
    adjusted_rand_index, mutual_information, nmi, pairwise_scores, PairwiseScores,
};
pub use confusion::ConfusionMatrix;
pub use metrics::{entropy, f_measure, f_measure_by_class, misclustered, purity, EntropyBase};
pub use validate::{drop_empty_clusters, validate_clusters, PartitionError};
