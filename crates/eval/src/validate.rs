//! Boundary validation for externally-supplied clusterings.
//!
//! The metric functions in this crate assume a *well-formed* clustering:
//! every member index in range and no index in two clusters. They do not
//! check — `entropy`/`f_measure` would silently double-count a duplicated
//! index, and a file edited by hand (`clusters.json`) can easily violate
//! both. Callers that ingest clusterings from outside the library (the CLI
//! `eval` subcommand, notebooks, tests) should run
//! [`validate_clusters`] first and surface the typed error.
//!
//! Empty clusters are *not* an error here: the writer and reader of
//! `clusters.json` both drop them, and the metrics skip them, so they are
//! normalized away rather than rejected.

use std::fmt;

/// A malformed clustering detected at the eval boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// An item index appears in more than one cluster (or twice in one).
    DuplicateItem {
        /// The offending item index.
        item: usize,
        /// Cluster (by position, empty clusters included) of the first
        /// occurrence.
        first_cluster: usize,
        /// Cluster of the second occurrence.
        second_cluster: usize,
    },
    /// An item index is out of range for the labelled corpus.
    OutOfRange {
        /// The offending item index.
        item: usize,
        /// Cluster (by position) containing it.
        cluster: usize,
        /// Number of labelled items; valid indices are `0..num_items`.
        num_items: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::DuplicateItem {
                item,
                first_cluster,
                second_cluster,
            } => write!(
                f,
                "item {item} appears in cluster {first_cluster} and again in cluster \
                 {second_cluster}; a clustering must assign each item once"
            ),
            PartitionError::OutOfRange {
                item,
                cluster,
                num_items,
            } => write!(
                f,
                "cluster {cluster} references item {item}, but only {num_items} items are \
                 labelled (valid indices are 0..{num_items})"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Check that `clusters` is a well-formed (partial) clustering of
/// `num_items` items: every member index in `0..num_items` and no index
/// assigned twice. Items missing from every cluster are fine (the metrics
/// treat the clustering as covering only the listed items), as are empty
/// clusters (the metrics skip them).
pub fn validate_clusters(clusters: &[Vec<usize>], num_items: usize) -> Result<(), PartitionError> {
    let mut owner: Vec<Option<usize>> = vec![None; num_items];
    for (c, members) in clusters.iter().enumerate() {
        for &item in members {
            if item >= num_items {
                return Err(PartitionError::OutOfRange {
                    item,
                    cluster: c,
                    num_items,
                });
            }
            match owner[item] {
                Some(first_cluster) => {
                    return Err(PartitionError::DuplicateItem {
                        item,
                        first_cluster,
                        second_cluster: c,
                    })
                }
                None => owner[item] = Some(c),
            }
        }
    }
    Ok(())
}

/// Drop empty clusters, preserving the order of the rest — the
/// normalization both the `clusters.json` writer and reader apply so that
/// cluster positions agree between them.
pub fn drop_empty_clusters(clusters: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    clusters.into_iter().filter(|c| !c.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_passes() {
        let clusters = vec![vec![0, 2], vec![1], vec![4]];
        assert_eq!(validate_clusters(&clusters, 5), Ok(()));
        // Partial coverage (item 3 unassigned) is fine.
    }

    #[test]
    fn duplicate_across_clusters_rejected() {
        let clusters = vec![vec![0, 1], vec![2, 1]];
        assert_eq!(
            validate_clusters(&clusters, 3),
            Err(PartitionError::DuplicateItem {
                item: 1,
                first_cluster: 0,
                second_cluster: 1,
            })
        );
    }

    #[test]
    fn duplicate_within_one_cluster_rejected() {
        let clusters = vec![vec![2, 2]];
        assert_eq!(
            validate_clusters(&clusters, 3),
            Err(PartitionError::DuplicateItem {
                item: 2,
                first_cluster: 0,
                second_cluster: 0,
            })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let clusters = vec![vec![0], vec![3]];
        assert_eq!(
            validate_clusters(&clusters, 3),
            Err(PartitionError::OutOfRange {
                item: 3,
                cluster: 1,
                num_items: 3,
            })
        );
    }

    #[test]
    fn empty_corpus_rejects_any_member() {
        assert!(validate_clusters(&[vec![0]], 0).is_err());
        assert_eq!(validate_clusters(&[vec![], vec![]], 0), Ok(()));
    }

    #[test]
    fn empty_clusters_are_valid_and_droppable() {
        let clusters = vec![vec![], vec![0], vec![], vec![1, 2]];
        assert_eq!(validate_clusters(&clusters, 3), Ok(()));
        assert_eq!(drop_empty_clusters(clusters), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn errors_display_actionably() {
        let dup = PartitionError::DuplicateItem {
            item: 7,
            first_cluster: 1,
            second_cluster: 4,
        }
        .to_string();
        assert!(dup.contains("item 7"), "{dup}");
        assert!(dup.contains("cluster 1"), "{dup}");
        let oor = PartitionError::OutOfRange {
            item: 9,
            cluster: 0,
            num_items: 5,
        }
        .to_string();
        assert!(oor.contains("0..5"), "{oor}");
    }
}
