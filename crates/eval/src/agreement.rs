//! Information-theoretic and pair-counting agreement measures.
//!
//! The paper evaluates with entropy and F-measure only; a library release
//! should also offer the modern standards — normalized mutual information
//! and the adjusted Rand index — so downstream users can compare CAFC
//! against other systems on equal footing. Both are computed from the same
//! contingency table as the paper's metrics.

use crate::confusion::ConfusionMatrix;
use std::hash::Hash;

/// Mutual information between the cluster assignment and the gold classes,
/// in bits.
pub fn mutual_information<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    let n = m.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for i in 0..m.classes().len() {
        for j in 0..m.num_clusters() {
            let n_ij = m.count(i, j) as f64;
            if n_ij == 0.0 {
                continue;
            }
            let p_ij = n_ij / n;
            let p_i = m.class_size(i) as f64 / n;
            let p_j = m.cluster_size(j) as f64 / n;
            mi += p_ij * (p_ij / (p_i * p_j)).log2();
        }
    }
    mi.max(0.0)
}

/// Shannon entropy (bits) of a size distribution.
fn dist_entropy(sizes: impl Iterator<Item = usize>, total: f64) -> f64 {
    let mut h = 0.0;
    for s in sizes {
        if s > 0 {
            let p = s as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Normalized mutual information: `MI / sqrt(H(classes) · H(clusters))`,
/// in `\[0, 1\]`. Returns 1.0 when both partitions are trivial (single
/// class, single cluster) and agree; 0.0 for independent assignments.
pub fn nmi<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    let n = m.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let h_class = dist_entropy((0..m.classes().len()).map(|i| m.class_size(i)), n);
    let h_cluster = dist_entropy((0..m.num_clusters()).map(|j| m.cluster_size(j)), n);
    let denom = (h_class * h_cluster).sqrt();
    if denom == 0.0 {
        // One side is a single block; they agree iff the other side is too.
        return if h_class == h_cluster { 1.0 } else { 0.0 };
    }
    (mutual_information(clusters, labels) / denom).clamp(0.0, 1.0)
}

fn choose2(x: usize) -> f64 {
    let x = x as f64;
    x * (x - 1.0) / 2.0
}

/// Adjusted Rand index: pair-counting agreement corrected for chance.
/// 1.0 for identical partitions, ~0.0 for random ones (can be negative).
pub fn adjusted_rand_index<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    let n = m.total();
    if n < 2 {
        return 1.0;
    }
    let sum_ij: f64 = (0..m.classes().len())
        .flat_map(|i| (0..m.num_clusters()).map(move |j| (i, j)))
        .map(|(i, j)| choose2(m.count(i, j)))
        .sum();
    let sum_i: f64 = (0..m.classes().len())
        .map(|i| choose2(m.class_size(i)))
        .sum();
    let sum_j: f64 = (0..m.num_clusters())
        .map(|j| choose2(m.cluster_size(j)))
        .sum();
    let total_pairs = choose2(n);
    let expected = sum_i * sum_j / total_pairs;
    let max_index = 0.5 * (sum_i + sum_j);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Pairwise precision/recall/F1 over co-clustered item pairs: a pair of
/// same-class items should share a cluster, a pair of different-class
/// items should not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseScores {
    /// Of the pairs sharing a cluster, the fraction sharing a class.
    pub precision: f64,
    /// Of the pairs sharing a class, the fraction sharing a cluster.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

/// Compute pairwise clustering scores.
pub fn pairwise_scores<L: Eq + Hash + Clone>(
    clusters: &[Vec<usize>],
    labels: &[L],
) -> PairwiseScores {
    let m = ConfusionMatrix::new(clusters, labels);
    let same_both: f64 = (0..m.classes().len())
        .flat_map(|i| (0..m.num_clusters()).map(move |j| (i, j)))
        .map(|(i, j)| choose2(m.count(i, j)))
        .sum();
    let same_cluster: f64 = (0..m.num_clusters())
        .map(|j| choose2(m.cluster_size(j)))
        .sum();
    let same_class: f64 = (0..m.classes().len())
        .map(|i| choose2(m.class_size(i)))
        .sum();
    let precision = if same_cluster == 0.0 {
        1.0
    } else {
        same_both / same_cluster
    };
    let recall = if same_class == 0.0 {
        1.0
    } else {
        same_both / same_class
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: [&str; 8] = ["a", "a", "a", "a", "b", "b", "b", "b"];

    fn perfect() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]
    }

    fn one_blob() -> Vec<Vec<usize>> {
        vec![(0..8).collect()]
    }

    #[test]
    fn nmi_perfect_is_one() {
        assert!((nmi(&perfect(), &LABELS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_single_blob_is_zero() {
        assert_eq!(nmi(&one_blob(), &LABELS), 0.0);
    }

    #[test]
    fn nmi_bounds_on_partial_agreement() {
        let clusters = vec![vec![0, 1, 2, 4], vec![3, 5, 6, 7]];
        let v = nmi(&clusters, &LABELS);
        assert!(v > 0.0 && v < 1.0, "{v}");
    }

    #[test]
    fn ari_perfect_is_one() {
        assert!((adjusted_rand_index(&perfect(), &LABELS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_single_blob_is_zero() {
        let v = adjusted_rand_index(&one_blob(), &LABELS);
        assert!(v.abs() < 1e-12, "{v}");
    }

    #[test]
    fn ari_label_permutation_invariant() {
        // Swapping which cluster holds which class does not matter.
        let swapped = vec![vec![4, 5, 6, 7], vec![0, 1, 2, 3]];
        assert!((adjusted_rand_index(&swapped, &LABELS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_perfect_equals_class_entropy() {
        // Balanced 2-class: H = 1 bit.
        assert!((mutual_information(&perfect(), &LABELS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_perfect() {
        let s = pairwise_scores(&perfect(), &LABELS);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn pairwise_single_blob_has_full_recall_low_precision() {
        let s = pairwise_scores(&one_blob(), &LABELS);
        assert_eq!(s.recall, 1.0);
        // 12 same-class pairs of 28 total pairs.
        assert!((s.precision - 12.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_singletons_have_full_precision_zero_recall() {
        let clusters: Vec<Vec<usize>> = (0..8).map(|i| vec![i]).collect();
        let s = pairwise_scores(&clusters, &LABELS);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let clusters: Vec<Vec<usize>> = vec![];
        assert_eq!(nmi(&clusters, &LABELS), 0.0);
        assert_eq!(mutual_information(&clusters, &LABELS), 0.0);
        assert_eq!(adjusted_rand_index(&clusters, &LABELS), 1.0);
    }
}
