//! Class-by-cluster contingency table.

use std::collections::HashMap;
use std::hash::Hash;

/// A contingency table `n_ij` = number of items of class `i` in cluster `j`,
/// with the marginals `n_i` (class sizes) and `n_j` (cluster sizes).
#[derive(Debug, Clone)]
pub struct ConfusionMatrix<L> {
    /// Distinct class labels, in first-appearance order over the label slice.
    classes: Vec<L>,
    /// `counts[class][cluster]`.
    counts: Vec<Vec<usize>>,
    /// Cluster sizes `n_j`.
    cluster_sizes: Vec<usize>,
    /// Class sizes `n_i` (over clustered items only).
    class_sizes: Vec<usize>,
    total: usize,
}

impl<L: Eq + Hash + Clone> ConfusionMatrix<L> {
    /// Build from cluster member lists and per-item gold labels.
    ///
    /// # Panics
    /// Panics if a member index is out of range of `labels`.
    pub fn new(clusters: &[Vec<usize>], labels: &[L]) -> Self {
        let mut class_index: HashMap<L, usize> = HashMap::new();
        let mut classes: Vec<L> = Vec::new();
        // Register classes in label order for stable output.
        for l in labels {
            if !class_index.contains_key(l) {
                class_index.insert(l.clone(), classes.len());
                classes.push(l.clone());
            }
        }
        let mut counts = vec![vec![0usize; clusters.len()]; classes.len()];
        let mut cluster_sizes = vec![0usize; clusters.len()];
        let mut class_sizes = vec![0usize; classes.len()];
        let mut total = 0usize;
        for (j, members) in clusters.iter().enumerate() {
            for &m in members {
                let i = class_index[&labels[m]];
                counts[i][j] += 1;
                cluster_sizes[j] += 1;
                class_sizes[i] += 1;
                total += 1;
            }
        }
        ConfusionMatrix {
            classes,
            counts,
            cluster_sizes,
            class_sizes,
            total,
        }
    }

    /// The distinct classes.
    pub fn classes(&self) -> &[L] {
        &self.classes
    }

    /// Number of clusters (columns).
    pub fn num_clusters(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// `n_ij` by class row and cluster column.
    pub fn count(&self, class: usize, cluster: usize) -> usize {
        self.counts[class][cluster]
    }

    /// Cluster size `n_j`.
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.cluster_sizes[cluster]
    }

    /// Class size `n_i` (clustered items only).
    pub fn class_size(&self, class: usize) -> usize {
        self.class_sizes[class]
    }

    /// Total clustered items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The majority class of a cluster, or `None` for an empty cluster.
    /// Ties break toward the lower class row.
    pub fn majority_class(&self, cluster: usize) -> Option<usize> {
        if self.cluster_sizes[cluster] == 0 {
            return None;
        }
        (0..self.classes.len()).max_by_key(|&i| (self.counts[i][cluster], usize::MAX - i))
    }

    /// Items of class `a` sharing a cluster with a majority of class `b` —
    /// the paper's §4.2 error analysis looks at the (Music, Movie) entry.
    pub fn confused_into(&self, class_a: usize, class_b: usize) -> usize {
        (0..self.num_clusters())
            .filter(|&j| self.majority_class(j) == Some(class_b))
            .map(|j| self.counts[class_a][j])
            .sum()
    }

    /// Render as an aligned text table (classes × clusters) for reports.
    pub fn to_table(&self) -> String
    where
        L: std::fmt::Display,
    {
        let mut out = String::new();
        let label_w = self
            .classes
            .iter()
            .map(|c| c.to_string().len())
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!("{:label_w$}", "class"));
        for j in 0..self.num_clusters() {
            out.push_str(&format!(" {:>5}", format!("c{j}")));
        }
        out.push('\n');
        for (i, class) in self.classes.iter().enumerate() {
            out.push_str(&format!("{:label_w$}", class.to_string()));
            for j in 0..self.num_clusters() {
                out.push_str(&format!(" {:>5}", self.counts[i][j]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> ConfusionMatrix<&'static str> {
        // items: 0..6, labels a,a,a,b,b,c
        // clusters: {0,1,3} {2,4,5}
        let labels = ["a", "a", "a", "b", "b", "c"];
        ConfusionMatrix::new(&[vec![0, 1, 3], vec![2, 4, 5]], &labels)
    }

    #[test]
    fn counts_and_marginals() {
        let m = fixture();
        assert_eq!(m.classes(), &["a", "b", "c"]);
        assert_eq!(m.count(0, 0), 2); // a in cluster 0
        assert_eq!(m.count(1, 0), 1); // b in cluster 0
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 1), 1);
        assert_eq!(m.cluster_size(0), 3);
        assert_eq!(m.class_size(0), 3);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn majority_class() {
        let m = fixture();
        assert_eq!(m.majority_class(0), Some(0)); // a
                                                  // cluster 1 has one each of a,b,c -> tie -> lowest row (a)
        assert_eq!(m.majority_class(1), Some(0));
    }

    #[test]
    fn majority_of_empty_is_none() {
        let labels = ["a"];
        let m = ConfusionMatrix::new(&[vec![0], vec![]], &labels);
        assert_eq!(m.majority_class(1), None);
    }

    #[test]
    fn confused_into() {
        // clusters: {a,a,b} majority a; {b,b,a} majority b
        let labels = ["a", "a", "b", "b", "b", "a"];
        let m = ConfusionMatrix::new(&[vec![0, 1, 2], vec![3, 4, 5]], &labels);
        assert_eq!(m.confused_into(1, 0), 1); // one b in an a-cluster
        assert_eq!(m.confused_into(0, 1), 1); // one a in a b-cluster
        assert_eq!(m.confused_into(0, 0), 2);
    }

    #[test]
    fn partial_clustering_counts_only_clustered() {
        let labels = ["a", "a", "b"];
        let m = ConfusionMatrix::new(&[vec![0]], &labels);
        assert_eq!(m.total(), 1);
        assert_eq!(m.class_size(0), 1); // only the clustered "a"
        assert_eq!(m.classes().len(), 2); // classes registered from labels
    }

    #[test]
    fn table_rendering() {
        let m = fixture();
        let table = m.to_table();
        assert!(table.contains("class"));
        assert!(table.contains("c0"));
        assert!(table.lines().count() == 4);
    }
}
