//! Entropy (Equation 5), F-measure (Equation 6) and supporting measures.

use crate::confusion::ConfusionMatrix;
use std::hash::Hash;

/// Logarithm base for entropy. The paper just writes `log`; base 2 is the
/// common convention in the clustering literature and reproduces the
/// magnitude of the paper's reported values (0.15–1.1 over 8 domains,
/// against a base-2 ceiling of 3 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyBase {
    /// log₂ — entropy in bits (default).
    #[default]
    Two,
    /// Natural log — entropy in nats.
    E,
    /// log₁₀.
    Ten,
}

impl EntropyBase {
    fn log(self, x: f64) -> f64 {
        match self {
            EntropyBase::Two => x.log2(),
            EntropyBase::E => x.ln(),
            EntropyBase::Ten => x.log10(),
        }
    }
}

/// Total entropy of a clustering (Equation 5): the size-weighted sum of
/// per-cluster class entropies, `Σ_j (n_j / N) · E_j`.
///
/// Returns 0.0 for an empty clustering. Lower is better.
pub fn entropy<L: Eq + Hash + Clone>(
    clusters: &[Vec<usize>],
    labels: &[L],
    base: EntropyBase,
) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    if m.total() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for j in 0..m.num_clusters() {
        let n_j = m.cluster_size(j);
        if n_j == 0 {
            continue;
        }
        let mut e_j = 0.0;
        for i in 0..m.classes().len() {
            let n_ij = m.count(i, j);
            if n_ij > 0 {
                let p = n_ij as f64 / n_j as f64;
                e_j -= p * base.log(p);
            }
        }
        total += (n_j as f64 / m.total() as f64) * e_j;
    }
    total
}

/// Per-(class, cluster) F-measure (Equation 6):
/// `F(i,j) = 2·R·P / (R + P)` with `R = n_ij/n_i`, `P = n_ij/n_j`.
fn f_ij<L: Eq + Hash + Clone>(m: &ConfusionMatrix<L>, i: usize, j: usize) -> f64 {
    let n_ij = m.count(i, j) as f64;
    if n_ij == 0.0 {
        return 0.0;
    }
    let recall = n_ij / m.class_size(i) as f64;
    let precision = n_ij / m.cluster_size(j) as f64;
    2.0 * recall * precision / (recall + precision)
}

/// Overall F-measure, combined per the paper: "the weighted average of the
/// values for the F-measure of individual clusters" — each cluster `j`
/// contributes its best `F(i,j)` weighted by `n_j / N`.
///
/// Returns 0.0 for an empty clustering. Higher is better; 1.0 is perfect.
pub fn f_measure<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    if m.total() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for j in 0..m.num_clusters() {
        let n_j = m.cluster_size(j);
        if n_j == 0 {
            continue;
        }
        let best = (0..m.classes().len())
            .map(|i| f_ij(&m, i, j))
            .fold(0.0f64, f64::max);
        total += (n_j as f64 / m.total() as f64) * best;
    }
    total
}

/// The Larsen–Aone class-weighted variant: `Σ_i (n_i / N) · max_j F(i,j)`.
/// Reported alongside [`f_measure`] in EXPERIMENTS.md; both reward the same
/// perfect clusterings but penalize fragmentation differently.
pub fn f_measure_by_class<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    if m.total() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..m.classes().len() {
        let n_i = m.class_size(i);
        if n_i == 0 {
            continue;
        }
        let best = (0..m.num_clusters())
            .map(|j| f_ij(&m, i, j))
            .fold(0.0f64, f64::max);
        total += (n_i as f64 / m.total() as f64) * best;
    }
    total
}

/// Purity: fraction of items belonging to their cluster's majority class.
pub fn purity<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let m = ConfusionMatrix::new(clusters, labels);
    if m.total() == 0 {
        return 0.0;
    }
    let correct: usize = (0..m.num_clusters())
        .filter_map(|j| m.majority_class(j).map(|i| m.count(i, j)))
        .sum();
    correct as f64 / m.total() as f64
}

/// Item indices *not* in their cluster's majority class — the paper's §4.2
/// "incorrectly clustered form pages" (17 of 454 in the best run).
pub fn misclustered<L: Eq + Hash + Clone>(clusters: &[Vec<usize>], labels: &[L]) -> Vec<usize> {
    let m = ConfusionMatrix::new(clusters, labels);
    let mut out = Vec::new();
    for (j, members) in clusters.iter().enumerate() {
        let Some(majority) = m.majority_class(j) else {
            continue;
        };
        let majority_label = &m.classes()[majority];
        for &item in members {
            if &labels[item] != majority_label {
                out.push(item);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: [&str; 8] = ["a", "a", "a", "a", "b", "b", "b", "b"];

    fn perfect() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]
    }

    fn mixed() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 4, 5], vec![2, 3, 6, 7]]
    }

    #[test]
    fn entropy_perfect_is_zero() {
        assert_eq!(entropy(&perfect(), &LABELS, EntropyBase::Two), 0.0);
    }

    #[test]
    fn entropy_uniform_mix_is_one_bit() {
        let e = entropy(&mixed(), &LABELS, EntropyBase::Two);
        assert!((e - 1.0).abs() < 1e-12, "50/50 mixture = 1 bit, got {e}");
    }

    #[test]
    fn entropy_bases_scale() {
        let e2 = entropy(&mixed(), &LABELS, EntropyBase::Two);
        let en = entropy(&mixed(), &LABELS, EntropyBase::E);
        let e10 = entropy(&mixed(), &LABELS, EntropyBase::Ten);
        assert!((en - e2 * 2f64.ln()).abs() < 1e-12);
        assert!((e10 - e2 * 2f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn entropy_weighted_by_cluster_size() {
        // One pure cluster of 6, one 50/50 cluster of 2.
        let labels = ["a", "a", "a", "a", "a", "a", "a", "b"];
        let clusters = vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]];
        let e = entropy(&clusters, &labels, EntropyBase::Two);
        assert!(
            (e - 2.0 / 8.0).abs() < 1e-12,
            "0.75·0 + 0.25·1 = 0.25, got {e}"
        );
    }

    #[test]
    fn f_measure_perfect_is_one() {
        assert!((f_measure(&perfect(), &LABELS) - 1.0).abs() < 1e-12);
        assert!((f_measure_by_class(&perfect(), &LABELS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_measure_mixed_is_lower() {
        let f = f_measure(&mixed(), &LABELS);
        assert!(
            f < 0.75,
            "mixed clustering must score below perfect, got {f}"
        );
        assert!(f > 0.0);
    }

    #[test]
    fn f_measure_single_cluster() {
        // Everything in one cluster: for each class R=1, P=0.5 -> F=2/3;
        // best-per-cluster = 2/3.
        let clusters = vec![(0..8).collect::<Vec<_>>()];
        let f = f_measure(&clusters, &LABELS);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f_measure_fragmentation_penalized_by_class_variant() {
        // Each class split into singletons: precision 1, recall 1/4 ->
        // F(i,j)=0.4 everywhere.
        let clusters: Vec<Vec<usize>> = (0..8).map(|i| vec![i]).collect();
        let by_class = f_measure_by_class(&clusters, &LABELS);
        assert!((by_class - 0.4).abs() < 1e-12);
    }

    #[test]
    fn purity_values() {
        assert_eq!(purity(&perfect(), &LABELS), 1.0);
        assert_eq!(purity(&mixed(), &LABELS), 0.5);
    }

    #[test]
    fn misclustered_lists_minority_items() {
        let labels = ["a", "a", "b", "b"];
        let clusters = vec![vec![0, 1, 2], vec![3]];
        assert_eq!(misclustered(&clusters, &labels), vec![2]);
    }

    #[test]
    fn misclustered_empty_for_perfect() {
        assert!(misclustered(&perfect(), &LABELS).is_empty());
    }

    #[test]
    fn empty_clustering() {
        let clusters: Vec<Vec<usize>> = vec![];
        assert_eq!(entropy(&clusters, &LABELS, EntropyBase::Two), 0.0);
        assert_eq!(f_measure(&clusters, &LABELS), 0.0);
        assert_eq!(purity(&clusters, &LABELS), 0.0);
    }

    #[test]
    fn empty_clusters_ignored() {
        let mut clusters = perfect();
        clusters.push(vec![]);
        assert_eq!(entropy(&clusters, &LABELS, EntropyBase::Two), 0.0);
        assert!((f_measure(&clusters, &LABELS) - 1.0).abs() < 1e-12);
    }
}
