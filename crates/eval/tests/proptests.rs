//! Property-based tests: metric bounds and extremal behaviour.

use cafc_eval::{entropy, f_measure, f_measure_by_class, misclustered, purity, EntropyBase};
use proptest::prelude::*;

/// Random clustering: labels for n items over c classes, plus a partition
/// into k clusters.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<u8>)> {
    (2usize..30, 1u8..5, 1usize..6).prop_flat_map(|(n, c, k)| {
        let labels = proptest::collection::vec(0u8..c, n);
        let assignment = proptest::collection::vec(0usize..k, n);
        (labels, assignment).prop_map(move |(labels, assignment)| {
            let mut clusters = vec![Vec::new(); k];
            for (item, &cl) in assignment.iter().enumerate() {
                clusters[cl].push(item);
            }
            (clusters, labels)
        })
    })
}

proptest! {
    /// Entropy is non-negative and bounded by log(#classes).
    #[test]
    fn entropy_bounds((clusters, labels) in arb_problem()) {
        let e = entropy(&clusters, &labels, EntropyBase::Two);
        prop_assert!(e >= 0.0);
        let distinct = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        prop_assert!(e <= (distinct.max(1) as f64).log2() + 1e-9);
    }

    /// F-measure and purity are within [0, 1].
    #[test]
    fn f_and_purity_bounds((clusters, labels) in arb_problem()) {
        for v in [
            f_measure(&clusters, &labels),
            f_measure_by_class(&clusters, &labels),
            purity(&clusters, &labels),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric out of range: {v}");
        }
    }

    /// A perfect clustering (one cluster per class) scores entropy 0,
    /// F-measure 1, purity 1, no misclustered items.
    #[test]
    fn perfect_clustering_extremes(labels in proptest::collection::vec(0u8..4, 1..30)) {
        let classes: Vec<u8> = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l
        };
        let clusters: Vec<Vec<usize>> = classes
            .iter()
            .map(|&c| labels.iter().enumerate().filter(|(_, &l)| l == c).map(|(i, _)| i).collect())
            .collect();
        prop_assert!(entropy(&clusters, &labels, EntropyBase::Two) < 1e-12);
        prop_assert!((f_measure(&clusters, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((purity(&clusters, &labels) - 1.0).abs() < 1e-12);
        prop_assert!(misclustered(&clusters, &labels).is_empty());
    }

    /// Purity and misclustered agree: purity = 1 − |misclustered| / N.
    #[test]
    fn purity_consistent_with_misclustered((clusters, labels) in arb_problem()) {
        let n: usize = clusters.iter().map(Vec::len).sum();
        if n == 0 { return Ok(()); }
        let p = purity(&clusters, &labels);
        let mis = misclustered(&clusters, &labels).len();
        prop_assert!((p - (1.0 - mis as f64 / n as f64)).abs() < 1e-9);
    }

    /// Metrics are invariant under cluster reordering.
    #[test]
    fn invariant_under_cluster_permutation((clusters, labels) in arb_problem()) {
        let mut reversed = clusters.clone();
        reversed.reverse();
        prop_assert!((entropy(&clusters, &labels, EntropyBase::Two)
            - entropy(&reversed, &labels, EntropyBase::Two)).abs() < 1e-12);
        prop_assert!((f_measure(&clusters, &labels) - f_measure(&reversed, &labels)).abs() < 1e-12);
        prop_assert!((purity(&clusters, &labels) - purity(&reversed, &labels)).abs() < 1e-12);
    }

    /// Merging two pure same-class clusters never hurts any metric.
    #[test]
    fn merging_pure_clusters_helps(n_a in 1usize..8, n_b in 1usize..8, n_c in 1usize..8) {
        // Items: class 0 of size n_a + n_b (split into two pure clusters),
        // class 1 of size n_c.
        let labels: Vec<u8> = std::iter::repeat_n(0u8, n_a + n_b)
            .chain(std::iter::repeat_n(1u8, n_c))
            .collect();
        let split = vec![
            (0..n_a).collect::<Vec<_>>(),
            (n_a..n_a + n_b).collect(),
            (n_a + n_b..n_a + n_b + n_c).collect(),
        ];
        let merged = vec![
            (0..n_a + n_b).collect::<Vec<_>>(),
            (n_a + n_b..n_a + n_b + n_c).collect(),
        ];
        prop_assert!(f_measure(&merged, &labels) >= f_measure(&split, &labels) - 1e-12);
        prop_assert!(f_measure_by_class(&merged, &labels) >= f_measure_by_class(&split, &labels) - 1e-12);
        prop_assert!(entropy(&merged, &labels, EntropyBase::Two)
            <= entropy(&split, &labels, EntropyBase::Two) + 1e-12);
    }
}
