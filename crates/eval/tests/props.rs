//! `cafc-check` property suite for the evaluation metrics: bounds,
//! invariances and extremal behaviour on generated clusterings. Runs
//! offline on every commit (the proptest twin in `tests/proptests.rs`
//! needs the real `proptest` crate and a populated registry).

use cafc_check::corpus::{clustering, labels};
use cafc_check::gen::{pairs, usizes, Gen};
use cafc_check::{check, require, require_close, CheckConfig};
use cafc_eval::{entropy, f_measure, f_measure_by_class, misclustered, purity, EntropyBase};

/// Random clustering problem: a partition of `n` items (n in 2..=20) into
/// at most 5 clusters, plus labels over at most 4 classes.
fn problem() -> Gen<(Vec<Vec<usize>>, Vec<usize>)> {
    usizes(2, 20).flat_map(|&n| pairs(&clustering(n, 5), &labels(n, 4)))
}

/// Entropy is non-negative, finite, and bounded by log2(#classes).
#[test]
fn entropy_bounds() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        let e = entropy(clusters, labels, EntropyBase::Two);
        require!(e.is_finite() && e >= 0.0, "entropy {e}");
        let distinct = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        require!(
            e <= (distinct.max(1) as f64).log2() + 1e-9,
            "entropy {e} above log2({distinct})"
        );
        Ok(())
    });
}

/// Both F-measure variants and purity stay within [0, 1].
#[test]
fn f_and_purity_bounds() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        for v in [
            f_measure(clusters, labels),
            f_measure_by_class(clusters, labels),
            purity(clusters, labels),
        ] {
            require!((0.0..=1.0 + 1e-12).contains(&v), "metric out of range: {v}");
        }
        Ok(())
    });
}

/// Every metric is invariant under permutation of the cluster list — a
/// clustering is a set of clusters, not a sequence.
#[test]
fn metrics_cluster_order_invariant() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        let mut reversed = clusters.clone();
        reversed.reverse();
        require_close!(
            entropy(clusters, labels, EntropyBase::Two),
            entropy(&reversed, labels, EntropyBase::Two),
            1e-12
        );
        require_close!(
            f_measure(clusters, labels),
            f_measure(&reversed, labels),
            1e-12
        );
        require_close!(
            f_measure_by_class(clusters, labels),
            f_measure_by_class(&reversed, labels),
            1e-12
        );
        require_close!(purity(clusters, labels), purity(&reversed, labels), 1e-12);
        Ok(())
    });
}

/// Every metric is invariant under an injective relabeling of the classes
/// (the class *names* carry no information).
#[test]
fn metrics_relabel_invariant() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        // An injective rename: usize -> String with a distinct prefix.
        let renamed: Vec<String> = labels.iter().map(|l| format!("class-{l}")).collect();
        require_close!(
            entropy(clusters, labels, EntropyBase::Two),
            entropy(clusters, &renamed, EntropyBase::Two),
            1e-12
        );
        require_close!(
            f_measure(clusters, labels),
            f_measure(clusters, &renamed),
            1e-12
        );
        require_close!(purity(clusters, labels), purity(clusters, &renamed), 1e-12);
        Ok(())
    });
}

/// A perfect clustering (one cluster per class, built straight from the
/// labels) scores entropy 0, F-measure 1, purity 1, nothing misclustered.
#[test]
fn perfect_clustering_extremes() {
    let cases = usizes(1, 20).flat_map(|&n| labels(n, 4));
    check!(CheckConfig::new(), cases, |labels: &Vec<usize>| {
        let classes: Vec<usize> = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l
        };
        let clusters: Vec<Vec<usize>> = classes
            .iter()
            .map(|c| {
                labels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| *l == c)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        require_close!(entropy(&clusters, labels, EntropyBase::Two), 0.0, 1e-12);
        require_close!(f_measure(&clusters, labels), 1.0, 1e-12);
        require_close!(f_measure_by_class(&clusters, labels), 1.0, 1e-12);
        require_close!(purity(&clusters, labels), 1.0, 1e-12);
        require!(misclustered(&clusters, labels).is_empty());
        Ok(())
    });
}

/// Purity and `misclustered` agree: purity == (n - |misclustered|) / n for
/// any full partition.
#[test]
fn purity_counts_misclustered_complement() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        let n: usize = clusters.iter().map(Vec::len).sum();
        let wrong = misclustered(clusters, labels).len();
        require_close!(
            purity(clusters, labels),
            (n - wrong) as f64 / n as f64,
            1e-12
        );
        Ok(())
    });
}

/// Entropy bases are proportional: nats = bits · ln 2, digits = bits ·
/// log10 2.
#[test]
fn entropy_bases_proportional() {
    check!(CheckConfig::new(), problem(), |(clusters, labels)| {
        let bits = entropy(clusters, labels, EntropyBase::Two);
        require_close!(
            entropy(clusters, labels, EntropyBase::E),
            bits * 2f64.ln(),
            1e-9
        );
        require_close!(
            entropy(clusters, labels, EntropyBase::Ten),
            bits * 2f64.log10(),
            1e-9
        );
        Ok(())
    });
}
