//! Table-driven edge cases for the evaluation metrics, asserting *exact*
//! expected values (Equations 5–6 computed by hand), cross-checked at the
//! end by a `cafc-check` property run over generated labelings.

use cafc_check::corpus::labels as gen_labels;
use cafc_check::gen::usizes;
use cafc_check::{check, require_close, CheckConfig};
use cafc_eval::{entropy, f_measure, f_measure_by_class, purity, EntropyBase};

struct Case {
    name: &'static str,
    clusters: Vec<Vec<usize>>,
    labels: Vec<&'static str>,
    entropy_bits: f64,
    f: f64,
    purity: f64,
}

fn cases() -> Vec<Case> {
    vec![
        // k = n: every item its own cluster. Each singleton is pure, so
        // entropy 0 and purity 1; per cluster the best F pairs the
        // singleton with its own class: R = 1/2, P = 1 -> F = 2/3.
        Case {
            name: "all-singletons (k = n)",
            clusters: vec![vec![0], vec![1], vec![2], vec![3]],
            labels: vec!["a", "a", "b", "b"],
            entropy_bits: 0.0,
            f: 2.0 / 3.0,
            purity: 1.0,
        },
        // k = 1: one cluster holding a 50/50 class mix = exactly 1 bit.
        // Best F per class: R = 1, P = 1/2 -> F = 2/3. Purity 1/2.
        Case {
            name: "one-cluster partition (k = 1), balanced",
            clusters: vec![vec![0, 1, 2, 3]],
            labels: vec!["a", "a", "b", "b"],
            entropy_bits: 1.0,
            f: 2.0 / 3.0,
            purity: 0.5,
        },
        // k = 1 with a 3:1 skew: E = -(3/4)log2(3/4) - (1/4)log2(1/4);
        // best F: class a with R = 1, P = 3/4 -> F = 6/7.
        Case {
            name: "one-cluster partition (k = 1), skewed 3:1",
            clusters: vec![vec![0, 1, 2, 3]],
            labels: vec!["a", "a", "a", "b"],
            entropy_bits: 2.0 - 0.75 * 3f64.log2(),
            f: 6.0 / 7.0,
            purity: 0.75,
        },
        // The perfect partition: every metric at its extreme.
        Case {
            name: "perfect partition",
            clusters: vec![vec![0, 1], vec![2, 3]],
            labels: vec!["a", "a", "b", "b"],
            entropy_bits: 0.0,
            f: 1.0,
            purity: 1.0,
        },
        // Maximally-confused partition: both clusters 50/50. Every
        // (class, cluster) intersection has n_ij = 1, R = P = 1/2, so the
        // best F anywhere is 1/2 — and the empty intersections that a
        // naive F(i,j) = 2RP/(R+P) would turn into 0/0 contribute exactly
        // 0, not NaN.
        Case {
            name: "maximally confused (empty intersections score 0)",
            clusters: vec![vec![0, 2], vec![1, 3]],
            labels: vec!["a", "a", "b", "b"],
            entropy_bits: 1.0,
            f: 0.5,
            purity: 0.5,
        },
        // A class entirely absent from a cluster: cluster 0 contains no
        // "c" items and cluster 1 contains no "a"/"b" items. All those
        // empty intersections must silently score 0 while the rest make
        // E = (4/6)·1 + (2/6)·0 = 2/3 bit.
        Case {
            name: "disjoint class support across clusters",
            clusters: vec![vec![0, 1, 2, 3], vec![4, 5]],
            labels: vec!["a", "a", "b", "b", "c", "c"],
            entropy_bits: 2.0 / 3.0,
            f: (4.0 / 6.0) * (2.0 / 3.0) + (2.0 / 6.0) * 1.0,
            purity: 4.0 / 6.0,
        },
    ]
}

#[test]
fn table_driven_exact_values() {
    for case in cases() {
        let e = entropy(&case.clusters, &case.labels, EntropyBase::Two);
        assert!(
            (e - case.entropy_bits).abs() < 1e-12,
            "{}: entropy {e} != {}",
            case.name,
            case.entropy_bits
        );
        let f = f_measure(&case.clusters, &case.labels);
        assert!(
            (f - case.f).abs() < 1e-12,
            "{}: F-measure {f} != {}",
            case.name,
            case.f
        );
        let p = purity(&case.clusters, &case.labels);
        assert!(
            (p - case.purity).abs() < 1e-12,
            "{}: purity {p} != {}",
            case.name,
            case.purity
        );
        // Every value must be finite — the empty-intersection cases in the
        // table would surface NaN here if F(i,j) mishandled n_ij = 0.
        assert!(f_measure_by_class(&case.clusters, &case.labels).is_finite());
    }
}

/// Cross-check of the table's two structural rows by a property run: for
/// *any* labeling, all-singletons scores entropy 0 / purity 1, and the
/// one-cluster partition scores the entropy of the label distribution and
/// the F-measure `max_i 2·n_i / (n + n_i)` — both computed here from
/// first principles as an independent oracle.
#[test]
fn k_extremes_match_closed_forms() {
    let cases = usizes(1, 24).flat_map(|&n| gen_labels(n, 4));
    check!(CheckConfig::new(), cases, |labels: &Vec<usize>| {
        let n = labels.len();

        // k = n: singletons.
        let singletons: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        require_close!(entropy(&singletons, labels, EntropyBase::Two), 0.0, 1e-12);
        require_close!(purity(&singletons, labels), 1.0, 1e-12);

        // k = 1: one cluster. Class counts from first principles.
        let one: Vec<Vec<usize>> = vec![(0..n).collect()];
        let mut counts = [0usize; 4];
        for &l in labels {
            counts[l] += 1;
        }
        let expected_entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.log2()
            })
            .sum();
        require_close!(
            entropy(&one, labels, EntropyBase::Two),
            expected_entropy,
            1e-12
        );
        let expected_f = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| 2.0 * c as f64 / (n + c) as f64)
            .fold(0.0f64, f64::max);
        require_close!(f_measure(&one, labels), expected_f, 1e-12);
        Ok(())
    });
}
