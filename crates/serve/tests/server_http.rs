//! End-to-end test of the HTTP daemon over real loopback TCP: bind an
//! ephemeral port, drive it with a hand-rolled client, shut it down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cafc::{FormPageCorpus, ModelOptions, Obs, Partition, SearchConfig, SearchPipeline};
use cafc_serve::{ServeOptions, Server, SharedIndex};

fn build_index() -> cafc::SearchIndex {
    let pages: Vec<String> = (0..8)
        .map(|i| {
            let topic = if i % 2 == 0 {
                "airfare travel flights airline"
            } else {
                "careers employment salary resume"
            };
            format!("<p>{topic} database page{i}</p><form><input name=f{i}></form>")
        })
        .collect();
    let corpus =
        FormPageCorpus::from_html(pages.iter().map(|p| p.as_str()), &ModelOptions::default());
    let partition = Partition::new(
        vec![
            (0..8).filter(|i| i % 2 == 0).collect(),
            (0..8).filter(|i| i % 2 == 1).collect(),
        ],
        8,
    );
    SearchPipeline::builder()
        .config(SearchConfig::new().with_k(5))
        .build()
        .index(&corpus, Some(&partition))
}

/// Issue one request and return `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn server_answers_search_metrics_health_and_shuts_down() {
    let obs = Obs::enabled();
    let server = Server::bind(
        "127.0.0.1:0",
        build_index(),
        obs.clone(),
        ServeOptions::new().with_workers(2).with_backlog(8),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    let (status, body) = get(addr, "/search?q=airfare+travel&k=3");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.starts_with("{\"query\":\"airfare travel\",\"k\":3,\"hits\":["));
    assert!(body.contains("\"doc\":"), "no hits in {body}");
    assert!(body.contains("\"postings_scanned\""), "no stats in {body}");

    // Identical requests produce byte-identical responses.
    let again = get(addr, "/search?q=airfare+travel&k=3");
    assert_eq!(again, (200, body));

    let (status, body) = get(addr, "/search?q=zzzznothing");
    assert_eq!(status, 200);
    assert!(body.contains("\"hits\":[]"), "expected empty hits: {body}");

    let (status, body) = get(addr, "/search?k=3");
    assert_eq!(status, 400);
    assert!(body.contains("missing required parameter q"));

    let (status, body) = get(addr, "/search?q=a&k=zero");
    assert_eq!(status, 400);
    assert!(body.contains("positive integer"));

    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"counters\""), "metrics body: {body}");
    assert!(body.contains("serve.requests"), "metrics body: {body}");

    let (status, body) = get(addr, "/shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("stopping"));
    let accepted = runner.join().expect("server thread");
    assert!(accepted >= 9, "accepted {accepted} connections");

    let snapshot = obs.snapshot().render_text();
    assert!(snapshot.contains("serve.requests"), "snapshot: {snapshot}");
}

/// Send `request` verbatim and return `(status, body)`. With `half_close`,
/// shut down the write side first so the server sees EOF where the request
/// stops — how a truncated request looks on the wire.
fn raw_request(addr: SocketAddr, request: &str, half_close: bool) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream.write_all(request.as_bytes()).expect("send");
    if half_close {
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Bind a server on an ephemeral port, run `exercise` against it, shut down.
fn with_server(exercise: impl FnOnce(SocketAddr)) {
    let server = Server::bind(
        "127.0.0.1:0",
        build_index(),
        Obs::disabled(),
        ServeOptions::new().with_workers(2),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    exercise(addr);
    handle.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn plus_in_path_stays_literal() {
    // Regression: percent_decode applied `+`-as-space to the path, so
    // `/a+b` resolved as `/a b`. The 404 body echoes the decoded path,
    // making the decoding observable over the wire.
    with_server(|addr| {
        let (status, body) = get(addr, "/a+b");
        assert_eq!(status, 404);
        assert!(body.contains("no such endpoint: /a+b"), "body: {body}");

        let (status, body) = get(addr, "/a%20b");
        assert_eq!(status, 404);
        assert!(body.contains("no such endpoint: /a b"), "body: {body}");

        // Query values still decode `+` as space.
        let (status, body) = get(addr, "/search?q=airfare+travel&k=2");
        assert_eq!(status, 200, "body: {body}");
        assert!(
            body.contains("\"query\":\"airfare travel\""),
            "body: {body}"
        );
    });
}

#[test]
fn bare_cr_inside_a_line_is_rejected() {
    // Regression: read_line stripped `\r` anywhere, so a CR splicing two
    // logical lines into one parsed as a valid request.
    with_server(|addr| {
        let (status, body) =
            raw_request(addr, "GET /healthz HTTP/1.1\rX-Smuggled: y\r\n\r\n", false);
        assert_eq!(status, 400, "body: {body}");
        assert!(body.contains("bare CR"), "body: {body}");
    });
}

#[test]
fn truncated_request_is_rejected() {
    // Regression: EOF mid-line was treated as a complete line, so a
    // request cut off before its blank-line terminator parsed as valid.
    with_server(|addr| {
        let (status, body) = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x", true);
        assert_eq!(status, 400, "body: {body}");
        assert!(body.contains("closed mid-line"), "body: {body}");
    });
}

#[test]
fn exactly_max_headers_is_accepted() {
    // Regression: the header loop counted the terminating blank line
    // against MAX_HEADERS (64), rejecting an exactly-64-header request.
    with_server(|addr| {
        let mut request = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..64 {
            request.push_str(&format!("X-Filler-{i}: v\r\n"));
        }
        request.push_str("\r\n");
        let (status, body) = raw_request(addr, &request, false);
        assert_eq!(status, 200, "body: {body}");

        // One more header is still over the bound.
        let mut request = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..65 {
            request.push_str(&format!("X-Filler-{i}: v\r\n"));
        }
        request.push_str("\r\n");
        let (status, body) = raw_request(addr, &request, false);
        assert_eq!(status, 400, "body: {body}");
        assert!(body.contains("too many headers"), "body: {body}");
    });
}

#[test]
fn method_casing_is_normalized() {
    with_server(|addr| {
        let (status, body) = raw_request(addr, "get /healthz HTTP/1.1\r\n\r\n", false);
        assert_eq!(status, 200, "body: {body}");
        assert_eq!(body, "ok\n");
    });
}

#[test]
fn shared_index_hot_swaps_under_live_traffic() {
    let shared = SharedIndex::new(build_index());
    let server = Server::bind_shared(
        "127.0.0.1:0",
        shared.clone(),
        Obs::disabled(),
        ServeOptions::new().with_workers(2),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    let (status, body) = get(addr, "/search?q=submarine");
    assert_eq!(status, 200);
    assert!(body.contains("\"hits\":[]"), "before swap: {body}");

    // Publish a rebuilt index with a ninth page; no restart, no rebind.
    let mut pages: Vec<String> = (0..8)
        .map(|i| {
            let topic = if i % 2 == 0 {
                "airfare travel flights airline"
            } else {
                "careers employment salary resume"
            };
            format!("<p>{topic} database page{i}</p><form><input name=f{i}></form>")
        })
        .collect();
    pages.push("<p>submarine voyages periscope depth</p><form><input name=f8></form>".into());
    let corpus =
        FormPageCorpus::from_html(pages.iter().map(|p| p.as_str()), &ModelOptions::default());
    let partition = Partition::new(
        vec![
            (0..9).filter(|i| i % 2 == 0).collect(),
            (0..9).filter(|i| i % 2 == 1).collect(),
        ],
        9,
    );
    let rebuilt = SearchPipeline::builder()
        .config(SearchConfig::new().with_k(5))
        .build()
        .index(&corpus, Some(&partition));
    shared.replace(rebuilt);

    let (status, body) = get(addr, "/search?q=submarine");
    assert_eq!(status, 200);
    assert!(body.contains("\"doc\":8"), "after swap: {body}");

    handle.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn handle_shutdown_stops_an_idle_server() {
    let server = Server::bind(
        "127.0.0.1:0",
        build_index(),
        Obs::disabled(),
        ServeOptions::new().with_workers(1),
    )
    .expect("bind");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("run"));
    handle.shutdown();
    runner.join().expect("join");
}
