//! Seeded open-loop load generation over a [`SearchIndex`].
//!
//! Two passes, one seed:
//!
//! 1. **Determinism pass** (untimed, serial): replays the full query
//!    stream through both the configured (routed/budgeted) path and the
//!    brute-force reference, producing recall@10, the routed-vs-full
//!    postings comparison, and FNV-1a digests of the stream and its result
//!    sets. Everything here is a pure function of `(corpus, seed, config)`
//!    — two runs with the same seed produce byte-identical digests, which
//!    the CI smoke job diffs.
//! 2. **Timed pass** (open-loop): arrivals follow a seeded Poisson process
//!    at the configured rate; a worker pool answers queries while the
//!    driver keeps injecting on schedule, so queue delay shows up in the
//!    latency numbers instead of silently throttling the offered load.
//!    Latency is measured from *scheduled* arrival to completion.
//!
//! Queries are sampled from a Zipf-distributed mix over the corpus's own
//! vocabulary (most-frequent terms rank first), so the offered load has
//! the skew real query logs do.

use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cafc::{FormPageCorpus, Obs, SearchIndex};
use cafc_check::rng::Seed;
use cafc_text::{Analyzer, TermDict};

use crate::json;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a 64-bit digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv(u64);

impl Fnv {
    /// The empty digest.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Load-generator configuration.
///
/// Construct with [`LoadgenConfig::new`] plus the chainable `with_*`
/// setters; `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct LoadgenConfig {
    /// Root seed: pins the query stream, term mix and arrival schedule.
    pub seed: u64,
    /// Offered load in queries per second.
    pub rate: f64,
    /// Run length in milliseconds.
    pub duration_ms: u64,
    /// Results requested per query.
    pub k: usize,
    /// Vocabulary size for the Zipf query mix (top-N corpus terms).
    pub vocab: usize,
    /// Worker threads answering queries in the timed pass.
    pub workers: usize,
}

impl Default for LoadgenConfig {
    /// Seed 0, 200 qps for 1 s, top-10, 256-term vocabulary, 4 workers.
    fn default() -> Self {
        LoadgenConfig {
            seed: 0,
            rate: 200.0,
            duration_ms: 1_000,
            k: 10,
            vocab: 256,
            workers: 4,
        }
    }
}

impl LoadgenConfig {
    /// The default configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the offered load (queries per second, must be positive).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Set the run length in milliseconds.
    pub fn with_duration_ms(mut self, duration_ms: u64) -> Self {
        self.duration_ms = duration_ms;
        self
    }

    /// Set the per-query result count.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Set the query-mix vocabulary size.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab.max(1);
        self
    }

    /// Set the timed-pass worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// A Zipf-weighted query mix over the corpus's own vocabulary.
///
/// Terms are ranked by collection frequency (sum of location-weighted
/// term frequencies over all pages, ties broken by term id), truncated to
/// the top `vocab`, and filtered to terms that survive a round trip
/// through the analyzer — a sampled term must map back to itself when the
/// query text is analyzed, or the stream would query terms the index can
/// never match.
#[derive(Debug, Clone)]
pub struct QueryMix {
    terms: Vec<String>,
    /// Cumulative Zipf weights (`1/rank`), parallel to `terms`.
    cumulative: Vec<f64>,
}

impl QueryMix {
    /// Build the mix from a corpus.
    pub fn from_corpus(corpus: &FormPageCorpus, vocab: usize) -> QueryMix {
        QueryMix::build(&corpus.dict, &corpus.pc_tf, vocab)
    }

    /// Build the mix from an already-built [`SearchIndex`] (the index owns
    /// clones of the corpus spaces).
    pub fn from_index(index: &SearchIndex, vocab: usize) -> QueryMix {
        QueryMix::build(index.dict(), index.docs_tf(), vocab)
    }

    fn build(dict: &TermDict, docs: &[cafc_vsm::SparseVector], vocab: usize) -> QueryMix {
        let analyzer = Analyzer::default();
        let mut cf = vec![0.0f64; dict.len()];
        for doc in docs {
            for &(term, tf) in doc.entries() {
                cf[term.index()] += tf;
            }
        }
        let mut ranked: Vec<(usize, f64)> = cf
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, f)| f > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut terms = Vec::with_capacity(vocab.min(ranked.len()));
        for (index, _) in ranked {
            if terms.len() >= vocab.max(1) {
                break;
            }
            let term = dict.term(cafc_text::TermId(index as u32));
            if round_trips(&analyzer, dict, term) {
                terms.push(term.to_string());
            }
        }
        let mut cumulative = Vec::with_capacity(terms.len());
        let mut total = 0.0;
        for rank in 0..terms.len() {
            total += 1.0 / (rank as f64 + 1.0);
            cumulative.push(total);
        }
        QueryMix { terms, cumulative }
    }

    /// Number of distinct terms in the mix.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the corpus yielded no usable query terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// One Zipf draw from the mix.
    fn sample_term(&self, roll: f64) -> &str {
        let total = self.cumulative.last().copied().unwrap_or(0.0);
        let target = roll * total;
        let slot = self
            .cumulative
            .partition_point(|&c| c <= target)
            .min(self.terms.len().saturating_sub(1));
        &self.terms[slot]
    }

    /// The `index`-th query of the stream rooted at `seed`: one to three
    /// Zipf-sampled terms. A pure function of `(seed, index)`.
    pub fn query(&self, seed: Seed, index: u64) -> String {
        let mut rng = seed.stream(index);
        let terms = rng.range_usize(1, 3);
        let mut parts = Vec::with_capacity(terms);
        for _ in 0..terms {
            parts.push(self.sample_term(rng.unit()));
        }
        parts.join(" ")
    }
}

/// Does analyzing `term` yield exactly `term`'s own id back?
fn round_trips(analyzer: &Analyzer, dict: &TermDict, term: &str) -> bool {
    let mut probe = TermDict::new();
    let analyzed = analyzer.analyze(term, &mut probe);
    analyzed.len() == 1 && dict.get(probe.term(analyzed[0])).map(|id| dict.term(id)) == Some(term)
}

/// Everything one loadgen run measured.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct LoadgenReport {
    /// The seed that pinned the run.
    pub seed: u64,
    /// Queries issued.
    pub queries: usize,
    /// Offered load (queries per second).
    pub offered_qps: f64,
    /// Achieved throughput in the timed pass.
    pub achieved_qps: f64,
    /// Median latency (µs), scheduled-arrival to completion.
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
    /// FNV-1a digest of the query stream text.
    pub stream_hash: u64,
    /// FNV-1a digest of every query's result set (docs + score bits).
    pub results_hash: u64,
    /// Mean recall@10 of the configured path against the brute-force
    /// reference.
    pub recall_at_10: f64,
    /// Postings scanned by the configured (routed/budgeted) path over the
    /// whole stream.
    pub routed_postings: usize,
    /// Postings the brute-force reference paid for on the same stream.
    pub full_postings: usize,
    /// Documents in the index.
    pub index_docs: usize,
    /// Postings in the index.
    pub index_postings: usize,
    /// Wall-clock to build the index (ms); measured by the caller.
    pub index_build_ms: f64,
    /// Index construction throughput (pages per second).
    pub pages_per_sec: f64,
}

impl LoadgenReport {
    /// The full report as stable-schema JSON (the `BENCH_<n>.json`
    /// trajectory — future PRs append fields, never rename).
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"loadgen\",\n  \"seed\": {},\n  \"queries\": {},\n  \
             \"offered_qps\": {},\n  \"achieved_qps\": {},\n  \"p50_us\": {},\n  \
             \"p99_us\": {},\n  \"p999_us\": {},\n  \"stream_hash\": \"{:016x}\",\n  \
             \"results_hash\": \"{:016x}\",\n  \"recall_at_10\": {},\n  \
             \"routed_postings\": {},\n  \"full_postings\": {},\n  \"index_docs\": {},\n  \
             \"index_postings\": {},\n  \"index_build_ms\": {},\n  \"pages_per_sec\": {}\n}}\n",
            self.seed,
            self.queries,
            json::number(self.offered_qps),
            json::number(self.achieved_qps),
            json::number(self.p50_us),
            json::number(self.p99_us),
            json::number(self.p999_us),
            self.stream_hash,
            self.results_hash,
            json::number(self.recall_at_10),
            self.routed_postings,
            self.full_postings,
            self.index_docs,
            self.index_postings,
            json::number(self.index_build_ms),
            json::number(self.pages_per_sec),
        )
    }

    /// Only the seed-determined fields, as JSON: two runs with the same
    /// seed against the same corpus must produce byte-identical digests
    /// (the CI smoke job diffs exactly this).
    pub fn render_digest(&self) -> String {
        format!(
            "{{\"seed\": {}, \"queries\": {}, \"stream_hash\": \"{:016x}\", \
             \"results_hash\": \"{:016x}\", \"recall_at_10\": {}, \
             \"routed_postings\": {}, \"full_postings\": {}}}\n",
            self.seed,
            self.queries,
            self.stream_hash,
            self.results_hash,
            json::number(self.recall_at_10),
            self.routed_postings,
            self.full_postings,
        )
    }
}

/// Exact quantile of a sorted sample (nearest-rank); 0 when empty.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the generator against an in-process index.
///
/// `index_build_ms` is how long the caller took to build `index` (the
/// loadgen has no way to observe that itself); pass 0.0 when unknown.
pub fn run(
    index: &SearchIndex,
    config: &LoadgenConfig,
    obs: &Obs,
    index_build_ms: f64,
) -> LoadgenReport {
    let seed = Seed::new(config.seed);
    let mix = QueryMix::from_index(index, config.vocab);
    let schedule = build_schedule(&mix, seed, config);
    let queries: Vec<&str> = schedule.iter().map(|(_, q)| q.as_str()).collect();

    // Pass 1: seed-determined measurements, serial and untimed.
    let mut stream_hash = Fnv::new();
    let mut results_hash = Fnv::new();
    let mut recall_sum = 0.0;
    let mut recall_n = 0usize;
    let mut routed_postings = 0usize;
    let mut full_postings = 0usize;
    for q in &queries {
        stream_hash.write(q.as_bytes());
        stream_hash.write(b"\n");
        let routed = index.search_k(q, config.k);
        let reference = index.reference(q, 10);
        routed_postings += routed.stats.postings_scanned;
        full_postings += reference.stats.postings_scanned;
        results_hash.write_u64(routed.hits.len() as u64);
        for hit in &routed.hits {
            results_hash.write_u64(hit.doc as u64);
            results_hash.write_u64(hit.score.to_bits());
        }
        if !reference.hits.is_empty() {
            let top: Vec<usize> = index.search_k(q, 10).hits.iter().map(|h| h.doc).collect();
            let found = reference
                .hits
                .iter()
                .filter(|h| top.contains(&h.doc))
                .count();
            recall_sum += found as f64 / reference.hits.len() as f64;
            recall_n += 1;
        }
    }

    // Pass 2: the timed open-loop run.
    let latencies = timed_pass(index, &schedule, config, obs);
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let elapsed_s = (config.duration_ms as f64 / 1_000.0).max(1e-9);

    let queries_n = schedule.len();
    LoadgenReport {
        seed: config.seed,
        queries: queries_n,
        offered_qps: config.rate,
        achieved_qps: latencies.len() as f64 / elapsed_s,
        p50_us: quantile(&sorted, 0.50),
        p99_us: quantile(&sorted, 0.99),
        p999_us: quantile(&sorted, 0.999),
        stream_hash: stream_hash.finish(),
        results_hash: results_hash.finish(),
        recall_at_10: if recall_n == 0 {
            1.0
        } else {
            recall_sum / recall_n as f64
        },
        routed_postings,
        full_postings,
        index_docs: index.num_docs(),
        index_postings: index.num_postings(),
        index_build_ms,
        pages_per_sec: if index_build_ms > 0.0 {
            index.num_docs() as f64 / (index_build_ms / 1_000.0)
        } else {
            0.0
        },
    }
}

/// The deterministic arrival schedule: `(offset_since_start, query)`
/// pairs. Inter-arrivals are exponential at `config.rate`, so the stream
/// is an open-loop Poisson process; both the offsets and the query texts
/// are pure functions of the seed.
fn build_schedule(mix: &QueryMix, seed: Seed, config: &LoadgenConfig) -> Vec<(Duration, String)> {
    if mix.is_empty() || config.rate <= 0.0 {
        return Vec::new();
    }
    let mut arrivals = seed.derive(0x4152_5249_5645).rng();
    let horizon = Duration::from_millis(config.duration_ms);
    let mut at = Duration::ZERO;
    let mut schedule = Vec::new();
    let mut index = 0u64;
    loop {
        // Exponential inter-arrival; 1 - unit() is in (0, 1], so ln is
        // finite and non-positive.
        let gap = -(1.0 - arrivals.unit()).ln() / config.rate;
        at += Duration::from_secs_f64(gap);
        if at >= horizon {
            return schedule;
        }
        schedule.push((at, mix.query(seed.derive(0x0051_5545_5259), index)));
        index += 1;
    }
}

/// Inject the schedule in real time against a worker pool; returns each
/// query's latency in microseconds (scheduled arrival → completion).
fn timed_pass(
    index: &SearchIndex,
    schedule: &[(Duration, String)],
    config: &LoadgenConfig,
    obs: &Obs,
) -> Vec<f64> {
    if schedule.is_empty() {
        return Vec::new();
    }
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(schedule.len())));
    thread::scope(|scope| {
        // Unbounded channel: an open-loop driver never blocks on its own
        // workers — overload must surface as queue delay, not back-pressure.
        let (tx, rx) = channel::<(Instant, &str)>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let latencies = Arc::clone(&latencies);
            let obs = obs.clone();
            scope.spawn(move || loop {
                let job = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(poisoned) => poisoned.into_inner().recv(),
                };
                let Ok((scheduled, query)) = job else { break };
                let _ = index.search_k(query, config.k);
                let us = scheduled.elapsed().as_secs_f64() * 1e6;
                obs.observe("loadgen.latency_us", us);
                if let Ok(mut guard) = latencies.lock() {
                    guard.push(us);
                }
            });
        }
        let start = Instant::now();
        for (offset, query) in schedule {
            let due = start + *offset;
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
            // Latency clock starts at the *scheduled* arrival, so driver
            // lag counts against the server, not in its favour.
            if tx.send((due, query.as_str())).is_err() {
                break;
            }
        }
        drop(tx);
    });
    match Arc::try_unwrap(latencies) {
        Ok(mutex) => mutex.into_inner().unwrap_or_default(),
        Err(arc) => arc.lock().map(|v| v.clone()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc::{ModelOptions, Partition, SearchConfig, SearchPipeline};

    fn pages() -> Vec<String> {
        (0..12)
            .map(|i| {
                let topic = if i % 2 == 0 {
                    "airfare travel flights airline vacation"
                } else {
                    "careers employment salary resume hiring"
                };
                format!("<p>{topic} database search page{i}</p><form><input name=q{i}></form>")
            })
            .collect()
    }

    fn index() -> SearchIndex {
        let corpus =
            FormPageCorpus::from_html(pages().iter().map(|p| p.as_str()), &ModelOptions::default());
        let clusters = vec![
            (0..12).filter(|i| i % 2 == 0).collect(),
            (0..12).filter(|i| i % 2 == 1).collect(),
        ];
        let partition = Partition::new(clusters, 12);
        SearchPipeline::builder()
            .config(SearchConfig::new().with_budget(Some(64)))
            .build()
            .index(&corpus, Some(&partition))
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 test vectors from the original Fowler/Noll/Vo page.
        let mut h = Fnv::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn query_stream_is_a_pure_function_of_the_seed() {
        let index = index();
        let mix = QueryMix::from_index(&index, 64);
        assert!(!mix.is_empty());
        let seed = Seed::new(42);
        let a: Vec<String> = (0..50).map(|i| mix.query(seed, i)).collect();
        let b: Vec<String> = (0..50).map(|i| mix.query(seed, i)).collect();
        assert_eq!(a, b);
        let c: Vec<String> = (0..50).map(|i| mix.query(Seed::new(43), i)).collect();
        assert_ne!(a, c, "different seeds should give different streams");
        // Stream purity: query 30 does not depend on queries 0..30.
        assert_eq!(mix.query(seed, 30), a[30].clone());
    }

    #[test]
    fn sampled_terms_hit_the_index() {
        let index = index();
        let mix = QueryMix::from_index(&index, 64);
        let seed = Seed::new(7);
        for i in 0..40 {
            let q = mix.query(seed, i);
            assert!(
                !index.query_terms(&q).is_empty(),
                "query {q:?} matched no corpus terms"
            );
        }
    }

    #[test]
    fn zipf_mix_prefers_frequent_terms() {
        let index = index();
        let mix = QueryMix::from_index(&index, 64);
        let seed = Seed::new(1);
        let mut first = 0usize;
        let n = 400usize;
        let head = mix.terms[0].clone();
        for i in 0..n as u64 {
            if mix.query(seed, i).split(' ').any(|t| t == head) {
                first += 1;
            }
        }
        // The head term carries weight 1/H(n) of every draw; with 1–3
        // terms per query it must show up far more often than 1/len.
        assert!(
            first * mix.len() > n,
            "head term appeared {first}/{n} times over {} terms",
            mix.len()
        );
    }

    #[test]
    fn same_seed_same_report_digest() {
        let index = index();
        let config = LoadgenConfig::new()
            .with_seed(11)
            .with_rate(400.0)
            .with_duration_ms(150)
            .with_workers(2);
        let a = run(&index, &config, &Obs::disabled(), 5.0);
        let b = run(&index, &config, &Obs::disabled(), 7.0);
        assert_eq!(a.render_digest(), b.render_digest());
        assert!(a.queries > 0, "150 ms at 400 qps should issue queries");
        assert!(a.recall_at_10 >= 0.95, "recall {}", a.recall_at_10);
        assert!(
            a.routed_postings <= a.full_postings,
            "routing should not scan more than the full reference"
        );
    }

    #[test]
    fn report_json_is_stable_and_parsable_shape() {
        let index = index();
        let config = LoadgenConfig::new().with_duration_ms(50).with_rate(100.0);
        let report = run(&index, &config, &Obs::disabled(), 2.0);
        let json = report.render_json();
        for key in [
            "\"bench\": \"loadgen\"",
            "\"seed\"",
            "\"queries\"",
            "\"offered_qps\"",
            "\"achieved_qps\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"p999_us\"",
            "\"stream_hash\"",
            "\"results_hash\"",
            "\"recall_at_10\"",
            "\"routed_postings\"",
            "\"full_postings\"",
            "\"index_docs\"",
            "\"index_postings\"",
            "\"index_build_ms\"",
            "\"pages_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn quantiles_are_exact_on_small_samples() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.50), 2.0);
        assert_eq!(quantile(&sorted, 0.99), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[9.0], 0.999), 9.0);
    }
}
