//! Minimal HTTP/1.1 plumbing for the serving layer.
//!
//! Just enough protocol to answer `GET` requests on a loopback socket with
//! zero dependencies: a bounded request-line/header parser, percent
//! decoding for query strings, and a response writer that always sends
//! `Content-Length` and `Connection: close` (one request per connection —
//! the server's concurrency comes from its worker pool, not keep-alive).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Upper bound on any single request line or header line. Longer input is
/// rejected as malformed rather than buffered without bound.
const MAX_LINE: usize = 8 * 1024;

/// Upper bound on header count per request.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, decoded path, and decoded query parameters in
/// arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, normalized to uppercase (`GET`, `POST`, …) so the
    /// server's dispatch does not depend on client casing.
    pub method: String,
    /// Path component of the target, percent-decoded (`/search`).
    pub path: String,
    /// Query parameters as decoded `(key, value)` pairs, in order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The byte stream was not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The socket failed mid-read.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one line terminated by CRLF (or a lenient bare LF), bounded by
/// [`MAX_LINE`].
///
/// A carriage return is only meaningful as part of the CRLF terminator: a
/// bare CR inside the line is rejected rather than silently stripped, and
/// EOF before any terminator means the request was truncated mid-line —
/// also malformed, not an empty-ish line.
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-line")),
            Ok(_) => match byte[0] {
                b'\n' => break,
                b'\r' => {
                    let mut next = [0u8; 1];
                    match reader.read(&mut next) {
                        Ok(1) if next[0] == b'\n' => break,
                        Ok(_) => return Err(HttpError::Malformed("bare CR outside CRLF")),
                        Err(e) => return Err(HttpError::Io(e)),
                    }
                }
                b => {
                    line.push(b);
                    if line.len() > MAX_LINE {
                        return Err(HttpError::Malformed("line too long"));
                    }
                }
            },
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 line"))
}

/// Parse one request from the stream: request line plus headers (headers
/// are consumed and discarded — nothing in the API needs them yet).
pub fn parse_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    if !parts
        .next()
        .is_some_and(|version| version.starts_with("HTTP/"))
    {
        return Err(HttpError::Malformed("missing HTTP version"));
    }
    // The bound counts actual headers: the terminating blank line is not a
    // header, so a request with exactly MAX_HEADERS of them is accepted.
    let mut headers = 0usize;
    loop {
        if read_line(&mut reader)?.is_empty() {
            let (raw_path, raw_query) = match target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (target, ""),
            };
            return Ok(Request {
                method,
                path: percent_decode_path(raw_path),
                query: parse_query(raw_query),
            });
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
    }
}

/// Split a raw query string into decoded `(key, value)` pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// Decode `%XX` escapes and `+`-as-space, the form-urlencoded convention
/// for query keys and values. Invalid escapes pass through literally
/// instead of failing the whole request.
pub fn percent_decode(raw: &str) -> String {
    decode_escapes(raw, true)
}

/// Decode `%XX` escapes in a path component. `+`-as-space is a query-string
/// convention only: in a path, `+` is a literal plus sign, so `/a+b` and
/// `/a%20b` name different resources.
pub fn percent_decode_path(raw: &str) -> String {
    decode_escapes(raw, false)
}

fn decode_escapes(raw: &str, plus_as_space: bool) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(byte: Option<&u8>) -> Option<u8> {
    match byte {
        Some(b @ b'0'..=b'9') => Some(b - b'0'),
        Some(b @ b'a'..=b'f') => Some(b - b'a' + 10),
        Some(b @ b'A'..=b'F') => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Write a complete response and flush. `Connection: close` always — the
/// caller drops the stream afterwards.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_plus_and_garbage() {
        assert_eq!(percent_decode("cheap+flights"), "cheap flights");
        assert_eq!(percent_decode("a%20b%2Fc"), "a b/c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode(""), "");
    }

    #[test]
    fn path_decoding_keeps_plus_literal() {
        assert_eq!(percent_decode_path("/a+b"), "/a+b");
        assert_eq!(percent_decode_path("/a%20b"), "/a b");
        assert_eq!(percent_decode_path("/a%2Bb"), "/a+b");
        assert_eq!(percent_decode_path("/100%"), "/100%");
    }

    #[test]
    fn query_strings_split_into_ordered_pairs() {
        let q = parse_query("q=cheap+flights&k=5&flag");
        assert_eq!(
            q,
            vec![
                ("q".to_string(), "cheap flights".to_string()),
                ("k".to_string(), "5".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn param_returns_first_match() {
        let req = Request {
            method: "GET".into(),
            path: "/search".into(),
            query: parse_query("q=a&q=b"),
        };
        assert_eq!(req.param("q"), Some("a"));
        assert_eq!(req.param("missing"), None);
    }
}
