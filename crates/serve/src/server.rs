//! The `cafc serve` daemon: a std-only HTTP/1.1 endpoint over a
//! [`SearchIndex`].
//!
//! ## Endpoints
//!
//! * `GET /search?q=…&k=…` — answer a query; JSON hits + scan stats.
//! * `GET /metrics` — the cafc-obs snapshot as JSON.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — drain and stop (also accepted as `GET` so the CI
//!   smoke job can use any HTTP client).
//!
//! ## Concurrency model
//!
//! One acceptor thread hands connections to a bounded pool of
//! `std::thread` workers through a `sync_channel`. When the queue is full
//! the acceptor answers `503` inline instead of queueing without bound —
//! under overload the server sheds load, it does not fall over. Every
//! response closes its connection; parallelism comes from the pool, not
//! keep-alive.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

use cafc::{Obs, SearchIndex};

use crate::http::{parse_request, write_response, HttpError, Request};
use crate::json;

/// Worker-pool sizing for the daemon.
///
/// Construct with [`ServeOptions::new`] plus the chainable `with_*`
/// setters; `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Connections the acceptor may queue ahead of the workers before it
    /// starts shedding load with `503`s.
    pub backlog: usize,
}

impl Default for ServeOptions {
    /// Four workers, a backlog of 64.
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            backlog: 64,
        }
    }
}

impl ServeOptions {
    /// The default options (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the accept queue depth (minimum 1).
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog.max(1);
        self
    }
}

/// A hot-swappable handle on the served [`SearchIndex`].
///
/// The daemon's ingest loop publishes a freshly built index with
/// [`SharedIndex::replace`] while HTTP workers keep answering queries:
/// each request grabs the current snapshot (an `Arc` clone under a brief
/// read lock) and serves the whole response from it, so a swap mid-request
/// never mixes two index generations in one answer.
#[derive(Clone)]
pub struct SharedIndex {
    inner: Arc<RwLock<Arc<SearchIndex>>>,
}

impl SharedIndex {
    /// Wrap an index for sharing.
    pub fn new(index: SearchIndex) -> SharedIndex {
        SharedIndex {
            inner: Arc::new(RwLock::new(Arc::new(index))),
        }
    }

    /// The current index snapshot.
    pub fn get(&self) -> Arc<SearchIndex> {
        let guard = match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(&guard)
    }

    /// Atomically publish a new index. In-flight requests finish on the
    /// snapshot they already hold; subsequent requests see the new one.
    pub fn replace(&self, index: SearchIndex) {
        let mut guard = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Arc::new(index);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until a
/// shutdown request arrives.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    index: SharedIndex,
    obs: Obs,
    options: ServeOptions,
    stop: Arc<AtomicBool>,
}

/// A remote control for a running [`Server`]: lets another thread stop it.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop: sets the flag and pokes the acceptor with a
    /// throwaway connection so its blocking `accept` returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The poke may fail if the server is already gone; that is fine.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// fixed index.
    pub fn bind(
        addr: &str,
        index: SearchIndex,
        obs: Obs,
        options: ServeOptions,
    ) -> io::Result<Server> {
        Self::bind_shared(addr, SharedIndex::new(index), obs, options)
    }

    /// Bind over a [`SharedIndex`], so another thread can keep publishing
    /// rebuilt indexes while the server runs — the `cafc daemon` mode.
    pub fn bind_shared(
        addr: &str,
        index: SharedIndex,
        obs: Obs,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            index,
            obs,
            options,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serve until shutdown. Returns the number of connections accepted.
    pub fn run(self) -> io::Result<u64> {
        let (tx, rx) = sync_channel::<TcpStream>(self.options.backlog);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.options.workers);
        for _ in 0..self.options.workers.max(1) {
            let rx = Arc::clone(&rx);
            let index = self.index.clone();
            let obs = self.obs.clone();
            let handle = self.handle();
            workers.push(thread::spawn(move || {
                worker_loop(&rx, &index, &obs, &handle)
            }));
        }

        let mut accepted = 0u64;
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            accepted += 1;
            self.obs.incr("serve.accepted");
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    self.obs.incr("serve.rejected");
                    let _ = write_response(
                        &mut stream,
                        503,
                        "application/json",
                        &json::render_error("overloaded: worker queue full"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(accepted)
    }
}

/// Drain connections from the shared queue until the channel closes.
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    index: &SharedIndex,
    obs: &Obs,
    handle: &ServerHandle,
) {
    loop {
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(mut stream) = conn else { break };
        // One snapshot per request: a swap mid-request cannot mix two
        // index generations in a single response.
        let snapshot = index.get();
        handle_connection(&mut stream, &snapshot, obs, handle);
    }
}

/// Parse and answer a single request.
fn handle_connection(
    stream: &mut TcpStream,
    index: &SearchIndex,
    obs: &Obs,
    handle: &ServerHandle,
) {
    let timer = obs.start_timer();
    let request = match parse_request(stream) {
        Ok(request) => request,
        Err(HttpError::Malformed(why)) => {
            obs.incr("serve.bad_request");
            let _ = write_response(stream, 400, "application/json", &json::render_error(why));
            return;
        }
        Err(HttpError::Io(_)) => {
            // Includes the shutdown poke (connect-then-drop). Nothing to
            // answer.
            return;
        }
    };
    obs.incr("serve.requests");
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_response(stream, 200, "text/plain", "ok\n");
        }
        ("GET", "/search") => answer_search(stream, &request, index, obs),
        ("GET", "/metrics") => {
            let body = obs.snapshot().render_json();
            let _ = write_response(stream, 200, "application/json", &body);
        }
        ("GET" | "POST", "/shutdown") => {
            let _ = write_response(stream, 200, "application/json", "{\"stopping\":true}");
            handle.shutdown();
        }
        (_, "/healthz" | "/search" | "/metrics") => {
            let _ = write_response(
                stream,
                405,
                "application/json",
                &json::render_error("method not allowed"),
            );
        }
        _ => {
            obs.incr("serve.not_found");
            let _ = write_response(
                stream,
                404,
                "application/json",
                &json::render_error(&format!("no such endpoint: {}", request.path)),
            );
        }
    }
    obs.observe_since("serve.request_us", timer);
}

/// `GET /search?q=…&k=…`.
fn answer_search(stream: &mut TcpStream, request: &Request, index: &SearchIndex, obs: &Obs) {
    let Some(query) = request.param("q") else {
        obs.incr("serve.bad_request");
        let _ = write_response(
            stream,
            400,
            "application/json",
            &json::render_error("missing required parameter q"),
        );
        return;
    };
    let k = match request.param("k") {
        None => index.config().k,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k > 0 => k,
            _ => {
                obs.incr("serve.bad_request");
                let _ = write_response(
                    stream,
                    400,
                    "application/json",
                    &json::render_error("parameter k must be a positive integer"),
                );
                return;
            }
        },
    };
    let outcome = index.search_k(query, k);
    let body = json::render_outcome(query, k, &outcome);
    let _ = write_response(stream, 200, "application/json", &body);
}
