//! # cafc-serve — the serving and load-generation layer
//!
//! The clustering pipeline organizes hidden-web sources; this crate puts
//! a query endpoint in front of the result and measures it, with nothing
//! beyond `std`:
//!
//! * [`Server`] — an HTTP/1.1 daemon over a [`cafc::SearchIndex`]
//!   (`GET /search`, `/metrics`, `/healthz`, `/shutdown`), one acceptor
//!   feeding a bounded pool of `std::thread` workers; overload is shed
//!   with `503`s instead of unbounded queueing. Serve a [`SharedIndex`]
//!   via [`Server::bind_shared`] and another thread can hot-swap rebuilt
//!   indexes under live traffic — the `cafc daemon` streaming mode.
//! * [`loadgen`] — a seeded open-loop generator: Zipf query mix drawn
//!   from the corpus's own vocabulary, Poisson arrivals at a configured
//!   rate, exact p50/p99/p999 latency plus cafc-obs histograms, and
//!   FNV-1a digests of the query stream and result sets so two runs with
//!   the same seed are byte-comparable.
//!
//! The split matters: the *server* is wall-clock, thread-schedule
//! territory; the *load report's digest fields* are pure functions of
//! `(corpus, seed, config)` and double as the retrieval-quality gate
//! (recall@10 of routed vs. brute-force search, postings scanned on both
//! sides).

#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod loadgen;
pub mod server;

pub use loadgen::{Fnv, LoadgenConfig, LoadgenReport, QueryMix};
pub use server::{ServeOptions, Server, ServerHandle, SharedIndex};
