//! Hand-rolled JSON emission (this workspace runs with stub `serde`).
//!
//! Only what the serving layer needs: string escaping, a stable float
//! format, and a renderer for search results shared by the HTTP endpoint
//! and the load generator. Key order is fixed by construction, so two
//! renders of the same data are byte-identical — the CI smoke job diffs
//! them directly.

use cafc::SearchOutcome;

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A float rendered so the document stays valid JSON: finite values use
/// Rust's shortest round-trip `Display`, non-finite values become `null`.
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Render one query's outcome as the `/search` response document.
pub fn render_outcome(query: &str, k: usize, outcome: &SearchOutcome) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"query\":\"");
    out.push_str(&escape(query));
    out.push_str(&format!("\",\"k\":{k},\"hits\":["));
    for (i, hit) in outcome.hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"doc\":{},\"score\":{}}}",
            hit.doc,
            number(hit.score)
        ));
    }
    out.push_str(&format!(
        "],\"stats\":{{\"postings_scanned\":{},\"docs_scored\":{},\"clusters_visited\":{}}}}}",
        outcome.stats.postings_scanned, outcome.stats.docs_scored, outcome.stats.clusters_visited
    ));
    out
}

/// Render an error response body.
pub fn render_error(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc::Hit;

    #[test]
    fn escaping_covers_quotes_controls_and_unicode() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_becomes_null() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn outcome_renders_with_fixed_key_order() {
        let outcome = SearchOutcome::new(
            vec![Hit { doc: 2, score: 0.5 }],
            cafc::ScanStats {
                postings_scanned: 7,
                docs_scored: 1,
                clusters_visited: 2,
            },
        );
        let json = render_outcome("cheap \"flights\"", 5, &outcome);
        assert_eq!(
            json,
            "{\"query\":\"cheap \\\"flights\\\"\",\"k\":5,\
             \"hits\":[{\"doc\":2,\"score\":0.5}],\
             \"stats\":{\"postings_scanned\":7,\"docs_scored\":1,\"clusters_visited\":2}}"
        );
    }
}
