//! A small flag parser: `--key value`, `--switch`, and positionals.
//!
//! Deliberately dependency-free: five subcommands with a handful of flags
//! do not justify pulling in a CLI framework (see DESIGN.md's dependency
//! policy). Unknown `--flags` are rejected outright — a typo like
//! `--algoritm hac` must fail loudly instead of silently becoming a
//! boolean switch that drops its value on the floor.

use std::collections::HashMap;
use std::fmt;

/// A numeric-flag validation failure. Every accessor that parses a number
/// routes through this type, so the flag name is always part of the
/// message and tests can match on the failure kind instead of substrings.
#[derive(Debug, Clone, PartialEq)]
pub enum FlagError {
    /// The value did not parse as a number of the expected shape.
    NotANumber {
        /// Flag name, without the leading `--`.
        flag: String,
        /// The offending value, verbatim.
        value: String,
    },
    /// A count flag (budgets, cadences, thread counts) was zero.
    ZeroCount {
        /// Flag name, without the leading `--`.
        flag: String,
    },
    /// A probability flag fell outside `[0, 1]`.
    RateOutOfRange {
        /// Flag name, without the leading `--`.
        flag: String,
        /// The parsed, out-of-range value.
        value: f64,
    },
    /// A magnitude flag (offered load, throughput) was zero, negative or
    /// non-finite.
    NotPositive {
        /// Flag name, without the leading `--`.
        flag: String,
        /// The parsed, non-positive value.
        value: f64,
    },
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::NotANumber { flag, value } => {
                write!(f, "--{flag} expects a number, got {value:?}")
            }
            FlagError::ZeroCount { flag } => {
                write!(f, "--{flag} expects a count of at least 1, got 0")
            }
            FlagError::RateOutOfRange { flag, value } => {
                write!(f, "--{flag} expects a rate in [0, 1], got {value}")
            }
            FlagError::NotPositive { flag, value } => {
                write!(f, "--{flag} expects a positive number, got {value}")
            }
        }
    }
}

impl From<FlagError> for String {
    fn from(e: FlagError) -> String {
        e.to_string()
    }
}

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// Known flag names that take a value.
const VALUE_FLAGS: &[&str] = &[
    "out",
    "input",
    "clusters",
    "k",
    "seed",
    "pages",
    "algorithm",
    "report",
    "min-cardinality",
    "limit",
    "features",
    // crawl
    "corpus-seed",
    "fault-rate",
    "permanent-rate",
    "truncate-rate",
    "redirect-rate",
    "max-retries",
    "breaker-threshold",
    "breaker-cooldown-ms",
    "max-pages",
    "max-depth",
    // torture
    "mutations",
    "mutations-per-page",
    // fuzz
    "budget-iters",
    "budget-ms",
    "corpus",
    "regressions",
    "replay",
    "max-input-len",
    // checkpointing
    "checkpoint-dir",
    "checkpoint-every",
    // crash-test
    "points",
    // execution layer
    "threads",
    // bench
    "sizes",
    "shard-pages",
    "hac-sample",
    "max-corpus-bytes",
    // daemon
    "warmup",
    "refresh-every",
    "repair-every",
    "drift-threshold",
    "chunk-bytes",
    "assignments",
    "interval-ms",
    // serve / loadgen / search
    "port",
    "rate",
    "duration-ms",
    "budget",
    "workers",
    "backlog",
    "vocab",
    "rank",
    "json",
    "digest",
    // observability
    "metrics",
];

/// Known boolean switches (present or absent, no value).
const SWITCH_FLAGS: &[&str] = &[
    "auto-k",
    "sweep",
    "trace",
    "write-seeds",
    "ab",
    "resume",
    "no-routing",
];

impl Args {
    /// Parse a raw argument list (without the program/subcommand names).
    /// Flags not in [`VALUE_FLAGS`] or [`SWITCH_FLAGS`] are an error.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if VALUE_FLAGS.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{name} expects a value"))?;
                    args.flags.insert(name.to_owned(), value);
                } else if SWITCH_FLAGS.contains(&name) {
                    args.switches.push(name.to_owned());
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// String flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// The one numeric parse in the crate: absent flag means `default`,
    /// anything unparseable is a [`FlagError::NotANumber`] carrying the
    /// flag name. All `get_*` numeric accessors route through here.
    fn parse_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, FlagError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| FlagError::NotANumber {
                flag: name.to_owned(),
                value: v.to_owned(),
            }),
        }
    }

    /// [`Args::parse_flag`] plus a zero check: an explicit `0` is a
    /// [`FlagError::ZeroCount`] — a zero budget or cadence runs nothing,
    /// and silently accepting it would mask the typo. (`T::default()` is
    /// zero for every unsigned type this is instantiated with.)
    fn parse_count<T>(&self, name: &str, default: T) -> Result<T, FlagError>
    where
        T: std::str::FromStr + PartialEq + Default,
    {
        let explicit = self.get(name).is_some();
        let count = self.parse_flag(name, default)?;
        if explicit && count == T::default() {
            return Err(FlagError::ZeroCount {
                flag: name.to_owned(),
            });
        }
        Ok(count)
    }

    /// Parsed numeric flag with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        self.parse_flag(name, default).map_err(Into::into)
    }

    /// Parsed u64 flag with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        self.parse_flag(name, default).map_err(Into::into)
    }

    /// Parsed u32 flag with a default.
    pub fn get_u32(&self, name: &str, default: u32) -> Result<u32, String> {
        self.parse_flag(name, default).map_err(Into::into)
    }

    /// Parsed probability flag (f64 in [0, 1]) with a default.
    pub fn get_rate(&self, name: &str, default: f64) -> Result<f64, String> {
        let value = self.parse_flag(name, default)?;
        if !(0.0..=1.0).contains(&value) {
            return Err(FlagError::RateOutOfRange {
                flag: name.to_owned(),
                value,
            }
            .into());
        }
        Ok(value)
    }

    /// Parsed port number (u16) with a default; out-of-range values fail
    /// as [`FlagError::NotANumber`] with the flag name attached.
    pub fn get_u16(&self, name: &str, default: u16) -> Result<u16, String> {
        self.parse_flag(name, default).map_err(Into::into)
    }

    /// Parsed strictly-positive f64 flag (offered load and the like);
    /// zero, negative and non-finite values are a
    /// [`FlagError::NotPositive`] carrying the flag name.
    pub fn get_positive_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        let value: f64 = self.parse_flag(name, default)?;
        if !(value.is_finite() && value > 0.0) {
            return Err(FlagError::NotPositive {
                flag: name.to_owned(),
                value,
            }
            .into());
        }
        Ok(value)
    }

    /// Parsed u64 flag that must be at least 1 (budgets, sizes, cadences).
    pub fn get_count_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        self.parse_count(name, default).map_err(Into::into)
    }

    /// [`Args::get_count_u64`] for `usize`-shaped flags.
    pub fn get_count_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        self.parse_count(name, default).map_err(Into::into)
    }

    /// The `--threads` flag as an execution policy: absent means `Auto`,
    /// `N ≥ 1` means that many worker threads. Zero and non-numeric values
    /// are rejected — "no threads" cannot execute anything, and silently
    /// mapping it to serial would mask the typo.
    pub fn get_threads(&self) -> Result<cafc::ExecPolicy, String> {
        match self.get("threads") {
            None => Ok(cafc::ExecPolicy::Auto),
            Some(_) => {
                let threads = self.parse_count("threads", 1)?;
                Ok(cafc::ExecPolicy::Parallel { threads })
            }
        }
    }

    /// Boolean switch presence.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| (*s).to_owned())).expect("parses")
    }

    #[test]
    fn flags_switches_positionals() {
        let a = parse(&["--k", "8", "--auto-k", "cheap flights", "--seed", "3"]);
        assert_eq!(a.get("k"), Some("8"));
        assert_eq!(a.get_u64("seed", 0).expect("number"), 3);
        assert!(a.has("auto-k"));
        assert!(!a.has("missing"));
        assert_eq!(a.positional(), ["cheap flights"]);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse(&[]);
        assert_eq!(a.get_usize("k", 8).expect("default"), 8);
        assert!(a.require("input").is_err());
        let a = parse(&["--k", "many"]);
        assert!(a.get_usize("k", 8).is_err());
    }

    #[test]
    fn value_flag_without_value_errors() {
        assert!(Args::parse(vec!["--out".to_owned()]).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Args::parse(vec!["--algoritm".to_owned(), "hac".to_owned()])
            .expect_err("typoed flag must not parse");
        assert!(err.contains("--algoritm"), "{err}");
        assert!(Args::parse(vec!["--frobnicate".to_owned()]).is_err());
    }

    #[test]
    fn threads_flag_validates() {
        let a = parse(&[]);
        assert_eq!(a.get_threads().expect("default"), cafc::ExecPolicy::Auto);
        let a = parse(&["--threads", "4"]);
        assert_eq!(
            a.get_threads().expect("count"),
            cafc::ExecPolicy::Parallel { threads: 4 }
        );
        let a = parse(&["--threads", "0"]);
        let err = a.get_threads().expect_err("zero threads cannot execute");
        assert!(err.contains("at least 1"), "{err}");
        let a = parse(&["--threads", "plenty"]);
        let err = a.get_threads().expect_err("non-numeric must not parse");
        assert!(err.contains("expects a number"), "{err}");
    }

    #[test]
    fn count_flags_validate() {
        let a = parse(&[]);
        assert_eq!(a.get_count_u64("budget-iters", 500).expect("default"), 500);
        let a = parse(&["--budget-iters", "200"]);
        assert_eq!(a.get_count_u64("budget-iters", 500).expect("count"), 200);
        let a = parse(&["--budget-iters", "0"]);
        let err = a
            .get_count_u64("budget-iters", 500)
            .expect_err("zero budget runs nothing");
        assert!(err.contains("at least 1"), "{err}");
        let a = parse(&["--budget-ms", "soon"]);
        let err = a
            .get_count_u64("budget-ms", 0)
            .expect_err("non-numeric must not parse");
        assert!(err.contains("expects a number"), "{err}");
        let a = parse(&["--max-input-len", "0"]);
        assert!(a.get_count_usize("max-input-len", 1).is_err());
    }

    #[test]
    fn flag_errors_are_typed_and_carry_the_flag_name() {
        let a = parse(&["--checkpoint-every", "often"]);
        assert_eq!(
            a.parse_count::<u64>("checkpoint-every", 64)
                .expect_err("non-numeric must not parse"),
            FlagError::NotANumber {
                flag: "checkpoint-every".to_owned(),
                value: "often".to_owned(),
            }
        );
        let a = parse(&["--checkpoint-every", "0"]);
        assert_eq!(
            a.parse_count::<u64>("checkpoint-every", 64)
                .expect_err("zero cadence never checkpoints"),
            FlagError::ZeroCount {
                flag: "checkpoint-every".to_owned(),
            }
        );
        // Every variant renders the flag name, so the user always learns
        // which flag to fix.
        for err in [
            FlagError::NotANumber {
                flag: "points".to_owned(),
                value: "x".to_owned(),
            },
            FlagError::ZeroCount {
                flag: "points".to_owned(),
            },
            FlagError::RateOutOfRange {
                flag: "points".to_owned(),
                value: 2.0,
            },
        ] {
            assert!(String::from(err).contains("--points"));
        }
    }

    #[test]
    fn serve_and_loadgen_flags_validate() {
        // --port must fit u16 and carry the flag name on failure.
        let a = parse(&["--port", "8080"]);
        assert_eq!(a.get_u16("port", 7700).expect("port"), 8080);
        let a = parse(&["--port", "70000"]);
        let err = a.get_u16("port", 7700).expect_err("u16 overflow");
        assert!(err.contains("--port"), "{err}");
        // --rate is an offered load: any positive float, not a [0,1]
        // probability.
        let a = parse(&["--rate", "350.5"]);
        assert_eq!(a.get_positive_f64("rate", 200.0).expect("rate"), 350.5);
        for bad in ["0", "-3", "inf", "much"] {
            let a = parse(&["--rate", bad]);
            let err = a
                .get_positive_f64("rate", 200.0)
                .expect_err("non-positive rate");
            assert!(err.contains("--rate"), "{bad}: {err}");
        }
        // --duration-ms and --budget are counts: zero is rejected with the
        // flag name attached.
        let a = parse(&["--duration-ms", "0"]);
        let err = a.get_count_u64("duration-ms", 1000).expect_err("zero run");
        assert!(err.contains("--duration-ms"), "{err}");
        let a = parse(&["--budget", "512"]);
        assert_eq!(a.get_count_usize("budget", 1).expect("budget"), 512);
        let a = parse(&["--budget", "many"]);
        let err = a.get_count_usize("budget", 1).expect_err("non-numeric");
        assert!(err.contains("--budget"), "{err}");
        assert!(parse(&["--no-routing"]).has("no-routing"));
    }

    #[test]
    fn rate_flags_validate_range() {
        let a = parse(&["--fault-rate", "0.25"]);
        assert_eq!(a.get_rate("fault-rate", 0.0).expect("rate"), 0.25);
        assert_eq!(a.get_rate("truncate-rate", 0.1).expect("default"), 0.1);
        let a = parse(&["--fault-rate", "1.5"]);
        assert!(a.get_rate("fault-rate", 0.0).is_err());
        let a = parse(&["--fault-rate", "lots"]);
        assert!(a.get_rate("fault-rate", 0.0).is_err());
    }
}
