//! `cafc` — organize hidden-web databases from the command line.
//!
//! ```text
//! cafc generate --out DIR [--pages N] [--seed S]
//!     Synthesize a deep-web corpus and write it to DIR
//!     (manifest.json + pages/*.html).
//!
//! cafc cluster --input DIR [--k N | --auto-k] [--algorithm cafc-ch|cafc-c|hac|bisect]
//!              [--features fc|pc|both] [--min-cardinality N] [--seed S]
//!              [--threads N] [--out clusters.json] [--report FILE.html]
//!              [--metrics FILE.json] [--trace]
//!     Cluster the corpus in DIR; optionally write assignments and an HTML
//!     directory report.
//!
//! cafc search --input DIR [--k N] [--limit N] [--rank bm25|tfidf|fused]
//!             [--no-routing] [--budget N] QUERY...
//!     Cluster then search: rank clusters and databases against QUERY
//!     through the inverted index (BM25 by default; `--rank tfidf` is the
//!     original cosine ranking, `fused` reciprocal-rank-fuses both).
//!
//! cafc serve --input DIR [--port P] [--workers N] [--backlog N]
//!            [--rank ...] [--no-routing] [--budget N] [--limit N]
//!     Cluster, build the inverted index, and answer queries over HTTP:
//!     GET /search?q=…&k=… (JSON), /metrics (cafc-obs snapshot),
//!     /healthz, /shutdown. --port 0 binds an ephemeral port.
//!
//! cafc daemon [--pages N] [--seed S] [--warmup N] [--k N] [--port P]
//!             [--repair-every N] [--refresh-every N] [--drift-threshold T]
//!             [--chunk-bytes N] [--interval-ms MS] [--assignments FILE]
//!             [--workers N] [--backlog N] [--rank ...] [--threads N]
//!     Streaming mode: synthesize a seeded crawl, warm-start clusters on
//!     the first `--warmup` pages, then stream the rest through the
//!     incremental parser and nearest-centroid assignment while serving
//!     queries — the index hot-swaps every `--refresh-every` kept pages,
//!     so new sources appear in /search without a restart. A repair pass
//!     (mini-batch reassignment + drift check, re-clustering past the
//!     threshold) runs every `--repair-every` arrivals. `--assignments`
//!     writes the per-page log; same seed, byte-identical file.
//!
//! cafc loadgen --input DIR [--seed S] [--rate QPS] [--duration-ms MS]
//!              [--vocab N] [--workers N] [--json FILE] [--digest FILE]
//!              [--rank ...] [--no-routing] [--budget N] [--limit N]
//!     Replay a seeded open-loop Zipf query stream against the index:
//!     QPS and p50/p99/p999 latency, recall@10 of routed vs brute-force
//!     retrieval, postings scanned on both sides, and FNV digests of the
//!     stream and result sets (byte-identical for equal seeds). --json
//!     writes the BENCH_<n>.json schema; --digest writes only the
//!     seed-determined fields.
//!
//! cafc eval --input DIR --clusters clusters.json
//!     Score a clustering against the gold labels in the manifest.
//!
//! cafc crawl [--fault-rate R] [--max-retries N] [--breaker-threshold N]
//!            [--seed S] [--threads N] [--sweep]
//!     Crawl a synthetic corpus under injected fetch faults, cluster the
//!     surviving databases, and report quality degradation versus a
//!     fault-free crawl.
//!
//! cafc torture [--pages N] [--corpus-seed S] [--seed S] [--k N]
//!              [--mutations all|LIST] [--mutations-per-page N] [--threads N]
//!     Mutate a synthetic corpus with seeded adversarial HTML, ingest it
//!     through the hardened pipeline, and report ok/degraded/quarantined
//!     counts plus quality deltas versus the clean corpus.
//!
//! cafc fuzz [--seed S] [--budget-iters N] [--budget-ms MS]
//!           [--corpus DIR] [--regressions DIR] [--max-input-len BYTES]
//!           [--replay DIR] [--write-seeds] [--ab]
//!     Coverage-guided fuzzing of the HTML stack: mutate corpus inputs,
//!     run the differential oracles on each, persist coverage-novel
//!     inputs and minimized failures. `--replay DIR` re-executes a stored
//!     directory; `--ab` compares guided vs unguided coverage.
//!
//! cafc bench [--sizes N,N,...] [--k N] [--seed S] [--threads N]
//!           [--json FILE] [--digest FILE] [--pages N] [--shard-pages N]
//!           [--hac-sample N] [--max-corpus-bytes N]
//!     Time the full pipeline serial vs parallel at several corpus sizes,
//!     verifying the two produce identical partitions. With `--json` or
//!     `--digest`: one seeded sharded-corpus batch run (gen → ingest →
//!     vectorize → sparse k-means → HAC-on-sample) written in the stable
//!     `BENCH_<n>.json` schema; the digest contains only seed-determined
//!     fields and is byte-identical across thread counts and machines.
//!
//! cafc crash-test [--seed S] [--points N] [--threads N]
//!     Sweep every pipeline stage against every injected I/O fault kind:
//!     crash (or silently corrupt) the checkpoint store at each of the
//!     first N mutating operations, resume, and require the result to be
//!     bit-identical to an uninterrupted run.
//! ```
//!
//! `cluster` (with `--algorithm cafc-c` or `hac`) and `crawl` (single
//! run) accept `--checkpoint-dir DIR [--checkpoint-every N] [--resume]`:
//! progress is checkpointed to DIR as the run advances, and `--resume`
//! picks an interrupted run back up from whatever survived, producing
//! bit-identical results to a run that was never interrupted.
//!
//! `--threads N` selects the execution policy for every command that
//! clusters: `N ≥ 1` pins the worker-thread count, absent means
//! auto-detect. Results are bit-identical regardless of the value.
//!
//! `--metrics FILE.json` writes a JSON metrics snapshot of the run
//! (counters, gauges, histograms, span timings) and `--trace` prints the
//! span tree to stderr; both are available on `cluster`, `crawl`,
//! `torture` and `bench`, and neither perturbs the clustering result.

mod args;
mod commands;
mod table;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&parsed),
        "cluster" => commands::cluster(&parsed),
        "search" => commands::search(&parsed),
        "eval" => commands::eval(&parsed),
        "crawl" => commands::crawl(&parsed),
        "torture" => commands::torture(&parsed),
        "fuzz" => commands::fuzz(&parsed),
        "bench" => commands::bench(&parsed),
        "crash-test" => commands::crash_test(&parsed),
        "serve" => commands::serve(&parsed),
        "daemon" => commands::daemon(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "cafc — organize hidden-web databases (CAFC, ICDE 2007)

USAGE:
    cafc generate --out DIR [--pages N] [--seed S]
    cafc cluster  --input DIR [--k N | --auto-k]
                  [--algorithm cafc-ch|cafc-c|hac|bisect]
                  [--features fc|pc|both] [--min-cardinality N] [--seed S]
                  [--threads N] [--out clusters.json] [--report FILE.html]
                  [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                  [--metrics FILE.json] [--trace]
    cafc search   --input DIR [--k N] [--limit N] [--threads N]
                  [--rank bm25|tfidf|fused] [--no-routing] [--budget N]
                  QUERY...
    cafc serve    --input DIR [--port P] [--workers N] [--backlog N]
                  [--rank bm25|tfidf|fused] [--no-routing] [--budget N]
                  [--limit N] [--k N] [--threads N]
    cafc daemon   [--pages N] [--seed S] [--warmup N] [--k N] [--port P]
                  [--repair-every N] [--refresh-every N]
                  [--drift-threshold T] [--chunk-bytes N] [--interval-ms MS]
                  [--assignments FILE] [--workers N] [--backlog N]
                  [--rank bm25|tfidf|fused] [--no-routing] [--budget N]
                  [--limit N] [--threads N]
    cafc loadgen  --input DIR [--seed S] [--rate QPS] [--duration-ms MS]
                  [--vocab N] [--workers N] [--json FILE] [--digest FILE]
                  [--rank bm25|tfidf|fused] [--no-routing] [--budget N]
                  [--limit N] [--k N] [--threads N]
                  [--metrics FILE.json] [--trace]
    cafc eval     --input DIR --clusters clusters.json
    cafc crawl    [--pages N] [--corpus-seed S] [--k N]
                  [--fault-rate R] [--permanent-rate R] [--truncate-rate R]
                  [--redirect-rate R] [--seed S] [--max-retries N]
                  [--breaker-threshold N] [--breaker-cooldown-ms MS]
                  [--max-pages N] [--max-depth N] [--threads N] [--sweep]
                  [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                  [--metrics FILE.json] [--trace]
    cafc torture  [--pages N] [--corpus-seed S] [--seed S] [--k N]
                  [--mutations all|truncate-mid-tag,entity-bomb,...]
                  [--mutations-per-page N] [--threads N]
                  [--metrics FILE.json] [--trace]
    cafc fuzz     [--seed S] [--budget-iters N] [--budget-ms MS]
                  [--corpus DIR] [--regressions DIR] [--max-input-len BYTES]
                  [--replay DIR] [--write-seeds] [--ab]
    cafc bench    [--sizes N,N,...] [--k N] [--seed S] [--threads N]
                  [--json FILE] [--digest FILE] [--pages N]
                  [--shard-pages N] [--hac-sample N] [--max-corpus-bytes N]
                  [--metrics FILE.json] [--trace]
    cafc crash-test [--seed S] [--points N] [--threads N]
                  [--metrics FILE.json] [--trace]

    --threads N pins the worker-thread count (absent: auto-detect).
    Clustering results are bit-identical for every thread count.
    --metrics FILE.json writes a JSON metrics snapshot; --trace prints
    the span tree to stderr. Neither changes the clustering.
    --checkpoint-dir DIR checkpoints progress; --resume continues an
    interrupted run from DIR, bit-identically to an uninterrupted one."
}
