//! Aligned plain-text tables for the CLI run summaries.
//!
//! One shared renderer instead of a per-command forest of `{:>7}` format
//! strings: `crawl --sweep`, `torture`, `bench`, `fuzz --ab` and
//! `crash-test` all print through here, so their summaries line up the
//! same way and a column added to one cannot silently misalign another.

/// Render `rows` under `headers` as an aligned table: the first column
/// left-aligned (it names the row), every other column right-aligned
/// (they hold numbers), each column as wide as its widest cell or header.
/// Every line ends in a newline; short rows leave their missing cells
/// blank.
pub fn render_kv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                line.push_str("  ");
            }
            let pad = width.saturating_sub(cell.chars().count());
            if i == 0 {
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            } else {
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
            }
        }
        while line.ends_with(' ') {
            line.pop();
        }
        line.push('\n');
        line
    };

    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    let mut out = render_row(&header_cells);
    for row in rows {
        out.push_str(&render_row(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_first_column_left_and_the_rest_right() {
        let table = render_kv_table(
            &["outcome", "pages"],
            &[
                vec!["ok".to_owned(), "1234".to_owned()],
                vec!["quarantined".to_owned(), "7".to_owned()],
            ],
        );
        assert_eq!(
            table,
            "outcome      pages\nok            1234\nquarantined      7\n"
        );
    }

    #[test]
    fn widths_grow_to_the_widest_cell_or_header() {
        let table = render_kv_table(
            &["k", "very-long-header"],
            &[vec!["a-much-longer-label".to_owned(), "1".to_owned()]],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        // Right-aligned numeric column: the cell ends where the header ends.
        assert!(lines[0].ends_with("very-long-header"));
        assert!(lines[1].ends_with('1'));
        assert!(lines[1].starts_with("a-much-longer-label"));
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }

    #[test]
    fn short_rows_render_blank_cells_without_trailing_spaces() {
        let table = render_kv_table(&["stage", "fault", "runs"], &[vec!["kmeans".to_owned()]]);
        for line in table.lines() {
            assert!(!line.ends_with(' '), "trailing spaces in {line:?}");
        }
    }
}
