//! Subcommand implementations.

use crate::args::Args;
use cafc::{
    cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, HubClusterOptions,
    KMeansOptions, ModelOptions, Partition,
};
use cafc_cluster::{
    bisecting_kmeans, choose_k, hac_from_singletons, kmeans, random_singleton_seeds,
    BisectOptions, HacOptions, Linkage,
};
use cafc_corpus::{export_web, generate as generate_web, load_web, CorpusConfig, LoadedWeb};
use cafc_explore::{html_report, ClusterIndex};
use cafc_webgraph::PageId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// `cafc generate` — synthesize a corpus to disk.
pub fn generate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let pages = args.get_usize("pages", 454)?;
    let seed = args.get_u64("seed", 3)?;
    let config = CorpusConfig {
        total_form_pages: pages,
        single_attribute_count: (pages / 8).max(1),
        non_searchable_count: (pages / 8).max(1),
        hubs_per_domain: (pages).max(8),
        mixed_hubs: (pages / 4).max(2),
        seed,
        ..CorpusConfig::default()
    };
    let web = generate_web(&config);
    let written = export_web(&web, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {written} pages ({} form pages, {} hubs) to {out}",
        web.form_pages.len(),
        web.hubs.len()
    );
    Ok(())
}

/// Everything the clustering subcommands share: the loaded corpus,
/// vectorized model and ids.
struct Prepared {
    web: LoadedWeb,
    targets: Vec<PageId>,
    corpus: FormPageCorpus,
}

fn prepare(input: &str) -> Result<Prepared, String> {
    let web = load_web(Path::new(input)).map_err(|e| format!("loading {input}: {e}"))?;
    let targets = web.form_page_ids();
    if targets.is_empty() {
        return Err(format!("{input} contains no form pages (manifest kind=\"form\")"));
    }
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    Ok(Prepared { web, targets, corpus })
}

fn feature_config(args: &Args) -> Result<FeatureConfig, String> {
    match args.get("features").unwrap_or("both") {
        "fc" => Ok(FeatureConfig::FcOnly),
        "pc" => Ok(FeatureConfig::PcOnly),
        "both" => Ok(FeatureConfig::combined()),
        other => Err(format!("--features expects fc|pc|both, got {other:?}")),
    }
}

fn run_clustering(prepared: &Prepared, args: &Args) -> Result<Partition, String> {
    let features = feature_config(args)?;
    let space = FormPageSpace::new(&prepared.corpus, features);
    let seed = args.get_u64("seed", 1)?;
    let algorithm = args.get("algorithm").unwrap_or("cafc-ch");

    if args.has("auto-k") {
        // Sweep k with silhouette (CAFC-C inner loop; CAFC-CH would re-pick
        // identical hub seeds for every k below the candidate count).
        let (k, partition, scores) = choose_k(&space, 2..=16, |k| {
            let mut rng = StdRng::seed_from_u64(seed);
            let seeds = random_singleton_seeds(&space, k, &mut rng);
            kmeans(&space, &seeds, &KMeansOptions::default()).partition
        })
        .ok_or("no valid k in 2..=16 for this corpus")?;
        println!("auto-k: chose k = {k} (silhouette sweep: {scores:?})");
        return Ok(partition);
    }

    let k = args.get_usize("k", 8)?;
    if k == 0 || k > prepared.targets.len() {
        return Err(format!("--k {k} out of range for {} pages", prepared.targets.len()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let partition = match algorithm {
        "cafc-ch" => {
            let config = CafcChConfig {
                k,
                hub: HubClusterOptions {
                    min_cardinality: args.get_usize("min-cardinality", 8)?,
                    ..HubClusterOptions::default()
                },
                kmeans: KMeansOptions::default(),
                min_hub_quality: None,
            };
            let out = cafc_ch(&prepared.web.graph, &prepared.targets, &space, &config, &mut rng);
            println!(
                "CAFC-CH: {} hub seeds, {} padded, {} iterations",
                out.hub_seeds, out.padded_seeds, out.outcome.iterations
            );
            out.outcome.partition
        }
        "cafc-c" => {
            let seeds = random_singleton_seeds(&space, k, &mut rng);
            kmeans(&space, &seeds, &KMeansOptions::default()).partition
        }
        "hac" => hac_from_singletons(
            &space,
            &HacOptions { target_clusters: k, linkage: Linkage::Average },
        ),
        "bisect" => bisecting_kmeans(
            &space,
            &BisectOptions { target_clusters: k, ..Default::default() },
            &mut rng,
        ),
        other => return Err(format!("unknown --algorithm {other:?}")),
    };
    Ok(partition)
}

/// Serialize cluster assignments: `{"clusters": [[urls...], ...]}`.
fn clusters_json(prepared: &Prepared, partition: &Partition) -> String {
    let mut cluster_strs = Vec::new();
    for members in partition.clusters() {
        let urls: Vec<String> = members
            .iter()
            .map(|&m| format!("\"{}\"", prepared.web.graph.url(prepared.targets[m])))
            .collect();
        cluster_strs.push(format!("[{}]", urls.join(",")));
    }
    format!("{{\"clusters\": [\n{}\n]}}\n", cluster_strs.join(",\n"))
}

/// `cafc cluster`.
pub fn cluster(args: &Args) -> Result<(), String> {
    let prepared = prepare(args.require("input")?)?;
    let partition = run_clustering(&prepared, args)?;

    let index = ClusterIndex::from_graph(
        &prepared.corpus,
        &partition,
        &prepared.web.graph,
        &prepared.targets,
        6,
    );
    for summary in index.summaries() {
        if summary.entries.is_empty() {
            continue;
        }
        println!("cluster {:>2}: {:>4} pages  {}", summary.cluster, summary.entries.len(), summary.label);
    }

    if let Some(out) = args.get("out") {
        std::fs::write(out, clusters_json(&prepared, &partition))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    if let Some(report) = args.get("report") {
        std::fs::write(report, html_report(&index))
            .map_err(|e| format!("writing {report}: {e}"))?;
        println!("wrote {report}");
    }

    // If the manifest carries gold labels, score for free.
    let labels = prepared.web.form_page_labels();
    if labels.iter().any(|l| l != "unknown") {
        print_quality(partition.clusters(), &labels);
    }
    Ok(())
}

fn print_quality(clusters: &[Vec<usize>], labels: &[String]) {
    println!(
        "gold-standard quality: entropy {:.3}  F {:.3}  NMI {:.3}  ARI {:.3}",
        cafc_eval::entropy(clusters, labels, cafc_eval::EntropyBase::Two),
        cafc_eval::f_measure(clusters, labels),
        cafc_eval::nmi(clusters, labels),
        cafc_eval::adjusted_rand_index(clusters, labels),
    );
}

/// `cafc search`.
pub fn search(args: &Args) -> Result<(), String> {
    let query = args.positional().join(" ");
    if query.trim().is_empty() {
        return Err("search expects a query, e.g. `cafc search --input DIR cheap flights`".into());
    }
    let prepared = prepare(args.require("input")?)?;
    let partition = run_clustering(&prepared, args)?;
    let index = ClusterIndex::from_graph(
        &prepared.corpus,
        &partition,
        &prepared.web.graph,
        &prepared.targets,
        6,
    );

    println!("clusters matching {query:?}:");
    for hit in index.search(&query).into_iter().take(3) {
        let summary = &index.summaries()[hit.cluster];
        println!("  {:.3}  {} ({} databases)", hit.score, summary.label, summary.entries.len());
    }
    let limit = args.get_usize("limit", 5)?;
    println!("databases matching {query:?}:");
    for hit in index.search_pages(&query, limit) {
        let entry = hit.item.and_then(|i| index.entry(i));
        if let Some(entry) = entry {
            println!("  {:.3}  {}  {}", hit.score, entry.title, entry.url);
        }
    }
    Ok(())
}

/// `cafc eval` — score a clusters.json against manifest labels.
pub fn eval(args: &Args) -> Result<(), String> {
    let prepared = prepare(args.require("input")?)?;
    let clusters_path = args.require("clusters")?;
    let json = std::fs::read_to_string(clusters_path)
        .map_err(|e| format!("reading {clusters_path}: {e}"))?;

    // Map URLs back to item indices.
    let url_to_item: std::collections::HashMap<String, usize> = prepared
        .targets
        .iter()
        .enumerate()
        .map(|(i, &p)| (prepared.web.graph.url(p).to_string(), i))
        .collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    // Parse [["url",...],...] with a simple scanner over quoted strings per
    // inner array.
    let inner = json
        .find('[')
        .map(|i| &json[i..])
        .ok_or("clusters file contains no array")?;
    let mut current: Option<Vec<usize>> = None;
    let mut chars = inner.char_indices().peekable();
    while let Some((pos, c)) = chars.next() {
        match c {
            '[' if pos > 0 => current = Some(Vec::new()),
            ']' => {
                if let Some(done) = current.take() {
                    clusters.push(done);
                }
            }
            '"' => {
                let start = pos + 1;
                let mut end = start;
                for (p, q) in chars.by_ref() {
                    if q == '"' {
                        end = p;
                        break;
                    }
                }
                let url = &inner[start..end];
                if let Some(&item) = url_to_item.get(url) {
                    if let Some(cur) = current.as_mut() {
                        cur.push(item);
                    }
                } else {
                    return Err(format!("clusters file references unknown URL {url:?}"));
                }
            }
            _ => {}
        }
    }

    let labels = prepared.web.form_page_labels();
    if labels.iter().all(|l| l == "unknown") {
        return Err("manifest has no gold labels to evaluate against".into());
    }
    print_quality(&clusters, &labels);
    Ok(())
}
