//! Subcommand implementations.

use crate::args::Args;
use crate::table::render_kv_table;
use cafc::{
    cafc_c_obs, cafc_ch_obs, run_bench as cafc_run_bench, BenchConfig, CafcChConfig, ExecPolicy,
    FeatureConfig, FormPageCorpus, FormPageSpace, HubClusterOptions, IngestLimits, IngestReport,
    KMeansOptions, ModelOptions, Obs, Partition, SearchAlgorithm, SearchConfig, SearchIndex,
    SearchPipeline, StreamConfig, StreamCorpus,
};
use cafc_cluster::{
    bisecting_kmeans_obs, choose_k, hac_obs, hac_resumable, kmeans_obs, kmeans_resumable,
    random_singleton_seeds, BisectOptions, HacOptions, Linkage,
};
use cafc_corpus::{
    export_web, generate as generate_web, generate_shard, load_web, mutate_page, page_rng,
    CorpusConfig, LoadedWeb, Mutation, ShardedCorpusConfig, SyntheticWeb,
};
use cafc_crawler::{
    crawl as crawl_bfs, crawl_resilient_obs, crawl_resumable, BreakerConfig, ChaosFetcher,
    CrawlConfig, FaultConfig, ResilientConfig, ResilientCrawlOutcome, RetryPolicy,
};
use cafc_explore::{html_report, ClusterIndex};
use cafc_serve::{loadgen, LoadgenConfig, ServeOptions, Server, SharedIndex};
use cafc_store::{ChaosFs, FaultKind, FaultPlan, StdFs, Store, StoreConfig, StoreError};
use cafc_webgraph::PageId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// Build the observability handle from `--metrics`/`--trace`: enabled (with
/// the production monotonic clock) when either flag is present, otherwise
/// the near-zero-cost disabled handle. The effective worker-thread count is
/// recorded here — at the CLI boundary, never inside the library, so
/// library snapshots stay policy-invariant.
fn build_obs(args: &Args, policy: ExecPolicy) -> Obs {
    if args.get("metrics").is_some() || args.has("trace") {
        let obs = Obs::enabled();
        obs.gauge("exec.threads", policy.threads() as f64);
        obs
    } else {
        Obs::disabled()
    }
}

/// Emit the collected metrics: the `--trace` span tree and metric lines to
/// stderr, and/or the `--metrics PATH` JSON snapshot. No-op when disabled.
fn emit_obs(args: &Args, obs: &Obs) -> Result<(), String> {
    if !obs.is_enabled() {
        return Ok(());
    }
    let snapshot = obs.snapshot();
    if args.has("trace") {
        eprint!("{}", snapshot.render_text());
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, snapshot.render_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The `--checkpoint-dir`/`--resume`/`--checkpoint-every` triple, parsed
/// and validated as one unit: the latter two are meaningless without the
/// first, and saying so beats silently ignoring them.
struct CheckpointOpts {
    dir: PathBuf,
    resume: bool,
    every: u64,
}

fn checkpoint_opts(args: &Args) -> Result<Option<CheckpointOpts>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        if args.has("resume") {
            return Err("--resume requires --checkpoint-dir".into());
        }
        if args.get("checkpoint-every").is_some() {
            return Err("--checkpoint-every requires --checkpoint-dir".into());
        }
        return Ok(None);
    };
    Ok(Some(CheckpointOpts {
        dir: PathBuf::from(dir),
        resume: args.has("resume"),
        every: args.get_count_u64("checkpoint-every", StoreConfig::new().checkpoint_every)?,
    }))
}

fn open_store(opts: &CheckpointOpts, obs: &Obs) -> Result<Store, String> {
    Store::open(
        &opts.dir,
        StoreConfig::new().with_checkpoint_every(opts.every),
        obs.clone(),
    )
    .map_err(|e| format!("opening checkpoint dir {}: {e}", opts.dir.display()))
}

/// Corpus sized from a `--pages` count, as both `generate` and `crawl`
/// build it.
fn corpus_config(pages: usize, seed: u64) -> CorpusConfig {
    CorpusConfig {
        total_form_pages: pages,
        single_attribute_count: (pages / 8).max(1),
        non_searchable_count: (pages / 8).max(1),
        hubs_per_domain: (pages).max(8),
        mixed_hubs: (pages / 4).max(2),
        seed,
        ..CorpusConfig::default()
    }
}

/// `cafc generate` — synthesize a corpus to disk.
pub fn generate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let pages = args.get_usize("pages", 454)?;
    let seed = args.get_u64("seed", 3)?;
    let web = generate_web(&corpus_config(pages, seed));
    let written = export_web(&web, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {written} pages ({} form pages, {} hubs) to {out}",
        web.form_pages.len(),
        web.hubs.len()
    );
    Ok(())
}

/// Everything the clustering subcommands share: the loaded corpus,
/// vectorized model and ids.
struct Prepared {
    web: LoadedWeb,
    targets: Vec<PageId>,
    corpus: FormPageCorpus,
}

fn prepare(input: &str, policy: ExecPolicy, obs: &Obs) -> Result<Prepared, String> {
    let web = load_web(Path::new(input)).map_err(|e| format!("loading {input}: {e}"))?;
    let targets = web.form_page_ids();
    if targets.is_empty() {
        return Err(format!(
            "{input} contains no form pages (manifest kind=\"form\")"
        ));
    }
    let corpus =
        FormPageCorpus::from_graph_obs(&web.graph, &targets, &ModelOptions::default(), policy, obs);
    Ok(Prepared {
        web,
        targets,
        corpus,
    })
}

fn feature_config(args: &Args) -> Result<FeatureConfig, String> {
    match args.get("features").unwrap_or("both") {
        "fc" => Ok(FeatureConfig::FcOnly),
        "pc" => Ok(FeatureConfig::PcOnly),
        "both" => Ok(FeatureConfig::combined()),
        other => Err(format!("--features expects fc|pc|both, got {other:?}")),
    }
}

fn run_clustering(
    prepared: &Prepared,
    args: &Args,
    policy: ExecPolicy,
    obs: &Obs,
) -> Result<Partition, String> {
    let features = feature_config(args)?;
    let space = FormPageSpace::new(&prepared.corpus, features);
    let seed = args.get_u64("seed", 1)?;
    let algorithm = args.get("algorithm").unwrap_or("cafc-ch");
    let ckpt = checkpoint_opts(args)?;
    let _cluster_span = obs.span("cluster");

    if args.has("auto-k") {
        if ckpt.is_some() {
            return Err(
                "--checkpoint-dir does not combine with --auto-k: the silhouette sweep \
                 runs one clustering per candidate k over a single checkpoint stage"
                    .into(),
            );
        }
        // Sweep k with silhouette (CAFC-C inner loop; CAFC-CH would re-pick
        // identical hub seeds for every k below the candidate count).
        let (k, partition, scores) = choose_k(&space, 2..=16, |k| {
            let mut rng = StdRng::seed_from_u64(seed);
            let seeds = random_singleton_seeds(&space, k, &mut rng);
            kmeans_obs(&space, &seeds, &KMeansOptions::default(), policy, obs).partition
        })
        .ok_or("no valid k in 2..=16 for this corpus")?;
        println!("auto-k: chose k = {k} (silhouette sweep: {scores:?})");
        return Ok(partition);
    }

    let k = args.get_usize("k", 8)?;
    if k == 0 || k > prepared.targets.len() {
        return Err(format!(
            "--k {k} out of range for {} pages",
            prepared.targets.len()
        ));
    }
    if let Some(opts) = &ckpt {
        if !matches!(algorithm, "cafc-c" | "hac") {
            return Err(format!(
                "--checkpoint-dir supports --algorithm cafc-c and hac; {algorithm} does \
                 not checkpoint"
            ));
        }
        if opts.resume {
            println!("resuming from checkpoint dir {}", opts.dir.display());
        } else {
            println!("checkpointing to {}", opts.dir.display());
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let partition = match algorithm {
        "cafc-ch" => {
            let config = CafcChConfig::paper_default(k).with_hub(HubClusterOptions {
                min_cardinality: args.get_usize("min-cardinality", 8)?,
                ..HubClusterOptions::default()
            });
            let out = cafc_ch_obs(
                &prepared.web.graph,
                &prepared.targets,
                &space,
                &config,
                &mut rng,
                policy,
                obs,
            );
            println!(
                "CAFC-CH: {} hub seeds, {} padded, {} iterations",
                out.hub_seeds, out.padded_seeds, out.outcome.iterations
            );
            out.outcome.partition
        }
        "cafc-c" => match &ckpt {
            None => {
                cafc_c_obs(&space, k, &KMeansOptions::default(), &mut rng, policy, obs).partition
            }
            Some(opts) => {
                // Exactly `cafc_c_obs` (random singleton seeds, then the
                // paper's k-means) with the iteration loop journaled, so a
                // resumed run is bit-identical to an uncheckpointed one.
                let mut store = open_store(opts, obs)?;
                let seeds = random_singleton_seeds(&space, k, &mut rng);
                kmeans_resumable(
                    &space,
                    &seeds,
                    &KMeansOptions::default(),
                    policy,
                    obs,
                    &mut store,
                    opts.resume,
                )
                .map_err(|e| format!("checkpointed k-means: {e}"))?
                .partition
            }
        },
        "hac" => {
            let hac_opts = HacOptions {
                target_clusters: k,
                linkage: Linkage::Average,
            };
            match &ckpt {
                None => hac_obs(&space, &[], &hac_opts, policy, obs),
                Some(opts) => {
                    let mut store = open_store(opts, obs)?;
                    hac_resumable(&space, &[], &hac_opts, policy, obs, &mut store, opts.resume)
                        .map_err(|e| format!("checkpointed HAC: {e}"))?
                }
            }
        }
        "bisect" => bisecting_kmeans_obs(
            &space,
            &BisectOptions {
                target_clusters: k,
                ..Default::default()
            },
            &mut rng,
            policy,
            obs,
        ),
        other => return Err(format!("unknown --algorithm {other:?}")),
    };
    Ok(partition)
}

/// Serialize cluster assignments: `{"clusters": [[urls...], ...]}`.
fn clusters_json(prepared: &Prepared, partition: &Partition) -> String {
    // Empty clusters are dropped on write (and again on read in `eval`), so
    // cluster positions agree between the two ends of the file.
    let clusters: Vec<serde_json::Value> = partition
        .clusters()
        .iter()
        .filter(|members| !members.is_empty())
        .map(|members| {
            serde_json::Value::Array(
                members
                    .iter()
                    .map(|&m| {
                        serde_json::Value::String(
                            prepared.web.graph.url(prepared.targets[m]).to_string(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let mut root = serde_json::Map::new();
    root.insert("clusters".to_owned(), serde_json::Value::Array(clusters));
    let doc = serde_json::Value::Object(root);
    let mut out = serde_json::to_string_pretty(&doc).unwrap_or_else(|e| {
        eprintln!("warning: could not serialize clusters: {e}");
        "{}".to_owned()
    });
    out.push('\n');
    out
}

/// `cafc cluster`.
pub fn cluster(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);
    let prepared = prepare(args.require("input")?, policy, &obs)?;
    let partition = run_clustering(&prepared, args, policy, &obs)?;

    let index = ClusterIndex::from_graph(
        &prepared.corpus,
        &partition,
        &prepared.web.graph,
        &prepared.targets,
        6,
    );
    for summary in index.summaries() {
        if summary.entries.is_empty() {
            continue;
        }
        println!(
            "cluster {:>2}: {:>4} pages  {}",
            summary.cluster,
            summary.entries.len(),
            summary.label
        );
    }

    if let Some(out) = args.get("out") {
        std::fs::write(out, clusters_json(&prepared, &partition))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    if let Some(report) = args.get("report") {
        std::fs::write(report, html_report(&index))
            .map_err(|e| format!("writing {report}: {e}"))?;
        println!("wrote {report}");
    }

    // If the manifest carries gold labels, score for free.
    let labels = prepared.web.form_page_labels();
    if labels.iter().any(|l| l != "unknown") {
        print_quality(partition.clusters(), &labels);
    }
    emit_obs(args, &obs)?;
    Ok(())
}

fn print_quality(clusters: &[Vec<usize>], labels: &[String]) {
    println!(
        "gold-standard quality: entropy {:.3}  F {:.3}  NMI {:.3}  ARI {:.3}",
        cafc_eval::entropy(clusters, labels, cafc_eval::EntropyBase::Two),
        cafc_eval::f_measure(clusters, labels),
        cafc_eval::nmi(clusters, labels),
        cafc_eval::adjusted_rand_index(clusters, labels),
    );
}

/// The `--rank`/`--no-routing`/`--budget`/`--limit` quadruple as a
/// [`SearchConfig`] — shared by `search`, `serve` and `loadgen` so the
/// three commands expose identical retrieval knobs.
fn search_config(args: &Args) -> Result<SearchConfig, String> {
    let algorithm = match args.get("rank").unwrap_or("bm25") {
        "bm25" => SearchAlgorithm::Bm25,
        "tfidf" => SearchAlgorithm::TfIdf,
        "fused" => SearchAlgorithm::Fused,
        other => return Err(format!("--rank expects bm25|tfidf|fused, got {other:?}")),
    };
    let mut config = SearchConfig::new()
        .with_algorithm(algorithm)
        .with_routing(!args.has("no-routing"))
        .with_k(args.get_count_usize("limit", 10)?);
    if args.get("budget").is_some() {
        config = config.with_budget(Some(args.get_count_usize("budget", 1)?));
    }
    Ok(config)
}

/// Cluster the corpus and stand up a query-ready [`SearchIndex`] — the
/// shared front half of `search`, `serve` and `loadgen`. Returns the
/// prepared corpus alongside so callers can resolve doc ids to entries.
fn build_search_index(
    args: &Args,
    policy: ExecPolicy,
    obs: &Obs,
) -> Result<(Prepared, Partition, SearchIndex), String> {
    // Validate retrieval flags before paying for corpus load + clustering.
    let config = search_config(args)?;
    let prepared = prepare(args.require("input")?, policy, obs)?;
    let partition = run_clustering(&prepared, args, policy, obs)?;
    let index = SearchPipeline::builder()
        .config(config)
        .exec(policy)
        .obs(obs.clone())
        .build()
        .index(&prepared.corpus, Some(&partition));
    Ok((prepared, partition, index))
}

/// `cafc search` — now a thin wrapper over [`cafc::SearchPipeline`]: the
/// cluster-level matches still come from the explorer's directory view,
/// but page ranking goes through the inverted index (BM25 by default;
/// `--rank tfidf` reproduces the original cosine ranking).
pub fn search(args: &Args) -> Result<(), String> {
    let query = args.positional().join(" ");
    if query.trim().is_empty() {
        return Err("search expects a query, e.g. `cafc search --input DIR cheap flights`".into());
    }
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);
    let (prepared, partition, search_index) = build_search_index(args, policy, &obs)?;
    let index = ClusterIndex::from_graph(
        &prepared.corpus,
        &partition,
        &prepared.web.graph,
        &prepared.targets,
        6,
    );

    println!("clusters matching {query:?}:");
    for hit in index.search(&query).into_iter().take(3) {
        let summary = &index.summaries()[hit.cluster];
        println!(
            "  {:.3}  {} ({} databases)",
            hit.score,
            summary.label,
            summary.entries.len()
        );
    }
    let outcome = search_index.search(&query);
    println!(
        "databases matching {query:?} ({} ranking; scanned {} postings in {} of {} clusters):",
        args.get("rank").unwrap_or("bm25"),
        outcome.stats.postings_scanned,
        outcome.stats.clusters_visited,
        search_index.num_clusters(),
    );
    for hit in &outcome.hits {
        if let Some(entry) = index.entry(hit.doc) {
            println!("  {:.3}  {}  {}", hit.score, entry.title, entry.url);
        }
    }
    emit_obs(args, &obs)?;
    Ok(())
}

/// `cafc serve` — cluster, index, and answer queries over HTTP until a
/// `/shutdown` request arrives.
pub fn serve(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    // The daemon always records metrics: /metrics is part of its API.
    let obs = Obs::enabled();
    obs.gauge("exec.threads", policy.threads() as f64);
    let port = args.get_u16("port", 7700)?;
    let options = ServeOptions::new()
        .with_workers(args.get_count_usize("workers", 4)?)
        .with_backlog(args.get_count_usize("backlog", 64)?);
    let (_, _, index) = build_search_index(args, policy, &obs)?;
    let server = Server::bind(&format!("127.0.0.1:{port}"), index, obs, options)
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    println!(
        "serving on http://{}/ — GET /search?q=…&k=…, /metrics, /healthz; /shutdown to stop",
        server.addr()
    );
    let accepted = server.run().map_err(|e| format!("serving: {e}"))?;
    println!("served {accepted} connections");
    Ok(())
}

/// Split `html` into ~`size`-byte pieces on char boundaries — the shape of
/// a page arriving from a socket, which is exactly what the streaming
/// parser absorbs (cuts mid-tag and mid-entity included).
fn chunk_html(html: &str, size: usize) -> Vec<&str> {
    let mut chunks = Vec::new();
    let mut start = 0;
    while start < html.len() {
        let mut end = (start + size).min(html.len());
        while end < html.len() && !html.is_char_boundary(end) {
            end += 1;
        }
        chunks.push(&html[start..end]);
        start = end;
    }
    chunks
}

/// `cafc daemon` — the full streaming loop: synthesize a seeded crawl,
/// warm-start clusters on its first pages, then stream the remainder
/// through incremental parsing and nearest-centroid assignment while
/// answering queries over HTTP from a hot-swapped index. The assignment
/// log is a pure function of `(seed, flags)`: two same-seed runs write
/// byte-identical files.
pub fn daemon(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    // The daemon always records metrics: /metrics is part of its API.
    let obs = Obs::enabled();
    obs.gauge("exec.threads", policy.threads() as f64);
    let retrieval = search_config(args)?;
    let features = feature_config(args)?;
    let port = args.get_u16("port", 7700)?;
    let pages = args.get_usize("pages", 128)?;
    let seed = args.get_u64("seed", 3)?;
    let k = args.get_usize("k", 6)?;
    let warmup = args.get_count_usize("warmup", 32)?;
    let refresh_every = args.get_count_usize("refresh-every", 16)?;
    let repair_every = args.get_count_usize("repair-every", 32)?;
    let drift_threshold = args.get_positive_f64("drift-threshold", 0.25)?;
    let chunk_bytes = args.get_count_usize("chunk-bytes", 256)?;
    let interval_ms = args.get_u64("interval-ms", 0)?;
    let options = ServeOptions::new()
        .with_workers(args.get_count_usize("workers", 4)?)
        .with_backlog(args.get_count_usize("backlog", 64)?);

    // The synthetic crawl: every form page's HTML, in generation order.
    let web = generate_web(&corpus_config(pages, seed));
    let form_pages: Vec<(String, String)> = web
        .form_pages
        .iter()
        .map(|record| {
            (
                web.graph.url(record.page).to_string(),
                web.graph.html(record.page).unwrap_or_default().to_string(),
            )
        })
        .collect();
    let warmup = warmup.min(form_pages.len());
    if k == 0 || k > warmup {
        return Err(format!(
            "--k {k} out of range for a warm-up of {warmup} pages"
        ));
    }

    // Warm start: batch-build and cluster the first pages conventionally,
    // so streaming begins against meaningful centroids.
    let model_opts = ModelOptions::default();
    let corpus = FormPageCorpus::from_html_exec(
        form_pages[..warmup].iter().map(|(_, html)| html.as_str()),
        &model_opts,
        policy,
    );
    let partition = {
        let space = FormPageSpace::new(&corpus, features);
        let mut rng = StdRng::seed_from_u64(seed);
        cafc_c_obs(&space, k, &KMeansOptions::default(), &mut rng, policy, &obs).partition
    };
    let stream_config = StreamConfig::new()
        .with_feature(features)
        .with_opts(model_opts)
        .with_repair_interval(repair_every)
        .with_drift_threshold(drift_threshold)
        .with_policy(policy);
    let mut stream = StreamCorpus::new(corpus, &partition, stream_config, obs.clone());

    let pipeline = SearchPipeline::builder()
        .config(retrieval)
        .exec(policy)
        .obs(obs.clone())
        .build();
    let shared = SharedIndex::new(pipeline.index(stream.corpus(), Some(&stream.partition())));
    let server = Server::bind_shared(
        &format!("127.0.0.1:{port}"),
        shared.clone(),
        obs.clone(),
        options,
    )
    .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    println!(
        "serving on http://{}/ — GET /search?q=…&k=…, /metrics, /healthz; /shutdown to stop",
        server.addr()
    );
    println!(
        "streaming {} pages after a {warmup}-page warm-up (seed {seed})",
        form_pages.len() - warmup
    );
    let runner = std::thread::spawn(move || server.run());

    // Stream the rest of the crawl. The HTTP workers answer from the last
    // published snapshot throughout; every refresh boundary swaps in an
    // index that includes the pages streamed since the previous one.
    let mut log = format!(
        "# cafc daemon seed={seed} pages={pages} warmup={warmup} k={k} \
         repair={repair_every} refresh={refresh_every}\n"
    );
    let mut pending = 0usize;
    let mut refreshes = 0u64;
    for (url, html) in &form_pages[warmup..] {
        let arrival = stream.ingest_chunks(chunk_html(html, chunk_bytes));
        let status = match &arrival.outcome {
            cafc::PageOutcome::Ok => "ok",
            cafc::PageOutcome::Degraded { .. } => "degraded",
            cafc::PageOutcome::Quarantined { .. } => "quarantined",
        };
        let cluster = arrival
            .cluster
            .map_or_else(|| "-".to_string(), |c| c.to_string());
        log.push_str(&format!(
            "{}\t{url}\t{status}\t{cluster}\n",
            stream.streamed()
        ));
        if let (Some(drift), Some(moved)) = (arrival.drift, arrival.moved) {
            log.push_str(&format!(
                "#repair\tdrift={drift:.6}\tmoved={moved}\treclustered={}\n",
                arrival.reclustered
            ));
        }
        if arrival.page.is_some() {
            pending += 1;
        }
        if pending >= refresh_every {
            shared.replace(pipeline.index(stream.corpus(), Some(&stream.partition())));
            obs.incr("stream.index_refreshes");
            refreshes += 1;
            pending = 0;
            log.push_str(&format!("#refresh\tcorpus={}\n", stream.corpus().len()));
        }
        if interval_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    if pending > 0 {
        shared.replace(pipeline.index(stream.corpus(), Some(&stream.partition())));
        obs.incr("stream.index_refreshes");
        refreshes += 1;
        log.push_str(&format!("#refresh\tcorpus={}\n", stream.corpus().len()));
    }
    if let Some(path) = args.get("assignments") {
        std::fs::write(path, &log).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    println!(
        "streamed {} pages ({} kept in {} clusters, {refreshes} index refreshes); \
         serving until /shutdown",
        stream.streamed(),
        stream.corpus().len(),
        stream.partition().num_clusters(),
    );
    let accepted = runner
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("serving: {e}"))?;
    println!("served {accepted} connections");
    Ok(())
}

/// `cafc loadgen` — replay a seeded open-loop query stream against the
/// index and report throughput, tail latency and routed-vs-full quality.
pub fn loadgen(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);
    // Validate every loadgen flag before paying for corpus + clustering.
    let retrieval = search_config(args)?;
    let config = LoadgenConfig::new()
        .with_seed(args.get_u64("seed", 1)?)
        .with_rate(args.get_positive_f64("rate", 200.0)?)
        .with_duration_ms(args.get_count_u64("duration-ms", 1_000)?)
        .with_k(args.get_count_usize("limit", 10)?)
        .with_vocab(args.get_count_usize("vocab", 256)?)
        .with_workers(args.get_count_usize("workers", 4)?);
    let prepared = prepare(args.require("input")?, policy, &obs)?;
    let partition = run_clustering(&prepared, args, policy, &obs)?;
    let build_start = std::time::Instant::now();
    let index = SearchPipeline::builder()
        .config(retrieval)
        .exec(policy)
        .obs(obs.clone())
        .build()
        .index(&prepared.corpus, Some(&partition));
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let report = loadgen::run(&index, &config, &obs, build_ms);

    println!(
        "loadgen: {} queries at {} qps offered ({:.0} achieved) over {} ms",
        report.queries, report.offered_qps, report.achieved_qps, config.duration_ms
    );
    println!(
        "latency: p50 {:.0} µs  p99 {:.0} µs  p999 {:.0} µs",
        report.p50_us, report.p99_us, report.p999_us
    );
    println!(
        "quality: recall@10 {:.4} vs brute force; {} routed postings vs {} full ({:.1}% scanned)",
        report.recall_at_10,
        report.routed_postings,
        report.full_postings,
        if report.full_postings > 0 {
            100.0 * report.routed_postings as f64 / report.full_postings as f64
        } else {
            100.0
        }
    );
    println!(
        "index: {} docs, {} postings, built in {:.1} ms ({:.0} pages/sec)",
        report.index_docs, report.index_postings, report.index_build_ms, report.pages_per_sec
    );
    println!(
        "stream {:016x}  results {:016x}  (seed {})",
        report.stream_hash, report.results_hash, report.seed
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.render_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = args.get("digest") {
        std::fs::write(path, report.render_digest()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    emit_obs(args, &obs)?;
    Ok(())
}

/// `cafc eval` — score a clusters.json against manifest labels.
pub fn eval(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let prepared = prepare(input, args.get_threads()?, &Obs::disabled())?;
    let clusters_path = args.require("clusters")?;
    let json = std::fs::read_to_string(clusters_path)
        .map_err(|e| format!("reading {clusters_path}: {e}"))?;

    let doc: serde_json::Value =
        serde_json::from_str(&json).map_err(|e| format!("parsing {clusters_path}: {e}"))?;
    let cluster_arrays = doc
        .get("clusters")
        .and_then(|c| c.as_array())
        .ok_or_else(|| format!("{clusters_path} has no top-level \"clusters\" array"))?;

    // Map URLs back to item indices.
    let url_to_item: std::collections::HashMap<String, usize> = prepared
        .targets
        .iter()
        .enumerate()
        .map(|(i, &p)| (prepared.web.graph.url(p).to_string(), i))
        .collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut skipped = 0usize;
    for (i, entry) in cluster_arrays.iter().enumerate() {
        let urls = entry
            .as_array()
            .ok_or_else(|| format!("cluster {i} in {clusters_path} is not an array"))?;
        let mut members = Vec::new();
        for url in urls {
            let url = url.as_str().ok_or_else(|| {
                format!("cluster {i} in {clusters_path} contains a non-string entry")
            })?;
            match url_to_item.get(url) {
                Some(&item) => members.push(item),
                None => {
                    // A clusters file from another corpus (or a stale one)
                    // should degrade the score, not abort the evaluation.
                    skipped += 1;
                    eprintln!("warning: skipping unknown URL {url:?} (not a form page in {input})");
                }
            }
        }
        clusters.push(members);
    }
    if skipped > 0 {
        eprintln!("warning: {skipped} URL(s) in {clusters_path} were not in the corpus");
    }

    // Reject malformed clusterings (duplicate or impossible assignments)
    // before any metric silently double-counts them, then normalize away
    // empty clusters exactly as the writer does.
    cafc_eval::validate_clusters(&clusters, prepared.targets.len())
        .map_err(|e| format!("{clusters_path}: invalid clustering: {e}"))?;
    let clusters = cafc_eval::drop_empty_clusters(clusters);

    let labels = prepared.web.form_page_labels();
    if labels.iter().all(|l| l == "unknown") {
        return Err("manifest has no gold labels to evaluate against".into());
    }
    print_quality(&clusters, &labels);
    Ok(())
}

/// Clustering quality of one crawl's survivors.
struct SurvivorQuality {
    entropy: f64,
    f_measure: f64,
    clusters: usize,
}

/// Cluster a crawl's searchable-form survivors with CAFC-CH and score
/// against the corpus's gold domain labels. `None` when too few pages
/// survived to cluster at all.
fn cluster_survivors(
    web: &SyntheticWeb,
    survivors: &[PageId],
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    obs: &Obs,
) -> Option<SurvivorQuality> {
    if survivors.len() < 2 {
        return None;
    }
    let k = k.clamp(1, survivors.len());
    let corpus = FormPageCorpus::from_graph_obs(
        &web.graph,
        survivors,
        &ModelOptions::default(),
        policy,
        obs,
    );
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CafcChConfig::paper_default(k).with_hub(HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch_obs(
        &web.graph, survivors, &space, &config, &mut rng, policy, obs,
    );
    let labels: Vec<&str> = survivors
        .iter()
        .map(|p| {
            web.form_pages
                .iter()
                .find(|r| r.page == *p)
                .map(|r| r.domain.name())
                .unwrap_or("unknown")
        })
        .collect();
    let clusters = result.outcome.partition.clusters();
    Some(SurvivorQuality {
        entropy: cafc_eval::entropy(clusters, &labels, cafc_eval::EntropyBase::Two),
        f_measure: cafc_eval::f_measure(clusters, &labels),
        clusters: clusters.iter().filter(|c| !c.is_empty()).count(),
    })
}

fn run_faulty(
    web: &SyntheticWeb,
    fault: &FaultConfig,
    config: &ResilientConfig,
    obs: &Obs,
) -> ResilientCrawlOutcome {
    let mut fetcher = ChaosFetcher::over_graph(&web.graph, *fault);
    crawl_resilient_obs(&web.graph, &mut fetcher, web.portal, config, obs)
}

/// `cafc crawl` — crawl a synthetic corpus under injected faults, cluster
/// the surviving databases, and report how much quality degraded relative
/// to a fault-free crawl of the same web.
pub fn crawl(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);
    let corpus_seed = args.get_u64("corpus-seed", 99)?;
    let pages = args.get_usize("pages", 0)?;
    let corpus_cfg = if pages == 0 {
        CorpusConfig::small(corpus_seed)
    } else {
        corpus_config(pages, corpus_seed)
    };
    let web = generate_web(&corpus_cfg);

    let fault = FaultConfig {
        transient_rate: args.get_rate("fault-rate", 0.2)?,
        permanent_rate: args.get_rate("permanent-rate", 0.0)?,
        truncate_rate: args.get_rate("truncate-rate", 0.0)?,
        redirect_rate: args.get_rate("redirect-rate", 0.0)?,
        seed: args.get_u64("seed", 7)?,
        ..FaultConfig::default()
    };
    let limits = CrawlConfig {
        max_pages: args.get_usize("max-pages", CrawlConfig::default().max_pages)?,
        max_depth: args.get_usize("max-depth", CrawlConfig::default().max_depth)?,
    };
    let resilient = ResilientConfig {
        crawl: limits,
        retry: RetryPolicy {
            max_retries: args.get_u32("max-retries", RetryPolicy::default().max_retries)?,
            ..RetryPolicy::default()
        },
        breaker: BreakerConfig {
            failure_threshold: args.get_u32(
                "breaker-threshold",
                BreakerConfig::default().failure_threshold,
            )?,
            cooldown_ms: args
                .get_u64("breaker-cooldown-ms", BreakerConfig::default().cooldown_ms)?,
            ..BreakerConfig::default()
        },
        ..ResilientConfig::default()
    };
    let k = args.get_usize("k", 8)?;
    let ckpt = checkpoint_opts(args)?;
    if ckpt.is_some() && args.has("sweep") {
        return Err(
            "--checkpoint-dir does not combine with --sweep: the sweep runs six crawls \
             over a single checkpoint stage"
                .into(),
        );
    }

    // The fault-free crawl of the same web is the baseline everything is
    // measured against.
    let clean = crawl_bfs(&web.graph, web.portal, &limits);
    let baseline = clean.searchable_form_pages.len().max(1);
    println!(
        "corpus: {} form pages over {} hub pages (corpus seed {})",
        web.form_pages.len(),
        web.hubs.len(),
        corpus_seed,
    );
    println!(
        "baseline (no faults): visited {} pages, {} searchable-form pages",
        clean.visited.len(),
        clean.searchable_form_pages.len(),
    );
    // The baseline runs uninstrumented so the metrics describe only the
    // faulty crawl being examined.
    let clean_quality = cluster_survivors(
        &web,
        &clean.searchable_form_pages,
        k,
        fault.seed,
        policy,
        &Obs::disabled(),
    );
    if let Some(q) = &clean_quality {
        println!(
            "baseline quality:     entropy {:.3}  F {:.3}  ({} clusters)",
            q.entropy, q.f_measure, q.clusters
        );
    }

    if args.has("sweep") {
        let mut rows = Vec::new();
        for step in 0..=5u32 {
            let rate = f64::from(step) / 10.0;
            let cfg = FaultConfig {
                transient_rate: rate,
                ..fault
            };
            let outcome = run_faulty(&web, &cfg, &resilient, &obs);
            let survivors = &outcome.pages.searchable_form_pages;
            let quality = cluster_survivors(&web, survivors, k, fault.seed, policy, &obs);
            // Too few survivors to cluster leaves the metrics undefined;
            // say so explicitly rather than printing NaN columns.
            let (entropy, f_measure) = match &quality {
                Some(q) => (format!("{:.3}", q.entropy), format!("{:.3}", q.f_measure)),
                None => {
                    eprintln!(
                        "warning: fault rate {rate:.1}: {} survivor(s) — too few to \
                         cluster, metrics undefined",
                        survivors.len()
                    );
                    ("—".to_owned(), "—".to_owned())
                }
            };
            rows.push(vec![
                format!("{rate:.1}"),
                format!("{:.1}%", 100.0 * survivors.len() as f64 / baseline as f64),
                entropy,
                f_measure,
                outcome.stats.attempts.to_string(),
                outcome.stats.retries.to_string(),
                outcome.stats.abandoned.to_string(),
            ]);
        }
        println!();
        print!(
            "{}",
            render_kv_table(
                &[
                    "fault-rate",
                    "recovered",
                    "entropy",
                    "F-measure",
                    "attempts",
                    "retries",
                    "abandoned",
                ],
                &rows,
            )
        );
        emit_obs(args, &obs)?;
        return Ok(());
    }

    println!();
    let outcome = match &ckpt {
        None => run_faulty(&web, &fault, &resilient, &obs),
        Some(opts) => {
            if opts.resume {
                println!("resuming from checkpoint dir {}", opts.dir.display());
            } else {
                println!("checkpointing to {}", opts.dir.display());
            }
            let mut store = open_store(opts, &obs)?;
            let mut fetcher = ChaosFetcher::over_graph(&web.graph, fault);
            crawl_resumable(
                &web.graph,
                &mut fetcher,
                web.portal,
                &resilient,
                &obs,
                &mut store,
                opts.resume,
            )
            .map_err(|e| format!("checkpointed crawl: {e}"))?
        }
    };
    let survivors = &outcome.pages.searchable_form_pages;
    println!("{}", outcome.stats);
    if !outcome.stats.is_accounted() {
        return Err("crawl accounting identity violated — this is a bug".into());
    }
    println!(
        "faulty crawl (transient {:.0}%): visited {} pages, {} searchable-form pages \
         ({:.1}% of baseline recovered)",
        fault.transient_rate * 100.0,
        outcome.pages.visited.len(),
        survivors.len(),
        100.0 * survivors.len() as f64 / baseline as f64,
    );
    match (
        clean_quality,
        cluster_survivors(&web, survivors, k, fault.seed, policy, &obs),
    ) {
        (Some(clean_q), Some(faulty_q)) => {
            println!(
                "faulty quality:       entropy {:.3}  F {:.3}  ({} clusters)",
                faulty_q.entropy, faulty_q.f_measure, faulty_q.clusters
            );
            println!(
                "degradation:          entropy {:+.3}  F {:+.3}",
                faulty_q.entropy - clean_q.entropy,
                faulty_q.f_measure - clean_q.f_measure,
            );
        }
        (_, None) => println!("too few survivors to cluster — no quality to report"),
        (None, Some(_)) => {}
    }
    emit_obs(args, &obs)?;
    Ok(())
}

/// Cluster an ingested (possibly partial) corpus with seeded k-means and
/// score it against the gold labels of the pages that were kept. `None`
/// when too few pages survived ingestion to cluster.
fn cluster_ingested(
    corpus: &FormPageCorpus,
    report: &IngestReport,
    labels: &[&str],
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    obs: &Obs,
) -> Option<SurvivorQuality> {
    if corpus.len() < 2 {
        return None;
    }
    let kept_labels: Vec<&str> = report
        .kept
        .iter()
        .map(|&i| labels.get(i).copied().unwrap_or("unknown"))
        .collect();
    let k = k.clamp(1, corpus.len());
    let space = FormPageSpace::new(corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(seed);
    let seeds = random_singleton_seeds(&space, k, &mut rng);
    let outcome = kmeans_obs(&space, &seeds, &KMeansOptions::default(), policy, obs);
    let clusters = outcome.partition.clusters();
    Some(SurvivorQuality {
        entropy: cafc_eval::entropy(clusters, &kept_labels, cafc_eval::EntropyBase::Two),
        f_measure: cafc_eval::f_measure(clusters, &kept_labels),
        clusters: clusters.iter().filter(|c| !c.is_empty()).count(),
    })
}

/// `cafc torture` — mutate a synthetic corpus with seeded adversarial HTML
/// and push every page through the hardened ingestion pipeline, reporting
/// per-outcome counts (ok / degraded / quarantined), degradation reasons,
/// and clustering-quality deltas versus the clean corpus. The run must
/// complete without a panic for any mutation mix — that is the contract
/// under test.
pub fn torture(args: &Args) -> Result<(), String> {
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);
    let corpus_seed = args.get_u64("corpus-seed", 99)?;
    let seed = args.get_u64("seed", 7)?;
    let pages = args.get_usize("pages", 0)?;
    let k = args.get_usize("k", 8)?;
    let per_page = args.get_usize("mutations-per-page", 2)?;
    let menu = Mutation::parse_list(args.get("mutations").unwrap_or("all"))?;

    let corpus_cfg = if pages == 0 {
        CorpusConfig::small(corpus_seed)
    } else {
        corpus_config(pages, corpus_seed)
    };
    let web = generate_web(&corpus_cfg);
    let targets = web.form_page_ids();
    let labels: Vec<&str> = web.form_pages.iter().map(|r| r.domain.name()).collect();
    let htmls: Vec<&str> = targets
        .iter()
        .map(|p| web.graph.html(*p).unwrap_or(""))
        .collect();

    let menu_names: Vec<&str> = menu.iter().map(|m| m.label()).collect();
    println!(
        "torture: {} form pages (corpus seed {corpus_seed}), {} mutation(s)/page from \
         [{}], mutation seed {seed}",
        targets.len(),
        per_page,
        menu_names.join(", "),
    );

    let mutated: Vec<String> = htmls
        .iter()
        .enumerate()
        .map(|(i, html)| mutate_page(html, &menu, per_page, &mut page_rng(seed, i)))
        .collect();

    let limits = IngestLimits::default();
    let opts = ModelOptions::default();
    // Only the mutated run is instrumented: the metrics describe the
    // torture ingestion, not the clean baseline it is compared against.
    let (clean_corpus, clean_report) =
        FormPageCorpus::from_html_ingest_exec(htmls.iter().copied(), &opts, &limits, policy);
    let (torture_corpus, report) = FormPageCorpus::from_html_ingest_obs(
        mutated.iter().map(String::as_str),
        &opts,
        &limits,
        policy,
        &obs,
    );

    println!();
    print!(
        "{}",
        render_kv_table(
            &["outcome", "pages"],
            &[
                vec!["ok".to_owned(), report.ok().to_string()],
                vec!["degraded".to_owned(), report.degraded().to_string()],
                vec!["quarantined".to_owned(), report.quarantined().to_string()],
                vec!["total".to_owned(), report.total().to_string()],
            ],
        )
    );
    if !report.is_accounted() {
        return Err("ingest accounting identity violated — this is a bug".into());
    }
    println!("accounting: ok + degraded + quarantined == total");

    let reasons = report.reason_counts();
    if reasons.iter().any(|(_, n)| *n > 0) {
        println!();
        println!("degradation reasons (pages affected):");
        for (reason, n) in reasons {
            if n > 0 {
                println!("  {:<24} {n:>5}", reason.label());
            }
        }
    }

    println!();
    let clean_q = cluster_ingested(
        &clean_corpus,
        &clean_report,
        &labels,
        k,
        seed,
        policy,
        &Obs::disabled(),
    );
    let torture_q = cluster_ingested(&torture_corpus, &report, &labels, k, seed, policy, &obs);
    match (clean_q, torture_q) {
        (Some(c), Some(t)) => {
            println!(
                "clean quality:    entropy {:.3}  F {:.3}  ({} clusters, {} pages)",
                c.entropy,
                c.f_measure,
                c.clusters,
                clean_corpus.len(),
            );
            println!(
                "torture quality:  entropy {:.3}  F {:.3}  ({} clusters, {} survivors)",
                t.entropy,
                t.f_measure,
                t.clusters,
                torture_corpus.len(),
            );
            println!(
                "degradation:      entropy {:+.3}  F {:+.3}",
                t.entropy - c.entropy,
                t.f_measure - c.f_measure,
            );
        }
        (_, None) => println!(
            "too few survivors to cluster ({} kept) — no quality to report",
            torture_corpus.len()
        ),
        (None, Some(_)) => {}
    }
    emit_obs(args, &obs)?;
    Ok(())
}

/// One timed end-to-end run (model construction + CAFC-CH) under `policy`.
fn timed_run(
    web: &SyntheticWeb,
    targets: &[PageId],
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    obs: &Obs,
) -> (std::time::Duration, Partition) {
    let start = std::time::Instant::now();
    let corpus =
        FormPageCorpus::from_graph_obs(&web.graph, targets, &ModelOptions::default(), policy, obs);
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(seed);
    let out = cafc_ch_obs(
        &web.graph,
        targets,
        &space,
        &CafcChConfig::paper_default(k),
        &mut rng,
        policy,
        obs,
    );
    (start.elapsed(), out.outcome.partition)
}

/// The `--json`/`--digest` batch-bench mode: one seeded sharded-corpus →
/// k-means run through `cafc::run_bench`, reported as the `BENCH_<n>.json`
/// stable schema (full report) and/or the seed-determined digest the CI
/// smoke job diffs.
fn bench_batch(args: &Args) -> Result<(), String> {
    let pages = args.get_usize("pages", 1_000)?;
    let shard_pages = args.get_count_usize("shard-pages", 1_024)?;
    let seed = args.get_u64("seed", 0)?;
    let k = args.get_usize("k", 8)?;
    let hac_sample = args.get_usize("hac-sample", 200)?;
    let max_corpus_bytes = args.get_usize("max-corpus-bytes", usize::MAX)?;
    let policy = args.get_threads()?;
    let config = BenchConfig::new()
        .with_pages(pages)
        .with_shard_pages(shard_pages)
        .with_seed(seed)
        .with_k(k)
        .with_hac_sample(hac_sample)
        .with_max_corpus_bytes(max_corpus_bytes)
        .with_threads(policy.threads());
    let corpus_cfg = ShardedCorpusConfig::new()
        .with_total_form_pages(pages)
        .with_shard_pages(shard_pages)
        .with_seed(seed);
    let num_shards = corpus_cfg.num_shards();
    let report = cafc_run_bench(&config, |s| {
        if s >= num_shards {
            None
        } else {
            Some(generate_shard(&corpus_cfg, s))
        }
    });
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.render_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = args.get("digest") {
        std::fs::write(path, report.render_digest()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    println!(
        "batch bench: {} pages, seed {seed}, k {k}, {} thread(s) — {:.1} ms total",
        report.pages, report.threads, report.total_wall_ms
    );
    for s in &report.stages {
        println!(
            "  {:<10} {:>10.1} ms  {:>12.0} pages/s  ({} items)",
            s.name, s.wall_ms, s.pages_per_sec, s.items
        );
    }
    println!(
        "  kept {} / degraded {} / quarantined {}; {} terms; assignment {:016x}",
        report.pages_ok,
        report.pages_degraded,
        report.pages_quarantined,
        report.dict_terms,
        report.assignment_hash
    );
    Ok(())
}

/// `cafc bench` — two modes. With `--json`/`--digest`: one seeded
/// sharded-corpus batch run (gen → ingest → vectorize → sparse k-means →
/// HAC-on-sample) written as the stable `BENCH_<n>.json` schema. Without:
/// serial vs parallel wall-clock for the full pipeline (vectorization +
/// CAFC-CH) at several corpus sizes. The policies must produce
/// byte-identical partitions — the determinism contract of the execution
/// layer — or the benchmark aborts.
pub fn bench(args: &Args) -> Result<(), String> {
    if args.get("json").is_some() || args.get("digest").is_some() {
        return bench_batch(args);
    }
    let seed = args.get_u64("seed", 3)?;
    let k = args.get_usize("k", 8)?;
    let parallel = args.get_threads()?;
    // Only the parallel leg is instrumented: the serial leg is the timing
    // baseline, and metrics like `corpus.vectorize.chunk_us` should
    // describe the policy under examination.
    let obs = build_obs(args, parallel);
    let sizes: Vec<usize> = match args.get("sizes") {
        None => vec![120, 240, 480, 960],
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("--sizes expects comma-separated numbers, got {s:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    if sizes.is_empty() {
        return Err("--sizes expects at least one corpus size".into());
    }

    let threads_label = match parallel {
        ExecPolicy::Parallel { threads } => format!("{threads} thread(s)"),
        _ => format!("auto ({} thread(s))", parallel.threads()),
    };
    println!("bench: serial vs parallel [{threads_label}], k = {k}, seed {seed}");
    let mut rows = Vec::new();
    for &pages in &sizes {
        let web = generate_web(&corpus_config(pages, seed));
        let targets = web.form_page_ids();
        let (serial_t, serial_p) = timed_run(
            &web,
            &targets,
            k,
            seed,
            ExecPolicy::Serial,
            &Obs::disabled(),
        );
        let (parallel_t, parallel_p) = timed_run(&web, &targets, k, seed, parallel, &obs);
        let identical = serial_p == parallel_p;
        rows.push(vec![
            targets.len().to_string(),
            format!("{:.1}", serial_t.as_secs_f64() * 1e3),
            format!("{:.1}", parallel_t.as_secs_f64() * 1e3),
            format!(
                "{:.2}x",
                serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9)
            ),
            (if identical { "yes" } else { "NO" }).to_owned(),
        ]);
        if !identical {
            return Err(format!(
                "policies diverged at {pages} pages — determinism contract violated, this is a bug"
            ));
        }
    }
    println!();
    print!(
        "{}",
        render_kv_table(
            &["pages", "serial_ms", "parallel_ms", "speedup", "identical"],
            &rows,
        )
    );
    emit_obs(args, &obs)?;
    Ok(())
}

/// The number of distinct oracle failures in a replay/report, rendered
/// for humans: one line per failing entry.
fn render_fuzz_failures(failing: &[(String, Vec<cafc_fuzz::OracleFailure>)]) -> String {
    failing
        .iter()
        .flat_map(|(name, failures)| {
            failures
                .iter()
                .map(move |f| format!("  {name}: {} — {}", f.oracle.label(), f.detail))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

pub fn fuzz(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 0xCAFC)?;
    let corpus_dir = args.get("corpus").unwrap_or("fuzz/corpus").to_owned();
    let regressions_dir = args
        .get("regressions")
        .unwrap_or("fuzz/regressions")
        .to_owned();

    // Replay mode: re-execute a stored directory through the oracle
    // battery and stop. An empty or missing directory is an error — a
    // replay that silently checks nothing must not report green.
    if let Some(dir) = args.get("replay") {
        let entries = cafc_fuzz::load_dir(Path::new(dir))
            .map_err(|e| format!("--replay {dir}: cannot read directory: {e}"))?;
        if entries.is_empty() {
            return Err(format!("--replay {dir}: no .html entries to replay"));
        }
        let failing = cafc_fuzz::replay(&entries, seed);
        if failing.is_empty() {
            println!(
                "fuzz replay: {} entries from {dir}: all green",
                entries.len()
            );
            return Ok(());
        }
        return Err(format!(
            "fuzz replay: {} of {} entries failed:\n{}",
            failing.len(),
            entries.len(),
            render_fuzz_failures(&failing),
        ));
    }

    // Seed-writing mode: persist the built-in seed set (pathological table
    // + base page + fixed-seed torture variants) to the corpus directory.
    if args.has("write-seeds") {
        let max_input_len = args.get_count_usize("max-input-len", 64 * 1024)?;
        let seeds = cafc_fuzz::builtin_seeds();
        let count = seeds.len();
        for input in &seeds {
            // Store exactly what the engine would execute under this cap.
            let capped = cafc_fuzz::truncate_to(input, max_input_len);
            cafc_fuzz::write_entry(Path::new(&corpus_dir), &capped)
                .map_err(|e| format!("writing seed to {corpus_dir}: {e}"))?;
        }
        println!("fuzz: wrote {count} built-in seeds to {corpus_dir}");
        return Ok(());
    }

    let budget_iters = args.get_count_u64("budget-iters", 500)?;
    let budget_ms = match args.get("budget-ms") {
        None => None,
        Some(_) => Some(args.get_count_u64("budget-ms", 1)?),
    };
    let max_input_len = args.get_count_usize("max-input-len", 64 * 1024)?;
    let cfg = cafc_fuzz::FuzzConfig::new()
        .with_seed(seed)
        .with_budget_iters(budget_iters)
        .with_budget_ms(budget_ms)
        .with_max_input_len(max_input_len);

    // Stored corpus entries join the built-in seeds; a missing corpus
    // directory just means "first run".
    let extra: Vec<String> = match cafc_fuzz::load_dir(Path::new(&corpus_dir)) {
        Ok(entries) => entries.into_iter().map(|(_, contents)| contents).collect(),
        Err(_) => Vec::new(),
    };

    // A/B mode: the coverage-guidance ablation at the same budget.
    if args.has("ab") {
        let (guided, unguided) = cafc_fuzz::ab_compare(&cfg, extra);
        println!("fuzz A/B: seed {seed}, {budget_iters} iterations");
        let row = |label: &str, r: &cafc_fuzz::FuzzReport| {
            vec![
                label.to_owned(),
                r.unique_edges.to_string(),
                r.corpus_size.to_string(),
                r.added.len().to_string(),
                r.executions.to_string(),
            ]
        };
        print!(
            "{}",
            render_kv_table(
                &["mode", "unique-edges", "corpus", "added", "executions"],
                &[row("guided:", &guided), row("unguided:", &unguided)],
            )
        );
        return Ok(());
    }

    let report = cafc_fuzz::run(&cfg, extra);

    // Persist coverage-novel inputs and minimized failures.
    for input in &report.added {
        cafc_fuzz::write_entry(Path::new(&corpus_dir), input)
            .map_err(|e| format!("writing corpus entry to {corpus_dir}: {e}"))?;
    }
    for failure in &report.failures {
        cafc_fuzz::write_regression(
            Path::new(&regressions_dir),
            &failure.minimized,
            failure.oracle.label(),
            &failure.detail,
            seed,
            failure.iteration.unwrap_or(0),
        )
        .map_err(|e| format!("writing regression to {regressions_dir}: {e}"))?;
    }

    // The deterministic run summary: a pure function of (seed, seeds,
    // budget-iters) when no wall-clock budget is set.
    println!(
        "fuzz: seed {seed} iterations {} executions {} corpus {} added {} \
         unique-edges {} coverage-hash {:016x} failures {}",
        report.iterations,
        report.executions,
        report.corpus_size,
        report.added.len(),
        report.unique_edges,
        report.coverage_hash,
        report.failures.len(),
    );
    if report.failures.is_empty() {
        Ok(())
    } else {
        let failing: Vec<(String, Vec<cafc_fuzz::OracleFailure>)> = report
            .failures
            .iter()
            .map(|f| {
                (
                    cafc_fuzz::entry_name(&f.minimized),
                    vec![cafc_fuzz::OracleFailure {
                        oracle: f.oracle,
                        detail: f.detail.clone(),
                    }],
                )
            })
            .collect();
        Err(format!(
            "fuzz: {} oracle failure(s), minimized witnesses written to {regressions_dir}:\n{}",
            report.failures.len(),
            render_fuzz_failures(&failing),
        ))
    }
}

/// One pipeline stage under `crash-test`: runs the whole stage against
/// the given store (fresh or resuming) and returns a digest of its
/// complete outcome. Digests are `Debug` renderings of every output
/// field, so "equal digests" means bit-identical results.
type StageRun<'a> = Box<dyn Fn(&mut Store, bool) -> Result<String, StoreError> + 'a>;

/// `cafc crash-test` — sweep every pipeline stage (crawl, ingest,
/// k-means, HAC) against every injected I/O fault kind: run each stage
/// with a fault planted at each of the first `--points` mutating store
/// operations, then resume on the real filesystem and require the result
/// to be bit-identical to an uninterrupted baseline. Error faults crash
/// the run mid-flight; silent faults (short writes, bit flips) complete
/// and leave corruption for the resume to detect and discard.
pub fn crash_test(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 7)?;
    let points = args.get_count_u64("points", 6)?;
    let policy = args.get_threads()?;
    let obs = build_obs(args, policy);

    // Small deterministic inputs shared by every stage, all derived from
    // `--seed` so a CI failure is replayable from the printed seed alone.
    let web = generate_web(&CorpusConfig::small(seed));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph_obs(
        &web.graph,
        &targets,
        &ModelOptions::default(),
        policy,
        &Obs::disabled(),
    );
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let k = 6usize.clamp(1, targets.len());
    let seeds = random_singleton_seeds(&space, k, &mut StdRng::seed_from_u64(seed));
    let htmls: Vec<String> = targets
        .iter()
        .map(|p| web.graph.html(*p).unwrap_or("").to_owned())
        .collect();
    let fault_cfg = FaultConfig {
        transient_rate: 0.2,
        permanent_rate: 0.05,
        truncate_rate: 0.05,
        seed,
        ..FaultConfig::default()
    };
    let crawl_cfg = ResilientConfig::default();
    let kmeans_opts = KMeansOptions::default();
    let hac_opts = HacOptions {
        target_clusters: k,
        linkage: Linkage::Average,
    };
    let ingest_opts = ModelOptions::default();
    let limits = IngestLimits::default();

    let stages: Vec<(&str, StageRun)> = vec![
        (
            "crawl",
            Box::new(|store: &mut Store, resume: bool| {
                let mut fetcher = ChaosFetcher::over_graph(&web.graph, fault_cfg);
                crawl_resumable(
                    &web.graph,
                    &mut fetcher,
                    web.portal,
                    &crawl_cfg,
                    &Obs::disabled(),
                    store,
                    resume,
                )
                .map(|o| format!("{o:?}"))
            }),
        ),
        (
            "ingest",
            Box::new(|store: &mut Store, resume: bool| {
                FormPageCorpus::from_html_ingest_resumable(
                    htmls.iter().map(String::as_str),
                    &ingest_opts,
                    &limits,
                    policy,
                    &Obs::disabled(),
                    store,
                    resume,
                )
                .map(|(c, r)| {
                    // TermDict's Debug renders a hash map (unstable order);
                    // digest the id-order iterator and the vectors instead.
                    let dict: Vec<(u32, &str)> =
                        c.dict.iter().map(|(id, term)| (id.0, term)).collect();
                    format!("{dict:?} {:?} {:?} {r:?}", c.pc, c.fc)
                })
            }),
        ),
        (
            "kmeans",
            Box::new(|store: &mut Store, resume: bool| {
                kmeans_resumable(
                    &space,
                    &seeds,
                    &kmeans_opts,
                    policy,
                    &Obs::disabled(),
                    store,
                    resume,
                )
                .map(|o| format!("{:?} {} {}", o.partition, o.iterations, o.converged))
            }),
        ),
        (
            "hac",
            Box::new(|store: &mut Store, resume: bool| {
                hac_resumable(
                    &space,
                    &[],
                    &hac_opts,
                    policy,
                    &Obs::disabled(),
                    store,
                    resume,
                )
                .map(|p| format!("{p:?}"))
            }),
        ),
    ];

    // A deliberately small cadence so even these short runs cross several
    // snapshot boundaries.
    let store_cfg = StoreConfig::new().with_checkpoint_every(3);
    let base = std::env::temp_dir().join(format!("cafc-crash-test-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!("crash-test: seed {seed}, {points} injection point(s) per stage × fault kind");
    let mut rows = Vec::new();
    let mut diverged = 0usize;
    for (name, run) in &stages {
        let dir = base.join(format!("{name}-baseline"));
        let mut store =
            Store::open(&dir, store_cfg, obs.clone()).map_err(|e| format!("{name}: {e}"))?;
        let baseline = run(&mut store, false).map_err(|e| format!("{name} baseline: {e}"))?;
        drop(store);

        for kind in FaultKind::ALL {
            let mut crashed = 0u64;
            let mut completed = 0u64;
            let mut mismatched = 0u64;
            for p in 0..points {
                let dir = base.join(format!("{name}-{}-{p}", kind.label()));
                let _ = std::fs::remove_dir_all(&dir);
                let chaos = ChaosFs::new(StdFs, FaultPlan::AtOp { op: p, kind });
                // The faulted leg: either it completes (silent faults, or
                // the fault landed past the last store op) — then its
                // in-memory result must already match the baseline — or it
                // "crashes" with a typed error mid-run.
                match Store::open_with_vfs(Box::new(chaos), &dir, store_cfg, obs.clone()) {
                    Ok(mut store) => match run(&mut store, false) {
                        Ok(digest) => {
                            completed += 1;
                            if digest != baseline {
                                mismatched += 1;
                            }
                        }
                        Err(_crash) => crashed += 1,
                    },
                    Err(_crash) => crashed += 1,
                }
                // Recovery: reopen whatever survived on the real
                // filesystem and resume. This must always succeed and must
                // reproduce the uninterrupted result bit-identically.
                let mut store = Store::open(&dir, store_cfg, obs.clone())
                    .map_err(|e| format!("{name}/{}: reopen after crash: {e}", kind.label()))?;
                match run(&mut store, true) {
                    Ok(digest) if digest == baseline => {}
                    Ok(_) => mismatched += 1,
                    Err(e) => {
                        return Err(format!(
                            "{name}/{} point {p}: resume failed: {e}",
                            kind.label()
                        ))
                    }
                }
            }
            if mismatched > 0 {
                diverged += 1;
            }
            rows.push(vec![
                (*name).to_owned(),
                kind.label().to_owned(),
                points.to_string(),
                crashed.to_string(),
                completed.to_string(),
                (if mismatched == 0 { "yes" } else { "NO" }).to_owned(),
            ]);
        }
    }
    print!(
        "{}",
        render_kv_table(
            &[
                "stage",
                "fault",
                "points",
                "crashed",
                "completed",
                "identical"
            ],
            &rows,
        )
    );
    let _ = std::fs::remove_dir_all(&base);
    emit_obs(args, &obs)?;
    if diverged > 0 {
        return Err(format!(
            "crash-test: {diverged} stage/fault combination(s) diverged from the \
             uninterrupted baseline (seed {seed})"
        ));
    }
    println!("crash-test: every crash point recovered bit-identically");
    Ok(())
}
