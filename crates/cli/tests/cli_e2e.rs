//! End-to-end tests of the `cafc` binary: generate → cluster → eval →
//! search over a real temp directory, driving the compiled executable.

use std::path::PathBuf;
use std::process::Command;

fn cafc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cafc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafc-cli-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "command failed.\nstdout: {stdout}\nstderr: {stderr}"
    );
    stdout
}

#[test]
fn generate_cluster_eval_search_pipeline() {
    let dir = tmpdir("pipeline");
    let dir_s = dir.to_str().expect("utf8 temp path");

    let out = run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "64", "--seed", "9"]));
    assert!(out.contains("64 form pages"), "{out}");
    assert!(dir.join("manifest.json").exists());
    assert!(dir.join("pages/0.html").exists());

    let clusters = dir.join("clusters.json");
    let report = dir.join("dir.html");
    let out = run_ok(cafc().args([
        "cluster",
        "--input",
        dir_s,
        "--k",
        "8",
        "--out",
        clusters.to_str().expect("utf8"),
        "--report",
        report.to_str().expect("utf8"),
    ]));
    assert!(out.contains("cluster"), "{out}");
    assert!(out.contains("gold-standard quality"), "{out}");
    assert!(clusters.exists());
    let html = std::fs::read_to_string(&report).expect("report written");
    assert!(html.contains("Hidden-Web Database Directory"));

    let out = run_ok(cafc().args([
        "eval",
        "--input",
        dir_s,
        "--clusters",
        clusters.to_str().expect("utf8"),
    ]));
    assert!(out.contains("entropy"), "{out}");
    assert!(out.contains("ARI"), "{out}");

    let out = run_ok(cafc().args(["search", "--input", dir_s, "cheap", "flights"]));
    assert!(out.contains("clusters matching"), "{out}");
    assert!(out.contains("databases matching"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cluster_with_alternative_algorithms() {
    let dir = tmpdir("algos");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "4"]));
    for algorithm in ["cafc-c", "hac", "bisect"] {
        let out = run_ok(cafc().args([
            "cluster",
            "--input",
            dir_s,
            "--k",
            "8",
            "--algorithm",
            algorithm,
        ]));
        assert!(out.contains("gold-standard quality"), "{algorithm}: {out}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_k_flag() {
    let dir = tmpdir("autok");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "6"]));
    let out = run_ok(cafc().args(["cluster", "--input", dir_s, "--auto-k"]));
    assert!(out.contains("auto-k: chose k ="), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors() {
    let out = cafc().args(["cluster"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    let out = cafc().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cafc().output().expect("binary runs");
    assert!(!out.status.success());

    let out = cafc().args(["help"]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn torture_reports_accounted_outcomes() {
    let out = run_ok(cafc().args(["torture", "--seed", "7", "--mutations", "all"]));
    assert!(out.contains("ok "), "{out}");
    assert!(out.contains("degraded "), "{out}");
    assert!(out.contains("quarantined "), "{out}");
    assert!(
        out.contains("accounting: ok + degraded + quarantined == total"),
        "{out}"
    );
    // The run is deterministic end to end: same seeds, same report.
    let again = run_ok(cafc().args(["torture", "--seed", "7", "--mutations", "all"]));
    assert_eq!(out, again);
}

#[test]
fn torture_rejects_unknown_mutation() {
    let out = cafc()
        .args(["torture", "--mutations", "frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mutation"));
}

#[test]
fn search_requires_query() {
    let dir = tmpdir("noquery");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "2"]));
    let out = cafc()
        .args(["search", "--input", dir_s])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("query"));
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_err(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        !out.status.success(),
        "command unexpectedly succeeded.\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Checkpoint a cafc-c run, resume it, and compare against a plain run:
/// all three must print identical clusterings.
#[test]
fn checkpointed_cluster_resumes_bit_identically() {
    let dir = tmpdir("ckpt-cluster");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "4"]));
    let ck = dir.join("ck");
    let ck_s = ck.to_str().expect("utf8");
    let base = [
        "cluster",
        "--input",
        dir_s,
        "--algorithm",
        "cafc-c",
        "--k",
        "6",
    ];

    let plain = run_ok(cafc().args(base));
    let strip = |out: String| -> String {
        out.lines()
            .filter(|l| !l.contains("checkpoint"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first =
        run_ok(
            cafc()
                .args(base)
                .args(["--checkpoint-dir", ck_s, "--checkpoint-every", "2"]),
        );
    assert!(first.contains("checkpointing to"), "{first}");
    assert!(ck.join("kmeans.journal").exists(), "journal not written");
    let resumed = run_ok(
        cafc()
            .args(base)
            .args(["--checkpoint-dir", ck_s, "--resume"]),
    );
    assert!(resumed.contains("resuming from"), "{resumed}");
    assert_eq!(strip(first), plain.trim_end());
    assert_eq!(strip(resumed), plain.trim_end());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same contract for the crawl: a checkpointed run and its resume print
/// exactly what an uncheckpointed run prints.
#[test]
fn checkpointed_crawl_resumes_bit_identically() {
    let dir = tmpdir("ckpt-crawl");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ck = dir.join("ck");
    let ck_s = ck.to_str().expect("utf8");
    let base = ["crawl", "--fault-rate", "0.3", "--seed", "11"];

    let plain = run_ok(cafc().args(base));
    let strip = |out: String| -> String {
        out.lines()
            .filter(|l| !l.contains("checkpoint"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = run_ok(cafc().args(base).args(["--checkpoint-dir", ck_s]));
    let resumed = run_ok(
        cafc()
            .args(base)
            .args(["--checkpoint-dir", ck_s, "--resume"]),
    );
    assert_eq!(strip(first), plain.trim_end());
    assert_eq!(strip(resumed), plain.trim_end());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Numeric-flag validation: each subcommand rejects malformed values with
/// the flag's own name in the message.
#[test]
fn numeric_flag_validation_names_the_flag() {
    let dir = tmpdir("flagcheck");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "32", "--seed", "2"]));

    for (args, needle) in [
        (
            vec!["cluster", "--input", dir_s, "--k", "several"],
            "--k expects a number",
        ),
        (
            vec![
                "cluster",
                "--input",
                dir_s,
                "--checkpoint-dir",
                "x",
                "--checkpoint-every",
                "0",
            ],
            "--checkpoint-every expects a count of at least 1",
        ),
        (
            vec!["cluster", "--input", dir_s, "--resume"],
            "--resume requires --checkpoint-dir",
        ),
        (
            vec!["crawl", "--fault-rate", "1.5"],
            "--fault-rate expects a rate in [0, 1]",
        ),
        (
            vec!["crawl", "--breaker-threshold", "high"],
            "--breaker-threshold expects a number",
        ),
        (
            vec!["torture", "--mutations-per-page", "lots"],
            "--mutations-per-page expects a number",
        ),
        (
            vec!["fuzz", "--budget-iters", "0"],
            "--budget-iters expects a count of at least 1",
        ),
        (
            vec!["bench", "--threads", "0"],
            "--threads expects a count of at least 1",
        ),
        (
            vec!["crash-test", "--points", "0"],
            "--points expects a count of at least 1",
        ),
    ] {
        let err = run_err(cafc().args(&args));
        assert!(err.contains(needle), "{args:?}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A quick crash-test sweep: one injection point per stage × fault kind,
/// ending in the recovered-bit-identically verdict.
#[test]
fn crash_test_sweep_reports_recovery() {
    let out = run_ok(cafc().args(["crash-test", "--seed", "5", "--points", "1"]));
    assert!(out.contains("stage"), "{out}");
    for fault in [
        "torn-write",
        "short-write",
        "no-space",
        "sync-eio",
        "bit-flip",
    ] {
        assert!(out.contains(fault), "{out}");
    }
    assert!(
        out.contains("every crash point recovered bit-identically"),
        "{out}"
    );
}
