//! End-to-end tests of `cafc serve` and `cafc loadgen`: generate a corpus,
//! stand up the daemon on an ephemeral loopback port, drive it over real
//! TCP, and check that fixed-seed loadgen runs agree byte-for-byte.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn cafc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cafc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafc-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "command failed.\nstdout: {stdout}\nstderr: {stderr}"
    );
    stdout
}

fn run_err(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        !out.status.success(),
        "command unexpectedly succeeded.\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// One HTTP request against the daemon; returns `(status, body)`.
fn get(addr: &str, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_daemon_answers_and_shuts_down() {
    let dir = tmpdir("daemon");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "9"]));

    // --port 0: the daemon picks an ephemeral port and prints it.
    let mut child = cafc()
        .args([
            "serve", "--input", dir_s, "--port", "0", "--k", "6", "--seed", "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon prints before exiting")
            .expect("utf8 stdout");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest
                .split('/')
                .next()
                .expect("authority after scheme")
                .to_string();
        }
    };

    let (status, body) = get(&addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(&addr, "/search?q=cheap+flights&k=3");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"hits\":["), "{body}");
    assert!(body.contains("\"clusters_visited\""), "{body}");

    let (status, body) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"counters\""), "{body}");

    let (status, _) = get(&addr, "/search");
    assert_eq!(status, 400, "missing q must be a client error");

    let (status, _) = get(&addr, "/shutdown");
    assert_eq!(status, 200);
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "daemon exit: {:?}", out.status);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_fixed_seed_runs_agree() {
    let dir = tmpdir("loadgen");
    let dir_s = dir.to_str().expect("utf8 temp path");
    run_ok(cafc().args(["generate", "--out", dir_s, "--pages", "48", "--seed", "9"]));

    let digest_a = dir.join("digest-a.json");
    let digest_b = dir.join("digest-b.json");
    let bench = dir.join("bench.json");
    let base = [
        "loadgen",
        "--input",
        dir_s,
        "--k",
        "6",
        "--seed",
        "17",
        "--rate",
        "300",
        "--duration-ms",
        "250",
    ];
    let out_a = run_ok(cafc().args(base).args([
        "--digest",
        digest_a.to_str().expect("utf8"),
        "--json",
        bench.to_str().expect("utf8"),
    ]));
    let out_b = run_ok(
        cafc()
            .args(base)
            .args(["--digest", digest_b.to_str().expect("utf8")]),
    );

    assert!(out_a.contains("recall@10"), "{out_a}");
    assert!(out_a.contains("p99"), "{out_a}");

    // The seed-determined digests must agree byte-for-byte across runs.
    let a = std::fs::read_to_string(&digest_a).expect("digest a");
    let b = std::fs::read_to_string(&digest_b).expect("digest b");
    assert_eq!(a, b, "fixed-seed digests diverged:\n{out_a}\n{out_b}");
    assert!(a.contains("\"stream_hash\""), "{a}");

    // The bench JSON carries the stable schema for the perf trajectory.
    let bench_json = std::fs::read_to_string(&bench).expect("bench json");
    for key in [
        "\"bench\": \"loadgen\"",
        "\"achieved_qps\"",
        "\"p50_us\"",
        "\"p99_us\"",
        "\"recall_at_10\"",
        "\"routed_postings\"",
        "\"full_postings\"",
        "\"pages_per_sec\"",
    ] {
        assert!(bench_json.contains(key), "missing {key} in {bench_json}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_loadgen_flags_fail_fast_with_flag_names() {
    // Flag validation happens before corpus load, so no corpus is needed.
    for (args, needle) in [
        (vec!["serve", "--port", "70000"], "--port expects a number"),
        (
            vec!["loadgen", "--rate", "0"],
            "--rate expects a positive number",
        ),
        (
            vec!["loadgen", "--duration-ms", "0"],
            "--duration-ms expects a count of at least 1",
        ),
        (
            vec!["loadgen", "--budget", "0"],
            "--budget expects a count of at least 1",
        ),
        (
            vec!["search", "--rank", "pagerank", "flights"],
            "--rank expects bm25|tfidf|fused",
        ),
    ] {
        let err = run_err(cafc().args(&args));
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}
