//! End-to-end tests of `cafc fuzz`: deterministic runs, seed writing,
//! replay, flag validation — driving the compiled binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn cafc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cafc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafc-fuzz-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "command failed.\nstdout: {stdout}\nstderr: {stderr}"
    );
    stdout
}

fn run_err(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        !out.status.success(),
        "command unexpectedly succeeded.\nstdout: {stdout}\nstderr: {stderr}"
    );
    stderr
}

/// One fuzz invocation against isolated corpus/regression directories.
fn fuzz_args(dir: &Path, rest: &[&str]) -> Vec<String> {
    let corpus = dir.join("corpus");
    let regressions = dir.join("regressions");
    let mut args = vec![
        "fuzz".to_owned(),
        "--corpus".to_owned(),
        corpus.to_str().expect("utf8").to_owned(),
        "--regressions".to_owned(),
        regressions.to_str().expect("utf8").to_owned(),
    ];
    args.extend(rest.iter().map(|s| (*s).to_owned()));
    args
}

#[test]
fn fixed_seed_run_is_bit_deterministic() {
    // Two runs with the same seed and budget against *separate* corpus
    // directories (so the second run cannot see the first run's
    // additions) must print the identical deterministic summary.
    let dir_a = tmpdir("det-a");
    let dir_b = tmpdir("det-b");
    let out_a = run_ok(cafc().args(fuzz_args(&dir_a, &["--seed", "11", "--budget-iters", "40"])));
    let out_b = run_ok(cafc().args(fuzz_args(&dir_b, &["--seed", "11", "--budget-iters", "40"])));
    assert_eq!(out_a, out_b);
    assert!(out_a.contains("coverage-hash"), "{out_a}");
    assert!(out_a.contains("failures 0"), "{out_a}");

    // And the corpus additions on disk are identical too.
    let list = |dir: &Path| -> Vec<String> {
        match std::fs::read_dir(dir.join("corpus")) {
            Ok(entries) => {
                let mut names: Vec<String> = entries
                    .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                    .collect();
                names.sort();
                names
            }
            Err(_) => Vec::new(),
        }
    };
    assert_eq!(list(&dir_a), list(&dir_b));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn write_seeds_then_replay_is_green() {
    let dir = tmpdir("seeds");
    let out = run_ok(cafc().args(fuzz_args(&dir, &["--write-seeds"])));
    assert!(out.contains("built-in seeds"), "{out}");
    let corpus = dir.join("corpus");
    assert!(corpus.read_dir().expect("corpus dir").count() > 20);

    let out = run_ok(cafc().args(["fuzz", "--replay", corpus.to_str().expect("utf8")]));
    assert!(out.contains("all green"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_of_missing_or_empty_directory_errors() {
    let dir = tmpdir("replay-missing");
    let missing = dir.join("nope");
    let err = run_err(cafc().args(["fuzz", "--replay", missing.to_str().expect("utf8")]));
    assert!(err.contains("cannot read directory"), "{err}");

    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).expect("mkdir");
    let err = run_err(cafc().args(["fuzz", "--replay", empty.to_str().expect("utf8")]));
    assert!(err.contains("no .html entries"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_flags_get_typed_errors() {
    let err = run_err(cafc().args(["fuzz", "--budget-iters", "0"]));
    assert!(err.contains("at least 1"), "{err}");
    let err = run_err(cafc().args(["fuzz", "--budget-iters", "lots"]));
    assert!(err.contains("expects a number"), "{err}");
    let err = run_err(cafc().args(["fuzz", "--budget-ms", "0"]));
    assert!(err.contains("at least 1"), "{err}");
    let err = run_err(cafc().args(["fuzz", "--max-input-len", "zero"]));
    assert!(err.contains("expects a number"), "{err}");
}

#[test]
fn ab_mode_reports_both_legs() {
    let dir = tmpdir("ab");
    let out = run_ok(cafc().args(fuzz_args(
        &dir,
        &["--seed", "3", "--budget-iters", "30", "--ab"],
    )));
    assert!(out.contains("guided:"), "{out}");
    assert!(out.contains("unguided:"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}
