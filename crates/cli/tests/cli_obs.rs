//! End-to-end CLI checks for the observability flags (`--metrics`,
//! `--trace`) and the eval-boundary clustering validation, driving the
//! real `cafc` binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cafc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cafc"))
        .args(args)
        .output()
        .expect("cafc binary runs")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cafc-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn corpus(&self) -> String {
        let corpus = self.path("corpus");
        let out = cafc(&[
            "generate",
            "--out",
            corpus.to_str().expect("utf-8 path"),
            "--pages",
            "40",
            "--seed",
            "3",
        ]);
        assert_ok(&out, "generate");
        corpus.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

#[test]
fn cluster_metrics_snapshot_parses_and_covers_stages() {
    let scratch = Scratch::new("metrics");
    let corpus = scratch.corpus();
    let metrics = scratch.path("metrics.json");
    let out = cafc(&[
        "cluster",
        "--input",
        &corpus,
        "--k",
        "4",
        "--seed",
        "1",
        "--metrics",
        metrics.to_str().expect("utf-8 path"),
        "--trace",
    ]);
    assert_ok(&out, "cluster --metrics --trace");

    let json = read(&metrics);
    let doc: serde_json::Value = serde_json::from_str(&json).expect("snapshot is valid JSON");
    for key in ["counters", "gauges", "histograms", "spans"] {
        assert!(doc.get(key).is_some(), "snapshot missing {key:?}:\n{json}");
    }
    for metric in [
        "corpus.vectorize.items",
        "seed.hub_candidates",
        "kmeans.iterations",
        "exec.threads",
    ] {
        assert!(json.contains(metric), "snapshot missing {metric}:\n{json}");
    }
    // --trace prints the span tree to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("kmeans.assign"), "no span tree:\n{stderr}");
}

#[test]
fn metrics_flag_does_not_change_the_clustering() {
    let scratch = Scratch::new("invariance");
    let corpus = scratch.corpus();
    let silent = scratch.path("silent.json");
    let traced = scratch.path("traced.json");
    let metrics = scratch.path("metrics.json");
    let base = ["cluster", "--input", &corpus, "--k", "4", "--seed", "1"];
    let out = cafc(&[&base[..], &["--out", silent.to_str().expect("utf-8")]].concat());
    assert_ok(&out, "uninstrumented cluster");
    let out = cafc(
        &[
            &base[..],
            &[
                "--out",
                traced.to_str().expect("utf-8"),
                "--metrics",
                metrics.to_str().expect("utf-8"),
            ],
        ]
        .concat(),
    );
    assert_ok(&out, "instrumented cluster");
    assert_eq!(
        read(&silent),
        read(&traced),
        "--metrics perturbed the written clustering"
    );
}

#[test]
fn eval_rejects_duplicate_assignments() {
    let scratch = Scratch::new("eval");
    let corpus = scratch.corpus();
    let clusters = scratch.path("clusters.json");
    let out = cafc(&[
        "cluster",
        "--input",
        &corpus,
        "--k",
        "4",
        "--seed",
        "1",
        "--out",
        clusters.to_str().expect("utf-8"),
    ]);
    assert_ok(&out, "cluster --out");

    // Duplicate the first URL into an extra cluster: one database now has
    // two cluster assignments, which eval must reject loudly.
    let doc: serde_json::Value =
        serde_json::from_str(&read(&clusters)).expect("clusters.json parses");
    let mut arrays = doc
        .get("clusters")
        .and_then(|c| c.as_array())
        .expect("clusters array")
        .clone();
    let first_url = arrays
        .first()
        .and_then(|c| c.as_array())
        .and_then(|c| c.first())
        .and_then(|u| u.as_str())
        .expect("first cluster has a URL")
        .to_owned();
    arrays.push(serde_json::Value::Array(vec![serde_json::Value::String(
        first_url,
    )]));
    let malformed = scratch.path("malformed.json");
    let mut root = serde_json::Map::new();
    root.insert("clusters".to_owned(), serde_json::Value::Array(arrays));
    std::fs::write(
        &malformed,
        serde_json::to_string(&serde_json::Value::Object(root)).expect("serializes"),
    )
    .expect("malformed.json writes");

    let out = cafc(&[
        "eval",
        "--input",
        &corpus,
        "--clusters",
        malformed.to_str().expect("utf-8"),
    ]);
    assert!(
        !out.status.success(),
        "eval must reject a duplicated assignment"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid clustering"),
        "unexpected error text:\n{stderr}"
    );
    assert!(stderr.contains("appears in cluster"), "{stderr}");

    // The untouched file still evaluates cleanly.
    let out = cafc(&[
        "eval",
        "--input",
        &corpus,
        "--clusters",
        clusters.to_str().expect("utf-8"),
    ]);
    assert_ok(&out, "eval of a well-formed clustering");
}
