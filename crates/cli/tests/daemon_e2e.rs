//! End-to-end tests of `cafc daemon`: stream a seeded synthetic crawl
//! through incremental ingestion while the HTTP surface is live, and check
//! that same-seed runs write byte-identical assignment logs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

fn cafc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cafc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cafc-daemon-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One HTTP request against the daemon; returns `(status, body)`.
fn get(addr: &str, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Run one daemon round: spawn, wait for the stream to finish, optionally
/// exercise the HTTP surface, shut down. Returns the assignment log.
fn daemon_round(assignments: &Path, exercise: bool) -> String {
    let mut child = cafc()
        .args([
            "daemon",
            "--pages",
            "48",
            "--seed",
            "5",
            "--warmup",
            "16",
            "--k",
            "4",
            "--port",
            "0",
            "--repair-every",
            "8",
            "--refresh-every",
            "8",
            "--assignments",
            assignments.to_str().expect("utf8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    // The daemon prints the bound address first and a "streamed …" summary
    // once the whole crawl has been ingested; it keeps serving after that.
    loop {
        let line = lines
            .next()
            .expect("daemon prints before exiting")
            .expect("utf8 stdout");
        if let Some(rest) = line.split("http://").nth(1) {
            addr = Some(
                rest.split('/')
                    .next()
                    .expect("authority after scheme")
                    .to_string(),
            );
        }
        if line.starts_with("streamed ") {
            assert!(
                line.contains("48 kept"),
                "every synthetic page should be kept: {line}"
            );
            break;
        }
    }
    let addr = addr.expect("daemon printed its address");

    if exercise {
        let (status, body) = get(&addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // Streamed pages are searchable: the post-warm-up corpus is live.
        let (status, body) = get(&addr, "/search?q=cheap+flights&k=5");
        assert_eq!(status, 200, "body: {body}");
        assert!(body.contains("\"hits\":["), "{body}");

        let (status, body) = get(&addr, "/metrics");
        assert_eq!(status, 200);
        for counter in [
            "stream.pages_assigned",
            "stream.repairs",
            "stream.index_refreshes",
        ] {
            assert!(body.contains(counter), "missing {counter} in {body}");
        }
        assert!(body.contains("stream.drift"), "{body}");
    }

    let (status, _) = get(&addr, "/shutdown");
    assert_eq!(status, 200);
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "daemon exit: {:?}", out.status);
    std::fs::read_to_string(assignments).expect("assignment log written")
}

#[test]
fn daemon_streams_serves_and_replays_identically() {
    let dir = tmpdir("replay");

    let log_a = daemon_round(&dir.join("assign-a.log"), true);
    assert!(log_a.starts_with("# cafc daemon seed=5"), "{log_a}");
    let page_lines = log_a.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(page_lines, 32, "one line per streamed page:\n{log_a}");
    assert!(log_a.contains("#repair\tdrift="), "{log_a}");
    assert!(log_a.contains("#refresh\tcorpus="), "{log_a}");
    assert!(log_a.contains("\tok\t"), "{log_a}");

    // Same seed, second process: the log must agree byte-for-byte.
    let log_b = daemon_round(&dir.join("assign-b.log"), false);
    assert_eq!(log_a, log_b, "same-seed daemon runs diverged");

    let _ = std::fs::remove_dir_all(&dir);
}
