//! Property-based tests for the text substrate.

use cafc_text::{is_stopword, stem, tokenize, Analyzer, TermDict};
use proptest::prelude::*;

proptest! {
    /// The stemmer is total and never grows a word by more than one char
    /// (the only growth rules are e-restoration like at→ate, bl→ble, iz→ize
    /// and the cvc e-append, all of which net at most +1 over the original).
    #[test]
    fn stem_total_and_bounded(w in "[a-z]{0,20}") {
        let s = stem(&w);
        prop_assert!(!s.is_empty() || w.is_empty());
        prop_assert!(s.len() <= w.len() + 1, "stem({w}) = {s} grew too much");
    }

    /// Stemming never panics on arbitrary unicode.
    #[test]
    fn stem_total_on_unicode(w in ".{0,40}") {
        let _ = stem(&w);
    }

    /// Stemming is deterministic.
    #[test]
    fn stem_deterministic(w in "[a-zA-Z]{0,20}") {
        prop_assert_eq!(stem(&w), stem(&w));
    }

    /// Tokenization output is always lowercase and within length bounds.
    #[test]
    fn tokens_lowercase_and_bounded(text in ".{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(t.chars().count() >= 2);
            prop_assert!(t.chars().count() <= 30);
            prop_assert_eq!(t.to_lowercase(), t.clone());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
        }
    }

    /// Tokenization is invariant under surrounding punctuation.
    #[test]
    fn tokens_ignore_surrounding_punctuation(words in proptest::collection::vec("[a-z]{2,8}", 1..10)) {
        let plain = words.join(" ");
        let noisy = format!("... {} !!!", words.join(", "));
        prop_assert_eq!(tokenize(&plain), tokenize(&noisy));
    }

    /// The analyzer never emits stopwords or empty terms.
    #[test]
    fn analyzer_output_is_clean(text in ".{0,200}") {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        for id in a.analyze(&text, &mut dict) {
            let term = dict.term(id);
            prop_assert!(!term.is_empty());
            prop_assert!(!is_stopword(term));
        }
    }

    /// Interning n distinct strings yields n distinct dense ids.
    #[test]
    fn dict_ids_distinct(words in proptest::collection::hash_set("[a-z]{1,12}", 0..50)) {
        let mut dict = TermDict::new();
        let ids: Vec<_> = words.iter().map(|w| dict.intern(w)).collect();
        let mut sorted: Vec<_> = ids.iter().map(|id| id.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), words.len());
        prop_assert_eq!(dict.len(), words.len());
    }
}
