//! # cafc-text
//!
//! Text processing for the CAFC form-page model: word [`tokenize()`]-ation,
//! the classic Porter [`stem()`]-mer ("the terms are obtained by stemming all
//! the distinct words", §2.1 of the paper), an English stopword list, and a
//! [`TermDict`] interner that maps stemmed terms to dense [`TermId`]s so the
//! vector-space layer can work with integer-keyed sparse vectors.
//!
//! The [`Analyzer`] ties the stages together:
//!
//! ```
//! use cafc_text::{Analyzer, TermDict};
//!
//! let mut dict = TermDict::new();
//! let analyzer = Analyzer::default();
//! let terms = analyzer.analyze("Searching for the cheapest flights!", &mut dict);
//! let words: Vec<_> = terms.iter().map(|&t| dict.term(t)).collect();
//! // "for"/"the" are stopwords; remaining words are stemmed.
//! assert_eq!(words, ["search", "cheapest", "flight"]);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod dict;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use analyze::Analyzer;
pub use dict::{TermDict, TermId};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use tokenize::tokenize;
