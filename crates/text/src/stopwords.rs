//! English stopword list.
//!
//! Function words carry no domain signal and inflate every vector equally;
//! they are removed before stemming. The list is the classic IR core set
//! (roughly the SMART/van Rijsbergen intersection) — deliberately *not*
//! including web-generic content words like "search", "home" or "privacy":
//! the paper handles those through low IDF, not through a stoplist, and the
//! experiments in §2.1 depend on that behaviour.

/// Sorted list of stopwords (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Is `word` (assumed lowercase) a stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(
                w[0] < w[1],
                "stopword list must be strictly sorted: {} >= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn common_function_words() {
        for w in ["the", "and", "of", "to", "is", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in [
            "search", "flight", "book", "job", "hotel", "privacy", "home",
        ] {
            assert!(!is_stopword(w), "{w} must NOT be a stopword");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // Callers must lowercase first; uppercase input is not matched.
        assert!(!is_stopword("The"));
    }

    #[test]
    fn empty_is_not_stopword() {
        assert!(!is_stopword(""));
    }
}
