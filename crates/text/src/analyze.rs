//! The analysis pipeline: tokenize → stopword-filter → stem → intern.

use crate::dict::{TermDict, TermId};
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::{tokenize_with, TokenizeOptions};

/// Configurable text analyzer.
///
/// The defaults mirror the paper's preprocessing: all words are stemmed,
/// stopwords removed, numeric tokens dropped.
#[derive(Debug, Clone, Copy)]
pub struct Analyzer {
    /// Tokenizer options.
    pub tokenize: TokenizeOptions,
    /// Remove stopwords (before stemming). Default true.
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer. Default true.
    pub stem: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            tokenize: TokenizeOptions::default(),
            remove_stopwords: true,
            stem: true,
        }
    }
}

impl Analyzer {
    /// Analyze `text` into a sequence of interned term ids (with repeats —
    /// term frequency is computed downstream).
    pub fn analyze(&self, text: &str, dict: &mut TermDict) -> Vec<TermId> {
        let mut out = Vec::new();
        self.analyze_into(text, dict, &mut out);
        out
    }

    /// Like [`Analyzer::analyze`] but appends into a reusable buffer,
    /// avoiding per-call allocation in the corpus-scale loops.
    pub fn analyze_into(&self, text: &str, dict: &mut TermDict, out: &mut Vec<TermId>) {
        for token in tokenize_with(text, self.tokenize) {
            if self.remove_stopwords && is_stopword(&token) {
                continue;
            }
            let term = if self.stem { stem(&token) } else { token };
            if term.is_empty() {
                continue;
            }
            // Stemming can collapse a content word onto a stopword ("ares"
            // -> "are"); filter again post-stem so no stopword survives.
            if self.remove_stopwords && is_stopword(&term) {
                continue;
            }
            out.push(dict.intern(&term));
        }
    }

    /// Like [`Analyzer::analyze_into`], but stop once `out` holds `budget`
    /// terms. Returns `true` when the budget cut the analysis short —
    /// entity bombs and megabyte attribute dumps yield bounded work instead
    /// of unbounded dictionaries. A `budget` of `usize::MAX` never trims.
    pub fn analyze_into_budget(
        &self,
        text: &str,
        dict: &mut TermDict,
        out: &mut Vec<TermId>,
        budget: usize,
    ) -> bool {
        for token in tokenize_with(text, self.tokenize) {
            if out.len() >= budget {
                return true;
            }
            if self.remove_stopwords && is_stopword(&token) {
                continue;
            }
            let term = if self.stem { stem(&token) } else { token };
            if term.is_empty() {
                continue;
            }
            if self.remove_stopwords && is_stopword(&term) {
                continue;
            }
            out.push(dict.intern(&term));
        }
        false
    }

    /// Analyze into plain strings (for debugging and golden tests).
    pub fn analyze_to_strings(&self, text: &str) -> Vec<String> {
        let mut dict = TermDict::new();
        self.analyze(text, &mut dict)
            .into_iter()
            .map(|id| dict.term(id).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline() {
        let a = Analyzer::default();
        assert_eq!(
            a.analyze_to_strings("Searching for the cheapest flights to Paris!"),
            vec!["search", "cheapest", "flight", "pari"]
        );
    }

    #[test]
    fn repeats_preserved_for_tf() {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        let ids = a.analyze("book books booking", &mut dict);
        // book, book, book — stem collapses all three to the same id.
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stopword_removal_toggle() {
        let no_stop = Analyzer {
            remove_stopwords: false,
            ..Default::default()
        };
        assert!(no_stop
            .analyze_to_strings("the car")
            .contains(&"the".to_owned()));
        let with_stop = Analyzer::default();
        assert!(!with_stop
            .analyze_to_strings("the car")
            .contains(&"the".to_owned()));
    }

    #[test]
    fn stemming_toggle() {
        let raw = Analyzer {
            stem: false,
            ..Default::default()
        };
        assert_eq!(raw.analyze_to_strings("flights"), vec!["flights"]);
    }

    #[test]
    fn shared_dict_across_documents() {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        let d1 = a.analyze("cheap flights", &mut dict);
        let d2 = a.analyze("flights to denver", &mut dict);
        // "flight" got the same id in both documents.
        assert!(d1.iter().any(|id| d2.contains(id)));
    }

    #[test]
    fn empty_text() {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        assert!(a.analyze("", &mut dict).is_empty());
        assert!(a.analyze("   !!!   ", &mut dict).is_empty());
    }

    #[test]
    fn budget_trims_and_reports() {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        let mut out = Vec::new();
        let trimmed =
            a.analyze_into_budget("cheap flights to sunny lisbon", &mut dict, &mut out, 2);
        assert!(trimmed);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn budget_large_enough_matches_unbounded() {
        let a = Analyzer::default();
        let mut dict = TermDict::new();
        let mut budgeted = Vec::new();
        let trimmed = a.analyze_into_budget(
            "cheap flights to denver",
            &mut dict,
            &mut budgeted,
            usize::MAX,
        );
        assert!(!trimmed);
        let mut dict2 = TermDict::new();
        let plain = a.analyze("cheap flights to denver", &mut dict2);
        assert_eq!(budgeted.len(), plain.len());
    }
}
