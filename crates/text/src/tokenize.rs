//! Word tokenization.
//!
//! Splits text into lowercase word tokens on any non-alphanumeric boundary.
//! Pure numbers are dropped by default (they are database *contents* —
//! prices, years — not schema vocabulary), as are one-character tokens.

/// Tokenization options.
#[derive(Debug, Clone, Copy)]
pub struct TokenizeOptions {
    /// Minimum token length in characters (default 2).
    pub min_len: usize,
    /// Maximum token length; longer tokens (base64 blobs, URLs that leaked
    /// into text) are dropped (default 30).
    pub max_len: usize,
    /// Keep tokens consisting only of digits (default false).
    pub keep_numbers: bool,
}

impl Default for TokenizeOptions {
    fn default() -> Self {
        TokenizeOptions {
            min_len: 2,
            max_len: 30,
            keep_numbers: false,
        }
    }
}

/// Tokenize with default options.
///
/// ```
/// assert_eq!(cafc_text::tokenize("Cheap Flights, 2-for-1!"),
///            vec!["cheap", "flights", "for"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_with(text, TokenizeOptions::default())
}

/// Tokenize with explicit options.
pub fn tokenize_with(text: &str, opts: TokenizeOptions) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current), opts);
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current, opts);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, token: String, opts: TokenizeOptions) {
    let len = token.chars().count();
    if len < opts.min_len || len > opts.max_len {
        return;
    }
    if !opts.keep_numbers && token.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    tokens.push(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split() {
        assert_eq!(tokenize("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Job Category"), vec!["job", "category"]);
    }

    #[test]
    fn punctuation_boundaries() {
        assert_eq!(
            tokenize("new/used cars, trucks."),
            vec!["new", "used", "cars", "trucks"]
        );
    }

    #[test]
    fn numbers_dropped_by_default() {
        assert_eq!(tokenize("room 101 deluxe"), vec!["room", "deluxe"]);
    }

    #[test]
    fn numbers_kept_when_asked() {
        let opts = TokenizeOptions {
            keep_numbers: true,
            ..Default::default()
        };
        assert_eq!(tokenize_with("room 101", opts), vec!["room", "101"]);
    }

    #[test]
    fn alphanumeric_mixed_tokens_kept() {
        assert_eq!(tokenize("mp3 players"), vec!["mp3", "players"]);
    }

    #[test]
    fn single_chars_dropped() {
        assert_eq!(tokenize("a b cd"), vec!["cd"]);
    }

    #[test]
    fn overlong_tokens_dropped() {
        let blob = "x".repeat(31);
        assert_eq!(tokenize(&format!("ok {blob} fine")), vec!["ok", "fine"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ###").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tokenize("café au lait"), vec!["café", "au", "lait"]);
    }

    #[test]
    fn uppercase_unicode_lowered() {
        assert_eq!(tokenize("ÉTÉ"), vec!["été"]);
    }
}
