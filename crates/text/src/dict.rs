//! Term dictionary: interns stemmed terms into dense [`TermId`]s.
//!
//! The vector-space layer (`cafc-vsm`) keys sparse vectors by `TermId`
//! rather than `String`, which makes cosine computations integer-indexed
//! and keeps each term's bytes stored exactly once for the whole corpus.

use std::collections::HashMap;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interner mapping terms to dense ids.
#[derive(Debug, Default, Clone)]
pub struct TermDict {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl TermDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        TermDict::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("fewer than 4Gi distinct terms"));
        self.terms.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        id
    }

    /// Look up an id without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Resolve an id back to its term.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str())) // ids assigned as u32 in intern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern("flight");
        let b = d.intern("flight");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = TermDict::new();
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("b"), TermId(1));
        assert_eq!(d.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip() {
        let mut d = TermDict::new();
        let id = d.intern("hotel");
        assert_eq!(d.term(id), "hotel");
        assert_eq!(d.get("hotel"), Some(id));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn iter_in_order() {
        let mut d = TermDict::new();
        d.intern("x");
        d.intern("y");
        let got: Vec<_> = d.iter().map(|(id, t)| (id.0, t.to_owned())).collect();
        assert_eq!(got, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn empty_dict() {
        let d = TermDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
