//! The Porter stemming algorithm (M.F. Porter, 1980), as used by the paper
//! to normalize page and form vocabulary ("the terms are obtained by
//! stemming all the distinct words").
//!
//! This is a faithful implementation of the original five-step algorithm,
//! including the commonly adopted revisions (`abli`→`able` spelled as
//! `bli`→`ble`, and `logi`→`log`). It operates on lowercase ASCII; words
//! containing non-ASCII-alphabetic characters are returned unchanged, as are
//! words of length ≤ 2 (the algorithm's own convention).

/// Stem a single word. The input is lowercased internally.
///
/// ```
/// assert_eq!(cafc_text::stem("relational"), "relat");
/// assert_eq!(cafc_text::stem("flights"), "flight");
/// assert_eq!(cafc_text::stem("privacy"), "privaci");
/// ```
pub fn stem(word: &str) -> String {
    let lower = word.to_ascii_lowercase();
    if lower.len() <= 2 || !lower.bytes().all(|b| b.is_ascii_lowercase()) {
        return lower;
    }
    let mut s = Stemmer {
        b: lower.into_bytes(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The stemmer only rewrites ASCII bytes, so this is lossless; lossy
    // conversion just removes the panic path.
    String::from_utf8_lossy(&s.b).into_owned()
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is the letter at index `i` a consonant (with Porter's `y` rule)?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// Porter's measure `m` of the prefix `b[0..len]`: the number of
    /// vowel→consonant transitions, i.e. `m` in `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut prev_vowel = false;
        for i in 0..len {
            let cons = self.is_consonant(i);
            if cons && prev_vowel {
                m += 1;
            }
            prev_vowel = !cons;
        }
        m
    }

    /// Does the prefix `b[0..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_consonant(i))
    }

    /// Does the prefix `b[0..len]` end with a double consonant?
    fn ends_double_consonant(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_consonant(len - 1)
    }

    /// Does the prefix `b[0..len]` end consonant-vowel-consonant, where the
    /// final consonant is not `w`, `x` or `y`? (Porter's `*o` condition.)
    fn ends_cvc(&self, len: usize) -> bool {
        len >= 3
            && self.is_consonant(len - 3)
            && !self.is_consonant(len - 2)
            && self.is_consonant(len - 1)
            && !matches!(self.b[len - 1], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    /// Length of the stem if `suffix` were removed.
    fn stem_len(&self, suffix: &str) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replace a (known-present) `suffix` with `replacement`.
    fn set_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.stem_len(suffix);
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// Try each `(suffix, replacement)` pair in order: on the first suffix
    /// that matches, apply the replacement if `m(stem) > threshold`, and stop
    /// (matching, even without firing, ends the step — per the algorithm,
    /// rules within a step are alternatives keyed on the longest match).
    fn rule_list(&mut self, rules: &[(&str, &str)], threshold: usize) {
        for &(suffix, replacement) in rules {
            if self.ends_with(suffix) {
                if self.measure(self.stem_len(suffix)) > threshold {
                    self.set_suffix(suffix, replacement);
                }
                return;
            }
        }
    }

    /// Step 1a: plurals.
    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.set_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.set_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // unchanged
        } else if self.ends_with("s") {
            self.set_suffix("s", "");
        }
    }

    /// Step 1b: past tense / gerunds, with the cleanup sub-step.
    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.set_suffix("eed", "ee");
            }
            return;
        }
        let removed = if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.set_suffix("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.set_suffix("ing", "");
            true
        } else {
            false
        };
        if !removed {
            return;
        }
        if self.ends_with("at") {
            self.set_suffix("at", "ate");
        } else if self.ends_with("bl") {
            self.set_suffix("bl", "ble");
        } else if self.ends_with("iz") {
            self.set_suffix("iz", "ize");
        } else if self.ends_double_consonant(self.b.len())
            && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
        {
            self.b.pop();
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    /// Step 1c: terminal `y` → `i` when the stem has a vowel.
    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            self.set_suffix("y", "i");
        }
    }

    /// Step 2: double suffixes (fires when `m(stem) > 0`).
    fn step2(&mut self) {
        self.rule_list(
            &[
                ("ational", "ate"),
                ("tional", "tion"),
                ("enci", "ence"),
                ("anci", "ance"),
                ("izer", "ize"),
                ("bli", "ble"),
                ("alli", "al"),
                ("entli", "ent"),
                ("eli", "e"),
                ("ousli", "ous"),
                ("ization", "ize"),
                ("ation", "ate"),
                ("ator", "ate"),
                ("alism", "al"),
                ("iveness", "ive"),
                ("fulness", "ful"),
                ("ousness", "ous"),
                ("aliti", "al"),
                ("iviti", "ive"),
                ("biliti", "ble"),
                ("logi", "log"),
            ],
            0,
        );
    }

    /// Step 3: `-ic-`, `-full`, `-ness` (fires when `m(stem) > 0`).
    fn step3(&mut self) {
        self.rule_list(
            &[
                ("icate", "ic"),
                ("ative", ""),
                ("alize", "al"),
                ("iciti", "ic"),
                ("ical", "ic"),
                ("ful", ""),
                ("ness", ""),
            ],
            0,
        );
    }

    /// Step 4: bare suffixes (fires when `m(stem) > 1`).
    fn step4(&mut self) {
        // `ion` has an extra condition (*S or *T on the stem), so handle the
        // list manually rather than through `rule_list`.
        const SUFFIXES: &[&str] = &[
            "ement", "ance", "ence", "able", "ible", "ment", "ant", "ent", "ion", "ism", "ate",
            "iti", "ous", "ive", "ize", "al", "er", "ic", "ou",
        ];
        for &suffix in SUFFIXES {
            if self.ends_with(suffix) {
                let stem_len = self.stem_len(suffix);
                let fires = self.measure(stem_len) > 1
                    && (suffix != "ion"
                        || (stem_len >= 1 && matches!(self.b[stem_len - 1], b's' | b't')));
                if fires {
                    self.set_suffix(suffix, "");
                }
                return;
            }
        }
    }

    /// Step 5a: remove terminal `e`.
    fn step5a(&mut self) {
        if self.ends_with("e") {
            let stem_len = self.stem_len("e");
            let m = self.measure(stem_len);
            if m > 1 || (m == 1 && !self.ends_cvc(stem_len)) {
                self.set_suffix("e", "");
            }
        }
    }

    /// Step 5b: `ll` → `l` for long stems.
    fn step5b(&mut self) {
        let len = self.b.len();
        if self.measure(len) > 1 && self.ends_double_consonant(len) && self.b[len - 1] == b'l' {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stem;

    /// `(input, expected)` pairs from Porter's published vocabulary and the
    /// examples in the original paper.
    const VECTORS: &[(&str, &str)] = &[
        // step 1a
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        // step 1b
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        // step 1c
        ("happy", "happi"),
        ("sky", "sky"),
        // step 2
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("hesitanci", "hesit"),
        ("digitizer", "digit"),
        ("radically", "radic"),
        ("differently", "differ"),
        ("analogously", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formality", "formal"),
        ("sensitivity", "sensit"),
        ("sensibility", "sensibl"),
        // step 3
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electricity", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        // step 4
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angularity", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        // step 5
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controlling", "control"),
        ("roll", "roll"),
        // domain vocabulary from the paper
        ("flights", "flight"),
        ("privacy", "privaci"),
        ("shopping", "shop"),
        ("copyright", "copyright"),
        ("travel", "travel"),
        ("movies", "movi"),
        ("books", "book"),
        ("jobs", "job"),
        ("searching", "search"),
        ("rental", "rental"),
        ("hotels", "hotel"),
        ("airfare", "airfar"),
        ("automobiles", "automobil"),
        ("databases", "databas"),
    ];

    #[test]
    fn porter_vectors() {
        for &(input, expected) in VECTORS {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn lowercases_input() {
        assert_eq!(stem("FLIGHTS"), "flight");
        assert_eq!(stem("Movies"), "movi");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn non_alpha_passes_through() {
        assert_eq!(stem("abc123"), "abc123");
        assert_eq!(stem("x-ray"), "x-ray");
    }

    #[test]
    fn idempotent_on_common_vocabulary() {
        // Stemming a stem should (for these words) be a fixed point.
        for &(input, _) in VECTORS {
            let once = stem(input);
            let twice = stem(&once);
            // Not all Porter outputs are fixed points in general, but these are.
            assert_eq!(twice, stem(&twice), "double-stem fixpoint for {input:?}");
        }
    }

    #[test]
    fn empty_string() {
        assert_eq!(stem(""), "");
    }
}
