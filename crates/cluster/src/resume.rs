//! Crash-safe checkpointing for the clustering stages.
//!
//! Both algorithms are deterministic given their inputs, so the durable
//! record is just their *decision log*, kept in the [`Store`]'s
//! append-only journal:
//!
//! * **k-means** (stage `"kmeans"`): one record per iteration holding the
//!   full assignment vector. Resume replays journaled iterations —
//!   skipping the O(n·k) similarity pass — and continues live from the
//!   first unjournaled one. Centroids are rebuilt from the assignments on
//!   both paths, so the replayed prefix is bit-identical.
//! * **HAC** (stage `"hac"`): one record per merge step holding the merged
//!   pair `(i, j)`. Resume replays the merges — skipping the closest-pair
//!   scans — and continues live.
//!
//! Each journal starts with a fingerprint of the run's inputs (item
//! count, seeds/initial groups, every option); resuming under different
//! inputs is a typed [`StoreError::FingerprintMismatch`], never a silent
//! wrong answer. The invariant — crash at any injected fault point +
//! resume ≡ uninterrupted run, bit-identically — is pinned by
//! `tests/crash_recovery.rs`.

use crate::hac::{hac_driver, HacOptions, Linkage};
use crate::kmeans::{kmeans_driver, KMeansOptions, KMeansOutcome};
use crate::partition::Partition;
use crate::space::ClusterSpace;
use cafc_exec::ExecPolicy;
use cafc_obs::Obs;
use cafc_store::{fnv1a64, ByteReader, ByteWriter, Store, StoreError};
use std::collections::VecDeque;

/// Journal record: run fingerprint (written once, at stage start).
const KIND_FINGERPRINT: u8 = 0;
/// Journal record: one algorithm decision (k-means iteration / HAC merge).
const KIND_DECISION: u8 = 1;

/// Shared open/validate logic: truncate the torn journal tail, verify the
/// fingerprint (writing it on a fresh or effectively-fresh start), and
/// return the decision payloads left to replay.
fn open_stage(
    store: &mut Store,
    stage: &'static str,
    fingerprint: u64,
    resume: bool,
) -> Result<VecDeque<Vec<u8>>, StoreError> {
    let fp_payload = || {
        let mut w = ByteWriter::new();
        w.put_u64(fingerprint);
        w.into_bytes()
    };
    if !resume {
        store.reset_stage(stage)?;
        store.journal_append(stage, KIND_FINGERPRINT, &fp_payload())?;
        return Ok(VecDeque::new());
    }
    store.journal_truncate_to_valid(stage)?;
    let mut pending = VecDeque::new();
    let mut saw_fingerprint = false;
    for rec in store.journal_records(stage)? {
        match rec.kind {
            KIND_FINGERPRINT => {
                let mut r = ByteReader::new(&rec.payload, stage);
                if r.get_u64()? != fingerprint {
                    return Err(StoreError::FingerprintMismatch {
                        stage: stage.to_owned(),
                    });
                }
                saw_fingerprint = true;
            }
            KIND_DECISION => pending.push_back(rec.payload),
            // Unknown kinds are future format extensions: ignore.
            _ => {}
        }
    }
    if !saw_fingerprint {
        // Nothing durable: a --resume against an empty directory is a
        // fresh start.
        store.journal_append(stage, KIND_FINGERPRINT, &fp_payload())?;
    }
    Ok(pending)
}

/// Replays and journals k-means iterations. Lives only inside
/// [`kmeans_resumable`]; the plain entry points run without one.
pub(crate) struct KMeansCheckpointer<'s> {
    store: &'s mut Store,
    pending: VecDeque<Vec<u8>>,
}

impl KMeansCheckpointer<'_> {
    /// The journaled assignment vector for 0-based iteration `iter`, if the
    /// interrupted run recorded one. Validates shape against the live run.
    pub(crate) fn replay_iteration(
        &mut self,
        iter: usize,
        n: usize,
        k: usize,
    ) -> Result<Option<Vec<usize>>, StoreError> {
        let Some(payload) = self.pending.pop_front() else {
            return Ok(None);
        };
        let mut r = ByteReader::new(&payload, "kmeans.journal");
        let rec_iter = r.get_u64()?;
        if rec_iter != iter as u64 {
            return Err(StoreError::ReplayDiverged {
                stage: "kmeans".to_owned(),
                detail: format!("journal holds iteration {rec_iter}, live run is at {iter}"),
            });
        }
        let len = r.get_usize()?;
        if len != n {
            return Err(StoreError::ReplayDiverged {
                stage: "kmeans".to_owned(),
                detail: format!("journaled assignment covers {len} items, space has {n}"),
            });
        }
        let mut assignment = Vec::with_capacity(n);
        for item in 0..n {
            let c = r.get_u32()? as usize;
            if c >= k {
                return Err(StoreError::ReplayDiverged {
                    stage: "kmeans".to_owned(),
                    detail: format!(
                        "journaled cluster {c} for item {item} is out of range (k = {k})"
                    ),
                });
            }
            assignment.push(c);
        }
        Ok(Some(assignment))
    }

    /// Journal a live iteration's assignment vector.
    pub(crate) fn record_iteration(
        &mut self,
        iter: usize,
        assignment: &[usize],
    ) -> Result<(), StoreError> {
        let mut w = ByteWriter::new();
        w.put_u64(iter as u64);
        w.put_usize(assignment.len());
        for &c in assignment {
            // Cluster indices are bounded by k, which the CLI caps far below
            // u32::MAX; saturate defensively rather than truncate.
            w.put_u32(u32::try_from(c).unwrap_or(u32::MAX));
        }
        self.store
            .journal_append("kmeans", KIND_DECISION, &w.into_bytes())
    }

    /// End of run: fail if journaled iterations were never reached (the
    /// journal belongs to a different run).
    pub(crate) fn finish(&mut self, iterations: usize) -> Result<(), StoreError> {
        if !self.pending.is_empty() {
            return Err(StoreError::ReplayDiverged {
                stage: "kmeans".to_owned(),
                detail: format!(
                    "run converged after {iterations} iterations but the journal holds {} more",
                    self.pending.len()
                ),
            });
        }
        Ok(())
    }
}

/// Replays and journals HAC merge decisions. Lives only inside
/// [`hac_resumable`]; the plain entry points run without one.
pub(crate) struct HacCheckpointer<'s> {
    store: &'s mut Store,
    pending: VecDeque<Vec<u8>>,
}

impl HacCheckpointer<'_> {
    /// The journaled merge pair for `step`, if the interrupted run recorded
    /// one. `valid` checks the pair against the live run's group state.
    pub(crate) fn replay_merge<V>(
        &mut self,
        step: u64,
        valid: V,
    ) -> Result<Option<(usize, usize)>, StoreError>
    where
        V: Fn(usize, usize) -> bool,
    {
        let Some(payload) = self.pending.pop_front() else {
            return Ok(None);
        };
        let mut r = ByteReader::new(&payload, "hac.journal");
        let rec_step = r.get_u64()?;
        if rec_step != step {
            return Err(StoreError::ReplayDiverged {
                stage: "hac".to_owned(),
                detail: format!("journal holds merge step {rec_step}, live run is at {step}"),
            });
        }
        let bi = r.get_usize()?;
        let bj = r.get_usize()?;
        if !valid(bi, bj) {
            return Err(StoreError::ReplayDiverged {
                stage: "hac".to_owned(),
                detail: format!("journaled merge ({bi}, {bj}) is invalid at step {step}"),
            });
        }
        Ok(Some((bi, bj)))
    }

    /// Journal a live merge decision.
    pub(crate) fn record_merge(
        &mut self,
        step: u64,
        bi: usize,
        bj: usize,
    ) -> Result<(), StoreError> {
        let mut w = ByteWriter::new();
        w.put_u64(step);
        w.put_usize(bi);
        w.put_usize(bj);
        self.store
            .journal_append("hac", KIND_DECISION, &w.into_bytes())
    }

    /// End of run: fail if journaled merges were never reached.
    pub(crate) fn finish(&mut self, steps: u64) -> Result<(), StoreError> {
        if !self.pending.is_empty() {
            return Err(StoreError::ReplayDiverged {
                stage: "hac".to_owned(),
                detail: format!(
                    "run finished after {steps} merges but the journal holds {} more",
                    self.pending.len()
                ),
            });
        }
        Ok(())
    }
}

fn kmeans_fingerprint(n: usize, seeds: &[Vec<usize>], opts: &KMeansOptions) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(n);
    w.put_usize(seeds.len());
    for seed in seeds {
        w.put_usize(seed.len());
        for &m in seed {
            w.put_usize(m);
        }
    }
    w.put_f64(opts.move_fraction_threshold);
    w.put_usize(opts.max_iterations);
    fnv1a64(&w.into_bytes())
}

fn hac_fingerprint(n: usize, initial: &[Vec<usize>], opts: &HacOptions) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(n);
    w.put_usize(initial.len());
    for group in initial {
        w.put_usize(group.len());
        for &m in group {
            w.put_usize(m);
        }
    }
    w.put_usize(opts.target_clusters);
    w.put_u8(match opts.linkage {
        Linkage::Single => 0,
        Linkage::Complete => 1,
        Linkage::Average => 2,
        Linkage::Centroid => 3,
    });
    fnv1a64(&w.into_bytes())
}

/// [`kmeans_obs`](crate::kmeans_obs) with durable checkpoints: every
/// iteration's assignment vector is journaled as it completes, and — when
/// `resume` is true — journaled iterations replay without recomputing
/// their O(n·k) similarity pass. A resumed run produces a bit-identical
/// [`KMeansOutcome`] to an uninterrupted one.
///
/// The journal is keyed by a fingerprint of `(space.len(), seeds, opts)`;
/// resuming under different inputs is refused with
/// [`StoreError::FingerprintMismatch`]. The space's *contents* cannot be
/// fingerprinted through the [`ClusterSpace`] trait — callers mutating
/// items between runs get [`StoreError::ReplayDiverged`] at the first
/// inconsistent decision instead.
#[allow(clippy::too_many_arguments)]
pub fn kmeans_resumable<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
    obs: &Obs,
    store: &mut Store,
    resume: bool,
) -> Result<KMeansOutcome, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let fingerprint = kmeans_fingerprint(space.len(), seeds, opts);
    let pending = open_stage(store, "kmeans", fingerprint, resume)?;
    let mut ckpt = KMeansCheckpointer { store, pending };
    kmeans_driver(space, seeds, opts, policy, obs, Some(&mut ckpt))
}

/// [`hac_obs`](crate::hac_obs) with durable checkpoints: every merge
/// decision is journaled as it is made, and — when `resume` is true —
/// journaled merges replay without rerunning their closest-pair scans. A
/// resumed run produces a bit-identical [`Partition`] to an uninterrupted
/// one. Fingerprinting and divergence behave as in [`kmeans_resumable`].
#[allow(clippy::too_many_arguments)]
pub fn hac_resumable<S>(
    space: &S,
    initial: &[Vec<usize>],
    opts: &HacOptions,
    policy: ExecPolicy,
    obs: &Obs,
    store: &mut Store,
    resume: bool,
) -> Result<Partition, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let fingerprint = hac_fingerprint(space.len(), initial, opts);
    let pending = open_stage(store, "hac", fingerprint, resume)?;
    let mut ckpt = HacCheckpointer { store, pending };
    hac_driver(space, initial, opts, policy, obs, Some(&mut ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hac::hac;
    use crate::kmeans::kmeans;
    use crate::space::DenseSpace;
    use cafc_store::{ChaosFs, FaultKind, FaultPlan, StdFs, StoreConfig};

    fn space() -> DenseSpace {
        // Three loose blobs so both algorithms take several steps.
        let mut points = Vec::new();
        for blob in 0..3 {
            for i in 0..6 {
                points.push(vec![blob as f64 * 10.0 + (i as f64) * 0.3]);
            }
        }
        DenseSpace::new(points)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cafc-cluster-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &std::path::Path) -> Store {
        Store::open(dir, StoreConfig::new(), Obs::disabled()).expect("open store")
    }

    #[test]
    fn kmeans_crash_and_resume_is_bit_identical() {
        let space = space();
        let seeds = vec![vec![0], vec![6], vec![12]];
        let opts = KMeansOptions::strict();
        let baseline = kmeans(&space, &seeds, &opts);

        let dir = tmp_dir("kmeans");
        for at in 0..6u64 {
            let _ = std::fs::remove_dir_all(&dir);
            let (chaos, _ctl) = ChaosFs::controlled(
                StdFs,
                FaultPlan::AtOp {
                    op: at,
                    kind: FaultKind::TornWrite,
                },
            );
            let mut store =
                Store::open_with_vfs(Box::new(chaos), &dir, StoreConfig::new(), Obs::disabled())
                    .expect("open");
            let crashed = kmeans_resumable(
                &space,
                &seeds,
                &opts,
                ExecPolicy::Serial,
                &Obs::disabled(),
                &mut store,
                false,
            );
            if let Ok(outcome) = crashed {
                assert_eq!(outcome.partition, baseline.partition);
                continue;
            }
            let mut store = store_at(&dir);
            let resumed = kmeans_resumable(
                &space,
                &seeds,
                &opts,
                ExecPolicy::Serial,
                &Obs::disabled(),
                &mut store,
                true,
            )
            .expect("resume");
            assert_eq!(resumed.partition, baseline.partition, "crash at op {at}");
            assert_eq!(resumed.iterations, baseline.iterations);
            assert_eq!(resumed.converged, baseline.converged);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hac_crash_and_resume_is_bit_identical_every_linkage() {
        let space = space();
        let dir = tmp_dir("hac");
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Centroid,
        ] {
            let opts = HacOptions {
                target_clusters: 3,
                linkage,
            };
            let baseline = hac(&space, &[], &opts);
            for at in 0..6u64 {
                let _ = std::fs::remove_dir_all(&dir);
                let (chaos, _ctl) = ChaosFs::controlled(
                    StdFs,
                    FaultPlan::AtOp {
                        op: at,
                        kind: FaultKind::NoSpace,
                    },
                );
                let mut store = Store::open_with_vfs(
                    Box::new(chaos),
                    &dir,
                    StoreConfig::new(),
                    Obs::disabled(),
                )
                .expect("open");
                let crashed = hac_resumable(
                    &space,
                    &[],
                    &opts,
                    ExecPolicy::Serial,
                    &Obs::disabled(),
                    &mut store,
                    false,
                );
                if let Ok(partition) = crashed {
                    assert_eq!(partition, baseline);
                    continue;
                }
                let mut store = store_at(&dir);
                let resumed = hac_resumable(
                    &space,
                    &[],
                    &opts,
                    ExecPolicy::Serial,
                    &Obs::disabled(),
                    &mut store,
                    true,
                )
                .expect("resume");
                assert_eq!(resumed, baseline, "{linkage:?} crash at op {at}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_inputs_is_refused() {
        let space = space();
        let seeds = vec![vec![0], vec![6], vec![12]];
        let opts = KMeansOptions::strict();
        let dir = tmp_dir("fp");
        let mut store = store_at(&dir);
        kmeans_resumable(
            &space,
            &seeds,
            &opts,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("first run");
        let err = kmeans_resumable(
            &space,
            &[vec![0], vec![6]],
            &opts,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            true,
        )
        .expect_err("different seeds must refuse to resume");
        assert!(
            matches!(err, StoreError::FingerprintMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_a_finished_run_replays_everything() {
        let space = space();
        let opts = HacOptions {
            target_clusters: 3,
            linkage: Linkage::Centroid,
        };
        let baseline = hac(&space, &[], &opts);
        let dir = tmp_dir("finished");
        let mut store = store_at(&dir);
        hac_resumable(
            &space,
            &[],
            &opts,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("first run");
        let resumed = hac_resumable(
            &space,
            &[],
            &opts,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            true,
        )
        .expect("resume of finished run");
        assert_eq!(resumed, baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
