//! K-means with the CAFC stopping rule (Algorithm 1 of the paper).
//!
//! The variant used by CAFC-C differs from textbook k-means in two ways
//! that we reproduce faithfully:
//!
//! * seeds are *clusters* (possibly multi-member — hub clusters in
//!   CAFC-CH), not necessarily single points;
//! * the loop stops when fewer than 10 % of items move between clusters,
//!   not on full convergence ("until fewer than 10 % of the form pages move
//!   across clusters").

use crate::partition::Partition;
use crate::resume::KMeansCheckpointer;
use crate::space::ClusterSpace;
use cafc_exec::{par_map_obs, ExecPolicy};
use cafc_obs::{Obs, FRACTION_BUCKETS};
use cafc_store::StoreError;

/// K-means options.
///
/// Construct with [`KMeansOptions::default`] (the paper's configuration)
/// plus the chainable `with_*` setters; the struct is `#[non_exhaustive]`
/// so future fields are not breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct KMeansOptions {
    /// Stop when the fraction of items that changed cluster in an iteration
    /// drops below this value (paper: 0.10).
    pub move_fraction_threshold: f64,
    /// Hard iteration cap (safety net; the paper's criterion converges in a
    /// handful of iterations on its data).
    pub max_iterations: usize,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        KMeansOptions {
            move_fraction_threshold: 0.10,
            max_iterations: 100,
        }
    }
}

impl KMeansOptions {
    /// The paper's configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the move-fraction stopping threshold.
    pub fn with_move_fraction_threshold(mut self, threshold: f64) -> Self {
        self.move_fraction_threshold = threshold;
        self
    }

    /// Set the hard iteration cap.
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Run to stability: a tiny move threshold and a generous iteration
    /// cap, for tests and experiments that want full convergence.
    pub fn strict() -> Self {
        Self::default()
            .with_move_fraction_threshold(1e-9)
            .with_max_iterations(100)
    }
}

/// K-means result.
#[derive(Debug, Clone)]
pub struct KMeansOutcome {
    /// Final partition of all items into `k` clusters (some possibly empty).
    pub partition: Partition,
    /// Number of assignment iterations performed.
    pub iterations: usize,
    /// Whether the move-fraction criterion was met on a non-empty input.
    /// `false` when the loop stopped on the iteration cap **and** when
    /// there were no items to converge on (`n == 0`) — an empty input never
    /// satisfied the criterion, it just had nothing to do.
    pub converged: bool,
}

/// Run k-means from the given seed clusters.
///
/// `seeds` supplies the initial clusters whose centroids start the loop;
/// member indices must be valid items of `space`. All items (including any
/// not mentioned in `seeds`) are assigned in the first iteration.
///
/// Degenerate inputs fall back gracefully instead of panicking (adversarial
/// corpora routinely produce them — see DESIGN.md §8): empty seed clusters
/// are dropped, and when no usable seed remains the result is a single
/// cluster holding every item (empty for an empty space).
pub fn kmeans<S>(space: &S, seeds: &[Vec<usize>], opts: &KMeansOptions) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_exec(space, seeds, opts, ExecPolicy::Serial)
}

/// Run k-means from the given seed clusters under an explicit execution
/// policy.
///
/// Identical semantics to [`kmeans`] (which delegates here with
/// [`ExecPolicy::Serial`]); the assignment step and the per-cluster
/// centroid rebuild fan out across threads. Results are bit-identical for
/// every policy: assignments are an order-preserving [`par_map`] and the
/// centroid of each cluster is computed by one closure regardless of the
/// thread count.
pub fn kmeans_exec<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_obs(space, seeds, opts, policy, &Obs::disabled())
}

/// Run k-means under an explicit execution policy with instrumentation.
///
/// Identical semantics (and bit-identical output) to [`kmeans_exec`],
/// which delegates here with [`Obs::disabled`]. Emits, when `obs` has a
/// sink: spans `kmeans.assign` / `kmeans.update` (orchestrating thread,
/// aggregated across iterations), counter `kmeans.iterations`, gauge
/// `kmeans.converged` (0/1), and histogram `kmeans.moved_fraction` (one
/// observation per iteration over [`FRACTION_BUCKETS`]).
pub fn kmeans_obs<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
    obs: &Obs,
) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    match kmeans_driver(space, seeds, opts, policy, obs, None) {
        Ok(outcome) => outcome,
        // Unreachable: the driver only fails through a checkpointer.
        Err(_) => KMeansOutcome {
            partition: Partition::new(Vec::new(), space.len()),
            iterations: 0,
            converged: false,
        },
    }
}

/// The dense reference assignment: every item scores against every
/// centroid, deterministic argmax (initial best 0, strict `>`, so ties and
/// non-finite similarities resolve to the lowest cluster index). The
/// sparse kernel (`sparse.rs`) reproduces these exact assignments while
/// skipping zero-overlap pairs.
pub(crate) fn dense_assign<S>(
    space: &S,
    centroids: &[S::Centroid],
    policy: ExecPolicy,
    obs: &Obs,
) -> Vec<usize>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    par_map_obs(policy, space.len(), obs, "kmeans.assign", |item| {
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let sim = space.similarity(centroid, item);
            if sim > best_sim {
                best_sim = sim;
                best = c;
            }
        }
        best
    })
}

/// The k-means loop proper, shared by the plain entry points (no
/// checkpointer) and [`kmeans_resumable`](crate::kmeans_resumable): the
/// checkpointer journals every iteration's assignment vector and, on
/// resume, replays journaled iterations instead of recomputing the
/// O(n·k) similarity pass. Centroids are rebuilt from the assignments
/// either way, so replayed and live iterations are bit-identical.
pub(crate) fn kmeans_driver<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
    obs: &Obs,
    ckpt: Option<&mut KMeansCheckpointer<'_>>,
) -> Result<KMeansOutcome, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_driver_with(space, seeds, opts, policy, obs, ckpt, &dense_assign)
}

/// [`kmeans_driver`] generic over the assignment step: `assign` maps the
/// current centroids to one cluster index per item. Every strategy must
/// reproduce the dense reference assignments bit-for-bit (the sparse
/// kernel's contract — see `sparse.rs`); the loop around it (move
/// counting, centroid rebuild, stopping rule, checkpoint journaling) is
/// shared so strategies can never diverge on anything but the O(n·k)
/// similarity pass they optimize.
pub(crate) fn kmeans_driver_with<S, A>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
    obs: &Obs,
    mut ckpt: Option<&mut KMeansCheckpointer<'_>>,
    assign: &A,
) -> Result<KMeansOutcome, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
    A: Fn(&S, &[S::Centroid], ExecPolicy, &Obs) -> Vec<usize>,
{
    let n = space.len();
    let seeds: Vec<&Vec<usize>> = seeds.iter().filter(|s| !s.is_empty()).collect();
    if seeds.is_empty() {
        let clusters = if n == 0 {
            Vec::new()
        } else {
            vec![(0..n).collect()]
        };
        return Ok(KMeansOutcome {
            partition: Partition::new(clusters, n),
            iterations: 0,
            // The single-cluster fallback is trivially stable, but an empty
            // input never met the criterion — there was nothing to cluster.
            converged: n > 0,
        });
    }
    let k = seeds.len();
    let mut centroids: Vec<S::Centroid> = seeds.iter().map(|s| space.centroid(s)).collect();

    // usize::MAX marks "not yet assigned" so the first pass counts all items
    // as moved.
    let mut assignment = vec![usize::MAX; n];
    let mut iterations = 0;
    let mut converged = false;

    // A cap of 0 would leave items unassigned (usize::MAX); always run at
    // least one assignment pass.
    while iterations < opts.max_iterations.max(1) {
        iterations += 1;
        obs.incr("kmeans.iterations");
        // A journaled iteration from an interrupted run replays its
        // recorded assignments, skipping the O(n·k) similarity pass.
        let replayed = match ckpt.as_mut() {
            Some(c) => c.replay_iteration(iterations - 1, n, k)?,
            None => None,
        };
        // Deterministic argmax per item: ties (and non-finite similarities,
        // which never compare greater) resolve to the lowest cluster index.
        // Order-preserving map -> identical assignments for every policy.
        let best_of = match replayed {
            Some(assignments) => assignments,
            None => {
                let best_of = {
                    let _span = obs.span("kmeans.assign");
                    assign(space, &centroids, policy, obs)
                };
                if let Some(c) = ckpt.as_mut() {
                    c.record_iteration(iterations - 1, &best_of)?;
                }
                best_of
            }
        };
        let mut moved = 0usize;
        for (assigned, best) in assignment.iter_mut().zip(best_of) {
            if *assigned != best {
                moved += 1;
                *assigned = best;
            }
        }
        // Recompute centroids (one closure per cluster — the reduction over
        // a cluster's members never splits, so its float accumulation order
        // is fixed); a starved cluster keeps its previous centroid so it can
        // re-acquire items later.
        let update_span = obs.span("kmeans.update");
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (item, &c) in assignment.iter().enumerate() {
            members[c].push(item);
        }
        let rebuilt = par_map_obs(policy, k, obs, "kmeans.update", |c| {
            let m = &members[c];
            (!m.is_empty()).then(|| space.centroid(m))
        });
        for (c, rebuilt) in rebuilt.into_iter().enumerate() {
            if let Some(centroid) = rebuilt {
                centroids[c] = centroid;
            }
        }
        drop(update_span);
        if n == 0 {
            // No items: nothing can converge, and no further iteration can
            // change that. (Unreachable with valid seeds, which must index
            // into the space, but degenerate inputs take this exit.)
            break;
        }
        let moved_fraction = (moved as f64) / (n as f64);
        obs.observe_in("kmeans.moved_fraction", &FRACTION_BUCKETS, moved_fraction);
        if moved_fraction < opts.move_fraction_threshold {
            converged = true;
            break;
        }
    }

    if let Some(c) = ckpt.as_mut() {
        c.finish(iterations)?;
    }
    obs.gauge("kmeans.converged", if converged { 1.0 } else { 0.0 });
    let partition = Partition::from_assignments(&assignment, k);
    Ok(KMeansOutcome {
        partition,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;

    /// Two well-separated 1-D blobs.
    fn blobs() -> DenseSpace {
        DenseSpace::new(vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
            vec![10.1],
            vec![10.2],
        ])
    }

    fn strict() -> KMeansOptions {
        // move threshold tiny -> run to stability
        KMeansOptions::strict()
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let space = blobs();
        let baseline = kmeans_exec(&space, &[vec![0], vec![3]], &strict(), ExecPolicy::Serial);
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let out = kmeans_exec(&space, &[vec![0], vec![3]], &strict(), policy);
            assert_eq!(out.partition, baseline.partition, "{policy:?}");
            assert_eq!(out.iterations, baseline.iterations, "{policy:?}");
        }
    }

    #[test]
    fn separates_blobs() {
        let space = blobs();
        let out = kmeans(&space, &[vec![0], vec![3]], &strict());
        assert!(out.converged);
        let clusters = out.partition.clusters();
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn recovers_from_bad_seeds_in_same_blob() {
        let space = blobs();
        // Both seeds in the left blob; the right blob initially joins the
        // nearer seed, then pulls its centroid across.
        let out = kmeans(&space, &[vec![0], vec![2]], &strict());
        let clusters = out.partition.clusters();
        // All six items assigned.
        assert_eq!(out.partition.num_assigned(), 6);
        // The two blobs never share a cluster with each other... actually
        // with seeds 0 and 2 the split is {0,1} / {2,3,4,5} at first, and
        // converges to blob-pure clusters.
        assert!(
            clusters
                .iter()
                .all(|c| { c.iter().all(|&i| i < 3) || c.iter().all(|&i| i >= 3) }),
            "clusters mix blobs: {clusters:?}"
        );
    }

    #[test]
    fn multi_member_seed_clusters() {
        let space = blobs();
        let out = kmeans(&space, &[vec![0, 1, 2], vec![3, 4, 5]], &strict());
        // Iteration 1 assigns everyone (all "move" from unassigned);
        // iteration 2 confirms stability.
        assert_eq!(
            out.iterations, 2,
            "perfect seeds converge after the confirming pass"
        );
        assert_eq!(out.partition.clusters()[0], vec![0, 1, 2]);
    }

    #[test]
    fn paper_stopping_rule_stops_early() {
        let space = blobs();
        // 10% of 6 items = 0.6 -> stops as soon as <1 item moves... the
        // first pass moves all 6, so it needs at least 2 iterations.
        let out = kmeans(&space, &[vec![0], vec![3]], &KMeansOptions::default());
        assert!(out.converged);
        assert!(out.iterations >= 2);
    }

    #[test]
    fn k_equals_one() {
        let space = blobs();
        let out = kmeans(&space, &[vec![0]], &strict());
        assert_eq!(out.partition.clusters()[0].len(), 6);
    }

    #[test]
    fn deterministic() {
        let space = blobs();
        let a = kmeans(&space, &[vec![1], vec![4]], &strict());
        let b = kmeans(&space, &[vec![1], vec![4]], &strict());
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn single_item_space() {
        let space = DenseSpace::new(vec![vec![1.0]]);
        let out = kmeans(&space, &[vec![0]], &strict());
        assert_eq!(out.partition.clusters(), &[vec![0]]);
        assert!(out.converged);
    }

    #[test]
    fn no_seeds_falls_back_to_single_cluster() {
        let space = blobs();
        let out = kmeans(&space, &[], &strict());
        assert!(out.converged);
        assert_eq!(out.partition.clusters(), &[vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn empty_seed_clusters_are_dropped() {
        let space = blobs();
        // One empty + one usable seed: behaves like k = 1.
        let out = kmeans(&space, &[vec![], vec![0]], &strict());
        assert_eq!(out.partition.clusters().len(), 1);
        assert_eq!(out.partition.num_assigned(), 6);
        // All seeds empty: same single-cluster fallback as no seeds at all.
        let out = kmeans(&space, &[vec![]], &strict());
        assert_eq!(out.partition.clusters(), &[vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn empty_space_yields_empty_partition() {
        let space = DenseSpace::new(Vec::new());
        let out = kmeans(&space, &[], &strict());
        assert!(
            !out.converged,
            "an empty input never met the move criterion"
        );
        assert!(out.partition.clusters().is_empty());
    }

    #[test]
    fn iteration_cap_exit_reports_not_converged() {
        let space = blobs();
        // One pass assigns all 6 items (all "move" from unassigned), so the
        // strict criterion cannot be met within a single iteration.
        let opts = KMeansOptions::strict().with_max_iterations(1);
        let out = kmeans(&space, &[vec![0], vec![3]], &opts);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged, "cap exit must not claim convergence");
        assert_eq!(out.partition.num_assigned(), 6);
    }

    #[test]
    fn max_iterations_one_can_still_converge() {
        let space = blobs();
        // The default 10% threshold is also unreachable in one pass, but a
        // threshold above 1.0 is satisfied by any pass.
        let opts = KMeansOptions::new()
            .with_move_fraction_threshold(1.1)
            .with_max_iterations(1);
        let out = kmeans(&space, &[vec![0], vec![3]], &opts);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn max_iterations_zero_is_clamped_to_one_pass() {
        // A literal 0 cap must not leave items unassigned (or panic); it
        // behaves like a cap of 1 and reports the cap exit.
        let space = blobs();
        let opts = KMeansOptions::strict().with_max_iterations(0);
        let out = kmeans(&space, &[vec![0], vec![3]], &opts);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
        assert_eq!(out.partition.num_assigned(), 6);
    }

    #[test]
    fn obs_instrumentation_does_not_perturb_results() {
        let space = blobs();
        let plain = kmeans_exec(&space, &[vec![0], vec![3]], &strict(), ExecPolicy::Serial);
        let obs = cafc_obs::Obs::enabled();
        let instrumented = kmeans_obs(
            &space,
            &[vec![0], vec![3]],
            &strict(),
            ExecPolicy::Serial,
            &obs,
        );
        assert_eq!(instrumented.partition, plain.partition);
        assert_eq!(instrumented.iterations, plain.iterations);
        let snap = obs.snapshot();
        let iters = snap
            .counters
            .iter()
            .find(|(name, _)| name == "kmeans.iterations")
            .map(|(_, v)| *v);
        assert_eq!(iters, Some(plain.iterations as u64));
        assert!(snap
            .histograms
            .iter()
            .any(|(name, _)| name == "kmeans.moved_fraction"));
    }
}
