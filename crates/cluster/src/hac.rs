//! Hierarchical agglomerative clustering (§4.3 of the paper).
//!
//! "HAC starts with the individual documents as initial clusters and, at
//! each step, combines the closest pair of clusters." Table 2 also runs
//! HAC *from hub clusters*, so [`hac`] accepts an arbitrary starting
//! partition. Cluster distance is `1 − similarity` under the chosen
//! [`Linkage`].
//!
//! Complexity is O(g² · n) in the number of starting groups `g` for the
//! pairwise linkages (via Lance–Williams updates) — entirely adequate for
//! the paper's 454-page corpus and our benchmark sweeps.

use crate::partition::Partition;
use crate::resume::HacCheckpointer;
use crate::space::ClusterSpace;
use cafc_exec::{par_map, par_map_obs, ExecPolicy};
use cafc_obs::Obs;
use cafc_store::StoreError;

/// Linkage criterion: how the distance between two clusters is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise item distance.
    Single,
    /// Maximum pairwise item distance.
    Complete,
    /// Unweighted average pairwise item distance (UPGMA).
    Average,
    /// Distance between cluster centroids (recomputed on merge) — matches
    /// the paper's Equation 3/4 machinery most directly.
    Centroid,
}

/// HAC options.
#[derive(Debug, Clone, Copy)]
pub struct HacOptions {
    /// Stop when this many clusters remain.
    pub target_clusters: usize,
    /// Linkage criterion (default: centroid, like the paper's k-means side).
    pub linkage: Linkage,
}

impl Default for HacOptions {
    fn default() -> Self {
        HacOptions {
            target_clusters: 8,
            linkage: Linkage::Centroid,
        }
    }
}

/// Run HAC down to `opts.target_clusters` clusters.
///
/// `initial` is the starting partition: pass one singleton per item for
/// classic HAC, or hub clusters plus singletons for the seeded variant.
/// Items absent from `initial` are added as singletons automatically.
pub fn hac<S>(space: &S, initial: &[Vec<usize>], opts: &HacOptions) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    hac_exec(space, initial, opts, ExecPolicy::Serial)
}

/// Run HAC under an explicit execution policy.
///
/// Identical semantics (and bit-identical output) to [`hac`], which
/// delegates here with [`ExecPolicy::Serial`]. The O(g²) pairwise distance
/// matrix and the per-step closest-pair scans fan out by matrix row;
/// per-row partial argmins are merged in row order, so ties resolve to the
/// lexicographically smallest pair for every policy — exactly the serial
/// scan order.
pub fn hac_exec<S>(
    space: &S,
    initial: &[Vec<usize>],
    opts: &HacOptions,
    policy: ExecPolicy,
) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    hac_obs(space, initial, opts, policy, &Obs::disabled())
}

/// Run HAC under an explicit execution policy with instrumentation.
///
/// Identical semantics (and bit-identical output) to [`hac_exec`], which
/// delegates here with [`Obs::disabled`]. Emits, when `obs` has a sink:
/// counter `hac.merges` (one per merge step), gauges `hac.initial_groups`
/// / `hac.final_groups`, and a `hac.merge_scan` span aggregating the
/// closest-pair scans (plus `hac.dissimilarity_matrix` for the pairwise
/// linkages' O(g²) initialization).
pub fn hac_obs<S>(
    space: &S,
    initial: &[Vec<usize>],
    opts: &HacOptions,
    policy: ExecPolicy,
    obs: &Obs,
) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    match hac_driver(space, initial, opts, policy, obs, None) {
        Ok(partition) => partition,
        // Unreachable: the driver only fails through a checkpointer.
        Err(_) => Partition::new(Vec::new(), space.len()),
    }
}

/// The HAC loop proper, shared by the plain entry points (no checkpointer)
/// and [`hac_resumable`](crate::hac_resumable): the checkpointer journals
/// every merge decision and, on resume, replays journaled merges instead
/// of rerunning the closest-pair scans. Replayed and live merges mutate
/// the groups identically, so the final partition is bit-identical.
pub(crate) fn hac_driver<S>(
    space: &S,
    initial: &[Vec<usize>],
    opts: &HacOptions,
    policy: ExecPolicy,
    obs: &Obs,
    ckpt: Option<&mut HacCheckpointer<'_>>,
) -> Result<Partition, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let n = space.len();
    let mut groups: Vec<Vec<usize>> = initial.iter().filter(|g| !g.is_empty()).cloned().collect();
    // Add unassigned items as singletons.
    let mut seen = vec![false; n];
    for g in &groups {
        for &m in g {
            seen[m] = true;
        }
    }
    for (item, &s) in seen.iter().enumerate() {
        if !s {
            groups.push(vec![item]);
        }
    }
    obs.gauge("hac.initial_groups", groups.len() as f64);
    if groups.len() <= opts.target_clusters {
        obs.gauge("hac.final_groups", groups.len() as f64);
        return Ok(Partition::new(groups, n));
    }

    let partition = match opts.linkage {
        Linkage::Centroid => {
            hac_centroid(space, groups, opts.target_clusters, n, policy, obs, ckpt)?
        }
        _ => hac_pairwise(space, groups, opts, n, policy, obs, ckpt)?,
    };
    obs.gauge("hac.final_groups", partition.num_clusters() as f64);
    Ok(partition)
}

/// Centroid linkage: merge the pair with the most similar centroids and
/// recompute the merged centroid.
#[allow(clippy::too_many_arguments)]
fn hac_centroid<S>(
    space: &S,
    mut groups: Vec<Vec<usize>>,
    target: usize,
    n: usize,
    policy: ExecPolicy,
    obs: &Obs,
    mut ckpt: Option<&mut HacCheckpointer<'_>>,
) -> Result<Partition, StoreError>
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let mut centroids: Vec<S::Centroid> =
        par_map(policy, groups.len(), |g| space.centroid(&groups[g]));
    let mut step: u64 = 0;
    // `target` may be 0; a lone group cannot merge further.
    while groups.len() > target.max(1) {
        let _scan = obs.span("hac.merge_scan");
        obs.incr("hac.merges");
        // A journaled merge from an interrupted run replays directly,
        // skipping the closest-pair scan.
        let replayed = match ckpt.as_mut() {
            Some(c) => c.replay_merge(step, |i, j| i < j && j < groups.len())?,
            None => None,
        };
        let (bi, bj) = match replayed {
            Some(pair) => pair,
            None => {
                // Per-row argmax over j > i (strict `>`: first maximum wins
                // within a row), merged in row order — same winner as the
                // serial double loop.
                let row_best = par_map(policy, groups.len(), |i| {
                    let mut best = (f64::NEG_INFINITY, usize::MAX);
                    for j in (i + 1)..groups.len() {
                        let sim = space.centroid_similarity(&centroids[i], &centroids[j]);
                        if sim > best.0 {
                            best = (sim, j);
                        }
                    }
                    best
                });
                let (mut bi, mut bj, mut best) = (0, 1, f64::NEG_INFINITY);
                for (i, &(sim, j)) in row_best.iter().enumerate() {
                    if j != usize::MAX && sim > best {
                        best = sim;
                        bi = i;
                        bj = j;
                    }
                }
                if let Some(c) = ckpt.as_mut() {
                    c.record_merge(step, bi, bj)?;
                }
                (bi, bj)
            }
        };
        step += 1;
        let merged_members = {
            let mut m = groups[bi].clone();
            m.extend_from_slice(&groups[bj]);
            m
        };
        // Remove j first (j > i) to keep indices valid.
        groups.remove(bj);
        centroids.remove(bj);
        groups[bi] = merged_members;
        centroids[bi] = space.centroid(&groups[bi]);
    }
    if let Some(c) = ckpt.as_mut() {
        c.finish(step)?;
    }
    Ok(Partition::new(groups, n))
}

/// Single/complete/average linkage over a pairwise distance matrix with
/// Lance–Williams updates.
#[allow(clippy::too_many_arguments)]
fn hac_pairwise<S>(
    space: &S,
    mut groups: Vec<Vec<usize>>,
    opts: &HacOptions,
    n: usize,
    policy: ExecPolicy,
    obs: &Obs,
    mut ckpt: Option<&mut HacCheckpointer<'_>>,
) -> Result<Partition, StoreError>
where
    S: ClusterSpace + Sync,
{
    let g = groups.len();
    // dist[i][j] for i<j; initialized from linkage over item pairs. Each
    // row is one closure, so the matrix is identical for every policy.
    let matrix_span = obs.span("hac.dissimilarity_matrix");
    let upper = par_map_obs(policy, g, obs, "hac.dissimilarity_matrix", |i| {
        ((i + 1)..g)
            .map(|j| group_distance(space, &groups[i], &groups[j], opts.linkage))
            .collect::<Vec<f64>>()
    });
    drop(matrix_span);
    let mut dist = vec![vec![0.0f64; g]; g];
    for (i, row) in upper.into_iter().enumerate() {
        for (off, d) in row.into_iter().enumerate() {
            let j = i + 1 + off;
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let mut alive: Vec<bool> = vec![true; g];
    let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    let mut remaining = g;

    let mut step: u64 = 0;
    while remaining > opts.target_clusters {
        let _scan = obs.span("hac.merge_scan");
        // A journaled merge from an interrupted run replays directly,
        // skipping the closest-pair scan.
        let replayed = match ckpt.as_mut() {
            Some(c) => c.replay_merge(step, |i, j| i < j && j < g && alive[i] && alive[j])?,
            None => None,
        };
        let (bi, bj) = match replayed {
            Some(pair) => pair,
            None => {
                // Find the closest live pair: per-row argmin (strict `<`,
                // first minimum wins), rows merged in index order — the
                // serial scan order.
                let row_best = par_map(policy, g, |i| {
                    if !alive[i] {
                        return (f64::INFINITY, usize::MAX);
                    }
                    let mut best = (f64::INFINITY, usize::MAX);
                    for j in (i + 1)..g {
                        if alive[j] && dist[i][j] < best.0 {
                            best = (dist[i][j], j);
                        }
                    }
                    best
                });
                let (mut bi, mut bj, mut best) = (usize::MAX, usize::MAX, f64::INFINITY);
                for (i, &(d, j)) in row_best.iter().enumerate() {
                    if j != usize::MAX && d < best {
                        best = d;
                        bi = i;
                        bj = j;
                    }
                }
                if bi == usize::MAX {
                    break; // fewer than two live groups (target_clusters of 0)
                }
                if let Some(c) = ckpt.as_mut() {
                    c.record_merge(step, bi, bj)?;
                }
                (bi, bj)
            }
        };
        step += 1;
        // Merge bj into bi, updating distances by Lance–Williams.
        for k in 0..g {
            if !alive[k] || k == bi || k == bj {
                continue;
            }
            let dik = dist[bi][k];
            let djk = dist[bj][k];
            let d = match opts.linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => {
                    let (si, sj) = (sizes[bi] as f64, sizes[bj] as f64);
                    (si * dik + sj * djk) / (si + sj)
                }
                // hac() routes centroid linkage to hac_centroid; if that
                // ever changes, the unweighted average is a sane stand-in.
                Linkage::Centroid => (dik + djk) / 2.0,
            };
            dist[bi][k] = d;
            dist[k][bi] = d;
        }
        let moved = std::mem::take(&mut groups[bj]);
        groups[bi].extend(moved);
        sizes[bi] += sizes[bj];
        alive[bj] = false;
        remaining -= 1;
        obs.incr("hac.merges");
    }
    if let Some(c) = ckpt.as_mut() {
        c.finish(step)?;
    }
    let final_groups: Vec<Vec<usize>> = groups
        .into_iter()
        .zip(alive)
        .filter(|(_, a)| *a)
        .map(|(g, _)| g)
        .collect();
    Ok(Partition::new(final_groups, n))
}

/// Initial inter-group distance under a pairwise linkage.
fn group_distance<S: ClusterSpace>(space: &S, a: &[usize], b: &[usize], linkage: Linkage) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for &x in a {
        for &y in b {
            let d = 1.0 - space.item_similarity(x, y);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
    }
    match linkage {
        Linkage::Single => min,
        Linkage::Complete => max,
        // Also covers the centroid fallback path (see hac_pairwise).
        Linkage::Average | Linkage::Centroid => sum / count.max(1) as f64,
    }
}

/// Convenience: classic HAC from singletons.
pub fn hac_from_singletons<S>(space: &S, opts: &HacOptions) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    hac(space, &[], opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;

    fn blobs() -> DenseSpace {
        DenseSpace::new(vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
            vec![10.1],
            vec![10.2],
        ])
    }

    fn sorted(p: &Partition) -> Vec<Vec<usize>> {
        let mut cs: Vec<Vec<usize>> = p
            .clusters()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        cs.sort();
        cs
    }

    #[test]
    fn separates_blobs_every_linkage() {
        let space = blobs();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Centroid,
        ] {
            let p = hac_from_singletons(
                &space,
                &HacOptions {
                    target_clusters: 2,
                    linkage,
                },
            );
            assert_eq!(
                sorted(&p),
                vec![vec![0, 1, 2], vec![3, 4, 5]],
                "linkage {linkage:?} failed"
            );
        }
    }

    #[test]
    fn respects_target_cluster_count() {
        let space = blobs();
        for target in 1..=6 {
            let p = hac_from_singletons(
                &space,
                &HacOptions {
                    target_clusters: target,
                    linkage: Linkage::Average,
                },
            );
            assert_eq!(p.num_clusters(), target);
            assert_eq!(p.num_assigned(), 6);
        }
    }

    #[test]
    fn seeded_start_preserves_groups() {
        let space = blobs();
        // Start with {0,1,2} pre-grouped; remaining items join as singletons.
        let p = hac(
            &space,
            &[vec![0, 1, 2]],
            &HacOptions {
                target_clusters: 2,
                linkage: Linkage::Centroid,
            },
        );
        let cs = sorted(&p);
        assert_eq!(cs, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn initial_already_coarse_enough() {
        let space = blobs();
        let init = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let p = hac(
            &space,
            &init,
            &HacOptions {
                target_clusters: 4,
                linkage: Linkage::Average,
            },
        );
        // Only 2 groups supplied and target is 4 -> returned unchanged plus
        // nothing (all items covered).
        assert_eq!(p.num_clusters(), 2);
    }

    #[test]
    fn empty_groups_in_initial_ignored() {
        let space = blobs();
        let p = hac(
            &space,
            &[vec![], vec![0, 1]],
            &HacOptions {
                target_clusters: 2,
                linkage: Linkage::Average,
            },
        );
        assert_eq!(p.num_assigned(), 6);
        assert_eq!(p.num_clusters(), 2);
    }

    #[test]
    fn deterministic() {
        let space = blobs();
        let o = HacOptions {
            target_clusters: 3,
            linkage: Linkage::Average,
        };
        assert_eq!(
            hac_from_singletons(&space, &o),
            hac_from_singletons(&space, &o)
        );
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let space = blobs();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Centroid,
        ] {
            let o = HacOptions {
                target_clusters: 2,
                linkage,
            };
            let baseline = hac_exec(&space, &[], &o, ExecPolicy::Serial);
            for policy in [
                ExecPolicy::Parallel { threads: 1 },
                ExecPolicy::Parallel { threads: 7 },
                ExecPolicy::Auto,
            ] {
                assert_eq!(
                    hac_exec(&space, &[], &o, policy),
                    baseline,
                    "{linkage:?} under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn single_linkage_chains() {
        // A chain 0-1-2-3 with equal gaps plus a far point: single linkage
        // merges the chain before the outlier.
        let space = DenseSpace::new(vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![100.0],
        ]);
        let p = hac_from_singletons(
            &space,
            &HacOptions {
                target_clusters: 2,
                linkage: Linkage::Single,
            },
        );
        assert_eq!(sorted(&p), vec![vec![0, 1, 2, 3], vec![4]]);
    }
}
