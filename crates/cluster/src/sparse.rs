//! Sparse k-means assignment over an inverted term → candidate-centroid
//! index: items only score against centroids they share at least one term
//! with, and zero-overlap pairs are skipped entirely.
//!
//! At the paper's 454 pages the dense O(n·k) similarity pass is free; at
//! 10^5–10^6 pages it is the batch pipeline's bottleneck (ROADMAP item 3).
//! Term vectors are sparse — a page carries a few hundred distinct terms
//! out of a six-figure vocabulary — so most (item, centroid) pairs share
//! no vocabulary and their cosine is *exactly* `0.0`. The kernel exploits
//! that without changing a single output bit.
//!
//! # The bit-equality contract
//!
//! A [`SparseClusterSpace`] promises, for every item/centroid pair:
//!
//! 1. similarities are in `[0, 1]` (never negative, never NaN), and
//! 2. a pair whose term-key sets are disjoint has similarity exactly
//!    `0.0`.
//!
//! Under those two facts the dense reference argmax (initial best 0,
//! strict `>`, ties to the lowest index — see
//! [`dense_assign`](crate::kmeans::dense_assign)) is reproduced exactly
//! by scoring only the candidate centroids that share a term with the
//! item, in ascending index order, and falling back to cluster 0 when no
//! candidate scores strictly above `0.0`: every skipped centroid would
//! have contributed exactly `0.0`, which only wins when *nothing* exceeds
//! it, in which case the dense loop keeps its initial `best = 0`.
//!
//! Both properties hold for the CAFC form-page space: TF-IDF weights are
//! non-negative, cosines are clamped to `[0, 1]`, and Equation 3 averages
//! them with non-negative weights (see `FeatureConfig` in the core
//! crate). A differential oracle in `tests/props.rs` and the scale tier
//! (`tests/scale.rs`) pin sparse ≡ dense on random corpora, including
//! all-zero-overlap documents.

use crate::kmeans::{kmeans_driver_with, KMeansOptions, KMeansOutcome};
use crate::partition::Partition;
use crate::space::ClusterSpace;
use cafc_exec::{par_map_obs, ExecPolicy};
use cafc_obs::Obs;
use std::collections::HashMap;

/// A [`ClusterSpace`] whose similarity is driven by sparse term overlap.
///
/// `u64` term keys are opaque to the kernel; a multi-feature-space
/// implementation disambiguates its spaces by tagging key ranges (the
/// core crate packs a space tag into the high bits). Implementations
/// must uphold the two facts in the [module docs](self): similarities in
/// `[0, 1]`, and disjoint key sets ⇒ similarity exactly `0.0`.
pub trait SparseClusterSpace: ClusterSpace {
    /// Invoke `f` once per term key of `item` (order and duplicates are
    /// irrelevant; the kernel deduplicates).
    fn for_each_item_term(&self, item: usize, f: &mut dyn FnMut(u64));

    /// Invoke `f` once per term key of `centroid`.
    fn for_each_centroid_term(&self, centroid: &Self::Centroid, f: &mut dyn FnMut(u64));
}

/// The inverted index for one assignment pass: term key → centroid
/// indices carrying that term, in ascending centroid order.
///
/// Rebuilt once per iteration (centroids move); each build is
/// O(Σ nnz(centroid)), far below the dense pass it replaces.
#[derive(Debug, Default)]
pub struct CandidateIndex {
    postings: HashMap<u64, Vec<usize>>,
}

impl CandidateIndex {
    /// Index `centroids` of `space`.
    pub fn build<S: SparseClusterSpace>(space: &S, centroids: &[S::Centroid]) -> CandidateIndex {
        let mut postings: HashMap<u64, Vec<usize>> = HashMap::new();
        for (c, centroid) in centroids.iter().enumerate() {
            // Ascending `c` keeps every posting list sorted by construction.
            space.for_each_centroid_term(centroid, &mut |term| {
                let list = postings.entry(term).or_default();
                if list.last() != Some(&c) {
                    list.push(c);
                }
            });
        }
        CandidateIndex { postings }
    }

    /// Distinct term keys indexed.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// The centroids sharing at least one term with `item`, ascending and
    /// deduplicated. `scratch` is a reusable `seen` buffer of length ≥ k
    /// (cleared on return).
    fn candidates_for<S: SparseClusterSpace>(
        &self,
        space: &S,
        item: usize,
        scratch: &mut [bool],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        space.for_each_item_term(item, &mut |term| {
            if let Some(list) = self.postings.get(&term) {
                for &c in list {
                    if !scratch[c] {
                        scratch[c] = true;
                        out.push(c);
                    }
                }
            }
        });
        out.sort_unstable();
        for &c in out.iter() {
            scratch[c] = false;
        }
    }
}

/// The sparse assignment pass: bit-identical to
/// [`dense_assign`](crate::kmeans::dense_assign) for spaces upholding the
/// [`SparseClusterSpace`] contract, for every [`ExecPolicy`].
pub(crate) fn sparse_assign<S>(
    space: &S,
    centroids: &[S::Centroid],
    policy: ExecPolicy,
    obs: &Obs,
) -> Vec<usize>
where
    S: SparseClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let index = CandidateIndex::build(space, centroids);
    let k = centroids.len();
    par_map_obs(policy, space.len(), obs, "kmeans.assign", |item| {
        let mut scratch = vec![false; k];
        let mut candidates = Vec::new();
        index.candidates_for(space, item, &mut scratch, &mut candidates);
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for &c in &candidates {
            let sim = space.similarity(&centroids[c], item);
            if sim > best_sim {
                best_sim = sim;
                best = c;
            }
        }
        // Every non-candidate scores exactly 0.0; the dense argmax keeps
        // its initial `best = 0` unless some centroid beats that.
        if best_sim > 0.0 {
            best
        } else {
            0
        }
    })
}

/// [`kmeans`](crate::kmeans) with the sparse assignment kernel:
/// bit-identical outcome, zero-overlap pairs skipped.
pub fn kmeans_sparse<S>(space: &S, seeds: &[Vec<usize>], opts: &KMeansOptions) -> KMeansOutcome
where
    S: SparseClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_sparse_exec(space, seeds, opts, ExecPolicy::Serial)
}

/// [`kmeans_sparse`] under an explicit execution policy; bit-identical to
/// every other policy and to the dense kernel.
pub fn kmeans_sparse_exec<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
) -> KMeansOutcome
where
    S: SparseClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_sparse_obs(space, seeds, opts, policy, &Obs::disabled())
}

/// [`kmeans_sparse_exec`] with instrumentation — the same metrics as
/// [`kmeans_obs`](crate::kmeans_obs), so sparse and dense runs produce
/// comparable snapshots.
pub fn kmeans_sparse_obs<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    policy: ExecPolicy,
    obs: &Obs,
) -> KMeansOutcome
where
    S: SparseClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    match kmeans_driver_with(space, seeds, opts, policy, obs, None, &sparse_assign) {
        Ok(outcome) => outcome,
        // Unreachable: the driver only fails through a checkpointer.
        Err(_) => KMeansOutcome {
            partition: Partition::new(Vec::new(), space.len()),
            iterations: 0,
            converged: false,
        },
    }
}

/// A dense [`ClusterSpace`] adapter is deliberately **not** provided:
/// [`DenseSpace`](crate::space::DenseSpace)'s Euclidean-kernel similarity
/// `1 / (1 + d)` is strictly positive for every finite pair, so no
/// (item, centroid) pair can ever be skipped and an inverted index would
/// add cost without removing any work. Sparse pruning requires a
/// similarity that is exactly zero on disjoint support — cosine over
/// non-negative sparse vectors, not a distance kernel.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans_exec;

    /// A minimal sparse space over term-id lists with uniform weights:
    /// cosine = |a ∩ b| / sqrt(|a| · |b|) via sparse vectors of 1.0s.
    struct TermSetSpace {
        docs: Vec<Vec<u64>>,
    }

    impl TermSetSpace {
        fn new(docs: Vec<Vec<u64>>) -> Self {
            let docs = docs
                .into_iter()
                .map(|mut d| {
                    d.sort_unstable();
                    d.dedup();
                    d
                })
                .collect();
            TermSetSpace { docs }
        }
    }

    fn overlap(a: &[u64], b: &[u64]) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    impl ClusterSpace for TermSetSpace {
        type Centroid = Vec<u64>;

        fn len(&self) -> usize {
            self.docs.len()
        }

        fn centroid(&self, members: &[usize]) -> Vec<u64> {
            let mut c: Vec<u64> = members
                .iter()
                .flat_map(|&m| self.docs[m].iter().copied())
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        }

        fn similarity(&self, centroid: &Vec<u64>, item: usize) -> f64 {
            self.centroid_similarity(centroid, &self.docs[item])
        }

        fn centroid_similarity(&self, a: &Vec<u64>, b: &Vec<u64>) -> f64 {
            if a.is_empty() || b.is_empty() {
                return 0.0;
            }
            overlap(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
        }
    }

    impl SparseClusterSpace for TermSetSpace {
        fn for_each_item_term(&self, item: usize, f: &mut dyn FnMut(u64)) {
            for &t in &self.docs[item] {
                f(t);
            }
        }

        fn for_each_centroid_term(&self, centroid: &Vec<u64>, f: &mut dyn FnMut(u64)) {
            for &t in centroid {
                f(t);
            }
        }
    }

    fn space() -> TermSetSpace {
        TermSetSpace::new(vec![
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![1, 3],
            vec![10, 11, 12],
            vec![11, 12, 13],
            vec![10, 12],
            vec![99], // overlaps nothing else
            vec![],   // empty document
        ])
    }

    #[test]
    fn sparse_matches_dense_exactly() {
        let s = space();
        let seeds = [vec![0], vec![3], vec![6]];
        let dense = kmeans_exec(&s, &seeds, &KMeansOptions::strict(), ExecPolicy::Serial);
        let sparse = kmeans_sparse(&s, &seeds, &KMeansOptions::strict());
        assert_eq!(sparse.partition, dense.partition);
        assert_eq!(sparse.iterations, dense.iterations);
        assert_eq!(sparse.converged, dense.converged);
    }

    #[test]
    fn zero_overlap_items_land_in_cluster_zero() {
        let s = space();
        // Seeds never cover terms 99 or the empty doc: both fall back to
        // cluster 0 — exactly where the dense argmax puts an all-zero row.
        let seeds = [vec![0], vec![3]];
        let dense = kmeans_exec(&s, &seeds, &KMeansOptions::strict(), ExecPolicy::Serial);
        let sparse = kmeans_sparse(&s, &seeds, &KMeansOptions::strict());
        assert_eq!(sparse.partition, dense.partition);
        assert!(sparse.partition.clusters()[0].contains(&6));
        assert!(sparse.partition.clusters()[0].contains(&7));
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let s = space();
        let seeds = [vec![0], vec![3], vec![6]];
        let baseline = kmeans_sparse(&s, &seeds, &KMeansOptions::strict());
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let out = kmeans_sparse_exec(&s, &seeds, &KMeansOptions::strict(), policy);
            assert_eq!(out.partition, baseline.partition, "{policy:?}");
            assert_eq!(out.iterations, baseline.iterations, "{policy:?}");
        }
    }

    #[test]
    fn candidate_index_postings_are_sorted_and_deduped() {
        let s = space();
        let centroids = vec![s.centroid(&[0, 1]), s.centroid(&[1, 2]), s.centroid(&[3])];
        let index = CandidateIndex::build(&s, &centroids);
        assert!(index.num_terms() > 0);
        for list in index.postings.values() {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, list);
        }
    }

    #[test]
    fn empty_space_and_degenerate_seeds() {
        let s = TermSetSpace::new(Vec::new());
        let out = kmeans_sparse(&s, &[], &KMeansOptions::strict());
        assert!(out.partition.clusters().is_empty());
        let s = space();
        let out = kmeans_sparse(&s, &[vec![]], &KMeansOptions::strict());
        assert_eq!(out.partition.clusters().len(), 1);
        assert_eq!(out.partition.num_assigned(), 8);
    }
}
