//! Seeded mini-batch k-means for large `n`.
//!
//! Classic mini-batch k-means (Sculley, WWW 2010) trades assignment work
//! for convergence speed: each iteration scores only a random batch of
//! items against the centroids. Our variant keeps the CAFC driver loop
//! (move counting over all items, full-assignment centroid rebuild, the
//! paper's move-fraction stopping rule — see [`kmeans`](crate::kmeans))
//! and swaps only the assignment step:
//!
//! * **iteration 1** runs a full dense pass, so every item is assigned
//!   before the first centroid rebuild (the driver marks unassigned items
//!   with `usize::MAX`, which must never reach the rebuild);
//! * **later iterations** re-score only a seeded batch of
//!   [`batch_size`](MiniBatchOptions::batch_size) items — chosen by a
//!   partial Fisher–Yates shuffle driven by a local splitmix64 stream
//!   keyed on `(seed, iteration)` — and items outside the batch keep
//!   their previous cluster.
//!
//! Batch selection depends only on `(n, batch_size, seed, iteration)` —
//! never on thread count — and the batch itself is scored by an
//! order-preserving parallel map, so results are bit-identical across
//! [`ExecPolicy`] values. With `batch_size ≥ n` every iteration
//! short-circuits to the full dense pass, making the outcome bit-identical
//! to [`kmeans`](crate::kmeans::kmeans) — the differential oracle pinned
//! in `tests/props.rs`.

use crate::kmeans::{dense_assign, kmeans_driver_with, KMeansOptions, KMeansOutcome};
use crate::partition::Partition;
use crate::space::ClusterSpace;
use cafc_exec::{par_map_obs, ExecPolicy};
use cafc_obs::Obs;
use std::cell::RefCell;

/// Mini-batch configuration.
///
/// Construct with [`MiniBatchOptions::new`] plus the chainable `with_*`
/// setters; the struct is `#[non_exhaustive]` so future fields are not
/// breaking changes.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct MiniBatchOptions {
    /// Items re-scored per iteration after the first (clamped to ≥ 1;
    /// values ≥ n degrade to full-batch k-means, bit-identically).
    pub batch_size: usize,
    /// Seed for the per-iteration batch selection stream.
    pub seed: u64,
}

impl Default for MiniBatchOptions {
    fn default() -> Self {
        MiniBatchOptions {
            batch_size: 1024,
            seed: 0,
        }
    }
}

impl MiniBatchOptions {
    /// Default configuration (batch of 1024, seed 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the per-iteration batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Set the batch-selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One step of the splitmix64 stream (Steele et al., the same generator
/// behind cafc-check's `Seed`); local so batch selection cannot drift if
/// a dependency changes its RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The batch for one iteration: `min(b, n)` distinct item indices chosen
/// by a partial Fisher–Yates shuffle, returned ascending. Depends only on
/// the arguments — not on thread count or prior assignments.
fn batch_indices(n: usize, b: usize, seed: u64, iteration: usize) -> Vec<usize> {
    let take = b.min(n);
    let mut state = seed ^ (iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..take {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(take);
    pool.sort_unstable();
    pool
}

/// Mini-batch k-means from the given seed clusters (serial execution).
///
/// Shares the driver loop with [`kmeans`](crate::kmeans::kmeans): the
/// move fraction is still counted over **all** items (out-of-batch items
/// never move, so small batches converge on the same threshold scale as
/// the full algorithm), and centroids are rebuilt from the complete
/// current assignment each iteration.
pub fn kmeans_minibatch<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    mb: &MiniBatchOptions,
) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_minibatch_exec(space, seeds, opts, mb, ExecPolicy::Serial)
}

/// [`kmeans_minibatch`] under an explicit execution policy; bit-identical
/// to every other policy.
pub fn kmeans_minibatch_exec<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    mb: &MiniBatchOptions,
    policy: ExecPolicy,
) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    kmeans_minibatch_obs(space, seeds, opts, mb, policy, &Obs::disabled())
}

/// [`kmeans_minibatch_exec`] with instrumentation (the same metrics as
/// [`kmeans_obs`](crate::kmeans_obs)).
pub fn kmeans_minibatch_obs<S>(
    space: &S,
    seeds: &[Vec<usize>],
    opts: &KMeansOptions,
    mb: &MiniBatchOptions,
    policy: ExecPolicy,
    obs: &Obs,
) -> KMeansOutcome
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
{
    let n = space.len();
    let batch_size = mb.batch_size.max(1);
    let seed = mb.seed;
    // The strategy closure is stateful (iteration counter + the previous
    // full assignment); the driver calls it once per iteration from the
    // orchestrating thread, so a RefCell suffices.
    let state: RefCell<(usize, Vec<usize>)> = RefCell::new((0, Vec::new()));
    let assign = |space: &S, centroids: &[S::Centroid], policy: ExecPolicy, obs: &Obs| {
        let mut st = state.borrow_mut();
        st.0 += 1;
        let iteration = st.0;
        let out = if iteration == 1 || batch_size >= n {
            dense_assign(space, centroids, policy, obs)
        } else {
            let batch = batch_indices(n, batch_size, seed, iteration);
            let scored = par_map_obs(policy, batch.len(), obs, "kmeans.assign", |slot| {
                let item = batch[slot];
                let mut best = 0usize;
                let mut best_sim = f64::NEG_INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let sim = space.similarity(centroid, item);
                    if sim > best_sim {
                        best_sim = sim;
                        best = c;
                    }
                }
                best
            });
            let mut out = st.1.clone();
            for (slot, &item) in batch.iter().enumerate() {
                out[item] = scored[slot];
            }
            out
        };
        st.1 = out.clone();
        out
    };
    match kmeans_driver_with(space, seeds, opts, policy, obs, None, &assign) {
        Ok(outcome) => outcome,
        // Unreachable: the driver only fails through a checkpointer.
        Err(_) => KMeansOutcome {
            partition: Partition::new(Vec::new(), n),
            iterations: 0,
            converged: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, kmeans_exec};
    use crate::space::DenseSpace;

    fn blobs(n_per: usize) -> DenseSpace {
        let mut points = Vec::new();
        for i in 0..n_per {
            points.push(vec![(i as f64) * 0.01]);
        }
        for i in 0..n_per {
            points.push(vec![10.0 + (i as f64) * 0.01]);
        }
        DenseSpace::new(points)
    }

    #[test]
    fn batch_indices_are_distinct_sorted_and_deterministic() {
        let a = batch_indices(100, 17, 42, 3);
        let b = batch_indices(100, 17, 42, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 17);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup, a, "sorted with no duplicates");
        assert!(a.iter().all(|&i| i < 100));
        // Different iterations draw different batches (overwhelmingly).
        assert_ne!(batch_indices(100, 17, 42, 4), a);
    }

    #[test]
    fn batch_larger_than_n_takes_everything() {
        assert_eq!(batch_indices(5, 99, 7, 2), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batch_eq_n_matches_full_kmeans_exactly() {
        let space = blobs(20);
        let seeds = [vec![0], vec![25]];
        let full = kmeans(&space, &seeds, &KMeansOptions::strict());
        let mb = MiniBatchOptions::new().with_batch_size(space.points().len());
        let out = kmeans_minibatch(&space, &seeds, &KMeansOptions::strict(), &mb);
        assert_eq!(out.partition, full.partition);
        assert_eq!(out.iterations, full.iterations);
        assert_eq!(out.converged, full.converged);
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let space = blobs(20);
        let seeds = [vec![0], vec![25]];
        let mb = MiniBatchOptions::new().with_batch_size(8).with_seed(9);
        let baseline = kmeans_minibatch(&space, &seeds, &KMeansOptions::strict(), &mb);
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let out = kmeans_minibatch_exec(&space, &seeds, &KMeansOptions::strict(), &mb, policy);
            assert_eq!(out.partition, baseline.partition, "{policy:?}");
            assert_eq!(out.iterations, baseline.iterations, "{policy:?}");
        }
    }

    #[test]
    fn small_batches_still_assign_every_item() {
        let space = blobs(20);
        let seeds = [vec![0], vec![25]];
        let mb = MiniBatchOptions::new().with_batch_size(3).with_seed(1);
        let out = kmeans_minibatch(&space, &seeds, &KMeansOptions::new(), &mb);
        assert_eq!(out.partition.num_assigned(), 40);
    }

    #[test]
    fn degenerate_inputs_fall_back_like_kmeans() {
        let space = DenseSpace::new(Vec::new());
        let out = kmeans_minibatch(
            &space,
            &[],
            &KMeansOptions::strict(),
            &MiniBatchOptions::new(),
        );
        assert!(out.partition.clusters().is_empty());
        assert!(!out.converged);
        let space = blobs(3);
        let reference = kmeans_exec(&space, &[], &KMeansOptions::strict(), ExecPolicy::Serial);
        let out = kmeans_minibatch(
            &space,
            &[],
            &KMeansOptions::strict(),
            &MiniBatchOptions::new(),
        );
        assert_eq!(out.partition, reference.partition);
    }
}
