//! Seeding strategies for k-means.
//!
//! * [`random_singleton_seeds`] — the CAFC-C baseline: "k clustering seeds
//!   are randomly selected" (Algorithm 1, line 2).
//! * [`greedy_distant_seeds`] — the selection loop of `SelectHubClusters`
//!   (Algorithm 3): start from the two most distant candidate clusters and
//!   greedily add the candidate maximizing the *sum* of distances to the
//!   already-selected set, until `k` are chosen.

use crate::space::ClusterSpace;
use rand::seq::index::sample;
use rand::Rng;

/// Pick `k` distinct random items as singleton seed clusters.
///
/// Out-of-range `k` is clamped to `1..=space.len()` (an empty space yields
/// no seeds) rather than panicking — adversarial corpora can quarantine
/// enough pages that fewer items than requested clusters survive.
pub fn random_singleton_seeds<S: ClusterSpace, R: Rng>(
    space: &S,
    k: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    if space.len() == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, space.len());
    sample(rng, space.len(), k)
        .into_iter()
        .map(|i| vec![i])
        .collect()
}

/// k-means++ seeding (Arthur & Vassilvitskii, SODA 2007): the first seed
/// is uniform; each next seed is drawn with probability proportional to
/// the squared distance (`(1 − max similarity to chosen seeds)²`). A
/// stronger random baseline than plain uniform seeding.
///
/// Out-of-range `k` is clamped to `1..=space.len()`; an empty space yields
/// no seeds.
pub fn kmeanspp_seeds<S: ClusterSpace, R: Rng>(
    space: &S,
    k: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let n = space.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let mut chosen: Vec<usize> = vec![rng.random_range(0..n)];
    // dist2[i] = squared distance of item i to its nearest chosen seed.
    let mut dist2: Vec<f64> = (0..n).map(|i| sq_dist(space, i, chosen[0])).collect();
    while chosen.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining items coincide with seeds; fall back to any
            // unchosen index (k <= n means one exists, but never panic).
            match (0..n).find(|i| !chosen.contains(i)) {
                Some(free) => free,
                None => break,
            }
        } else {
            let mut roll = rng.random::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if roll < d {
                    pick = i;
                    break;
                }
                roll -= d;
            }
            pick
        };
        chosen.push(next);
        for (i, d) in dist2.iter_mut().enumerate() {
            *d = d.min(sq_dist(space, i, next));
        }
    }
    chosen.into_iter().map(|i| vec![i]).collect()
}

fn sq_dist<S: ClusterSpace>(space: &S, a: usize, b: usize) -> f64 {
    let d = 1.0 - space.item_similarity(a, b);
    d * d
}

/// Greedy farthest-first selection of `k` candidate clusters (the selection
/// half of Algorithm 3).
///
/// Builds the pairwise centroid-distance matrix over `candidates` (line 3),
/// picks the two most distant clusters (line 4), then repeatedly adds the
/// candidate whose summed distance to the current selection is maximal
/// (lines 5–7). Returns the *indices into `candidates`* of the selected
/// clusters, in selection order. If `candidates.len() <= k`, all indices
/// are returned.
pub fn greedy_distant_seeds<S: ClusterSpace>(
    space: &S,
    candidates: &[Vec<usize>],
    k: usize,
) -> Vec<usize> {
    let n = candidates.len();
    if n <= k {
        return (0..n).collect();
    }
    let centroids: Vec<S::Centroid> = candidates.iter().map(|c| space.centroid(c)).collect();
    // Distance matrix (line 3 of Algorithm 3).
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = 1.0 - space.centroid_similarity(&centroids[i], &centroids[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    // Two most distant (line 4); ties break to the smallest indices.
    let (mut bi, mut bj, mut best) = (0, 1, f64::NEG_INFINITY);
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            if dist[i][j] > best {
                best = dist[i][j];
                bi = i;
                bj = j;
            }
        }
    }
    let mut selected = vec![bi, bj];
    let mut in_sel = vec![false; n];
    in_sel[bi] = true;
    in_sel[bj] = true;
    // Running sum of distances from each candidate to the selection.
    let mut sum_dist: Vec<f64> = (0..n).map(|c| dist[c][bi] + dist[c][bj]).collect();

    while selected.len() < k {
        let Some(next) = (0..n).filter(|&c| !in_sel[c]).max_by(|&a, &b| {
            sum_dist[a]
                .partial_cmp(&sum_dist[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a)) // ties -> lower index
        }) else {
            break; // n <= k is handled above, but never panic
        };
        in_sel[next] = true;
        selected.push(next);
        for c in 0..n {
            sum_dist[c] += dist[c][next];
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_seeds_distinct_and_in_range() {
        let space = DenseSpace::new((0..20).map(|i| vec![i as f64]).collect());
        let mut rng = StdRng::seed_from_u64(7);
        let seeds = random_singleton_seeds(&space, 8, &mut rng);
        assert_eq!(seeds.len(), 8);
        let mut items: Vec<usize> = seeds.iter().map(|s| s[0]).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 8);
        assert!(items.iter().all(|&i| i < 20));
    }

    #[test]
    fn random_seeds_deterministic_per_rng_seed() {
        let space = DenseSpace::new((0..20).map(|i| vec![i as f64]).collect());
        let a = random_singleton_seeds(&space, 5, &mut StdRng::seed_from_u64(1));
        let b = random_singleton_seeds(&space, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn random_seeds_clamps_oversized_k() {
        let space = DenseSpace::new(vec![vec![0.0]]);
        let seeds = random_singleton_seeds(&space, 2, &mut StdRng::seed_from_u64(0));
        assert_eq!(seeds, vec![vec![0]]);
    }

    #[test]
    fn random_seeds_empty_space_and_zero_k() {
        let empty = DenseSpace::new(Vec::new());
        assert!(random_singleton_seeds(&empty, 3, &mut StdRng::seed_from_u64(0)).is_empty());
        let space = DenseSpace::new(vec![vec![0.0], vec![1.0]]);
        let seeds = random_singleton_seeds(&space, 0, &mut StdRng::seed_from_u64(0));
        assert_eq!(seeds.len(), 1, "k = 0 clamps up to one seed");
    }

    #[test]
    fn greedy_picks_extremes_first() {
        // Candidates centred at 0, 5, 10, 5.1 -> the two most distant are
        // 0 and 10; the third pick is the one maximizing summed distance.
        let space = DenseSpace::new(vec![vec![0.0], vec![5.0], vec![10.0], vec![5.1]]);
        let candidates = vec![vec![0], vec![1], vec![2], vec![3]];
        let sel = greedy_distant_seeds(&space, &candidates, 3);
        assert_eq!(sel[0], 0);
        assert_eq!(sel[1], 2);
        assert_eq!(sel.len(), 3);
        // Third is candidate 1 or 3 (both near 5); the sums are nearly
        // equal; verify it is one of them.
        assert!(sel[2] == 1 || sel[2] == 3);
    }

    #[test]
    fn greedy_returns_all_when_few_candidates() {
        let space = DenseSpace::new(vec![vec![0.0], vec![1.0]]);
        let candidates = vec![vec![0], vec![1]];
        assert_eq!(greedy_distant_seeds(&space, &candidates, 8), vec![0, 1]);
    }

    #[test]
    fn greedy_spreads_over_clusters() {
        // Three groups of candidates around 0, 50, 100. Selecting 3 must
        // take one from each group.
        let space = DenseSpace::new(vec![
            vec![0.0],
            vec![0.5],
            vec![50.0],
            vec![50.5],
            vec![100.0],
            vec![100.5],
        ]);
        let candidates: Vec<Vec<usize>> = (0..6).map(|i| vec![i]).collect();
        let sel = greedy_distant_seeds(&space, &candidates, 3);
        let mut regions: Vec<usize> = sel.iter().map(|&c| c / 2).collect();
        regions.sort_unstable();
        assert_eq!(regions, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_uses_cluster_centroids() {
        // Candidate 0 = {0.0, 10.0} (centroid 5), candidate 1 = {4.9,5.1}
        // (centroid 5), candidate 2 = {20.0}. Most distant pair must be
        // (0 or 1) vs 2, judged by centroids, not by any member point.
        let space = DenseSpace::new(vec![
            vec![0.0],
            vec![10.0],
            vec![4.9],
            vec![5.1],
            vec![20.0],
        ]);
        let candidates = vec![vec![0, 1], vec![2, 3], vec![4]];
        let sel = greedy_distant_seeds(&space, &candidates, 2);
        assert!(
            sel.contains(&2),
            "must select the far candidate, got {sel:?}"
        );
    }

    #[test]
    fn kmeanspp_seeds_distinct_and_spread() {
        // Two far blobs: the second seed lands in the other blob nearly
        // always under D^2 sampling.
        let space = DenseSpace::new(vec![
            vec![0.0],
            vec![0.01],
            vec![0.02],
            vec![100.0],
            vec![100.01],
            vec![100.02],
        ]);
        let mut cross_blob = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let seeds = kmeanspp_seeds(&space, 2, &mut rng);
            assert_eq!(seeds.len(), 2);
            assert_ne!(seeds[0], seeds[1]);
            let blob = |i: usize| usize::from(i >= 3);
            if blob(seeds[0][0]) != blob(seeds[1][0]) {
                cross_blob += 1;
            }
        }
        assert!(
            cross_blob >= 18,
            "D^2 sampling should split blobs: {cross_blob}/20"
        );
    }

    #[test]
    fn kmeanspp_handles_identical_points() {
        let space = DenseSpace::new(vec![vec![1.0]; 4]);
        let mut rng = StdRng::seed_from_u64(0);
        let seeds = kmeanspp_seeds(&space, 3, &mut rng);
        let mut items: Vec<usize> = seeds.iter().map(|s| s[0]).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn kmeanspp_clamps_oversized_k() {
        let space = DenseSpace::new(vec![vec![0.0]]);
        let seeds = kmeanspp_seeds(&space, 2, &mut StdRng::seed_from_u64(0));
        assert_eq!(seeds, vec![vec![0]]);
        let empty = DenseSpace::new(Vec::new());
        assert!(kmeanspp_seeds(&empty, 2, &mut StdRng::seed_from_u64(0)).is_empty());
    }

    #[test]
    fn greedy_deterministic() {
        let space = DenseSpace::new((0..10).map(|i| vec![(i * i) as f64]).collect());
        let candidates: Vec<Vec<usize>> = (0..10).map(|i| vec![i]).collect();
        let a = greedy_distant_seeds(&space, &candidates, 4);
        let b = greedy_distant_seeds(&space, &candidates, 4);
        assert_eq!(a, b);
    }
}
