//! # cafc-cluster
//!
//! Clustering algorithms for CAFC, generic over a [`ClusterSpace`] — an
//! abstraction of "n items with centroids and a similarity in `\[0, 1\]`".
//! The core crate instantiates the space with form pages whose similarity
//! is Equation 3 (the weighted average of per-feature-space cosines); the
//! algorithms here never see feature spaces, only similarities.
//!
//! Provided algorithms:
//!
//! * [`kmeans()`] — the paper's k-means variant (Algorithm 1): centroid
//!   assignment loop that stops when fewer than a configurable fraction of
//!   items (10 % in the paper) change cluster;
//! * [`hac()`] — hierarchical agglomerative clustering with single, complete,
//!   average and centroid linkage, supporting a non-trivial starting
//!   partition (Table 2 runs HAC seeded with hub clusters);
//! * [`seed`] — seeding strategies: random singletons, the greedy
//!   farthest-first selection over candidate clusters used by
//!   `SelectHubClusters` (Algorithm 3), and HAC-over-sample seeding (§4.3).
//!
//! Scaling kernels (ROADMAP item 3 — 10^5–10^6 pages), both bit-identical
//! to [`kmeans()`] where their contracts say so:
//!
//! * [`kmeans_sparse()`] — assignment over an inverted term → candidate
//!   index; zero-overlap (item, centroid) pairs are skipped, outputs are
//!   bit-identical to the dense reference;
//! * [`kmeans_minibatch()`] — seeded mini-batch assignment for large `n`;
//!   `batch_size ≥ n` degrades to full k-means, bit-identically.

#![warn(missing_docs)]

pub mod bisect;
pub mod hac;
pub mod kmeans;
pub mod minibatch;
pub mod partition;
pub mod resume;
pub mod seed;
pub mod space;
pub mod sparse;
pub mod validity;

pub use bisect::{bisecting_kmeans, bisecting_kmeans_exec, bisecting_kmeans_obs, BisectOptions};
pub use cafc_exec::ExecPolicy;
pub use cafc_obs::Obs;
pub use hac::{hac, hac_exec, hac_from_singletons, hac_obs, HacOptions, Linkage};
pub use kmeans::{kmeans, kmeans_exec, kmeans_obs, KMeansOptions, KMeansOutcome};
pub use minibatch::{
    kmeans_minibatch, kmeans_minibatch_exec, kmeans_minibatch_obs, MiniBatchOptions,
};
pub use partition::Partition;
pub use resume::{hac_resumable, kmeans_resumable};
pub use seed::{greedy_distant_seeds, kmeanspp_seeds, random_singleton_seeds};
pub use space::{ClusterSpace, DenseSpace};
pub use sparse::{
    kmeans_sparse, kmeans_sparse_exec, kmeans_sparse_obs, CandidateIndex, SparseClusterSpace,
};
pub use validity::{choose_k, mean_silhouette, silhouette_of};
