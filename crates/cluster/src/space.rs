//! The [`ClusterSpace`] abstraction and a dense reference implementation.

/// A clustering problem: `len()` items, centroids, and similarities in
/// `\[0, 1\]` (1 = identical). Distances used by the algorithms are always
/// `1 − similarity`.
pub trait ClusterSpace {
    /// Cluster representative (the paper's centroid vectors, Equation 4).
    type Centroid;

    /// Number of items.
    fn len(&self) -> usize;

    /// True when the space has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centroid of the given item indices. `members` is non-empty.
    fn centroid(&self, members: &[usize]) -> Self::Centroid;

    /// Similarity between a centroid and item `item`, in `\[0, 1\]`.
    fn similarity(&self, centroid: &Self::Centroid, item: usize) -> f64;

    /// Similarity between two centroids, in `\[0, 1\]`.
    fn centroid_similarity(&self, a: &Self::Centroid, b: &Self::Centroid) -> f64;

    /// Similarity between two items, in `\[0, 1\]`. The default builds
    /// singleton centroids; implementations with cheaper direct access
    /// should override.
    fn item_similarity(&self, a: usize, b: usize) -> f64 {
        self.centroid_similarity(&self.centroid(&[a]), &self.centroid(&[b]))
    }
}

/// A simple space over dense `f64` points with cosine-free Euclidean-kernel
/// similarity `1 / (1 + d)`. Used by unit tests and available for users who
/// want to cluster plain numeric data.
#[derive(Debug, Clone)]
pub struct DenseSpace {
    points: Vec<Vec<f64>>,
}

impl DenseSpace {
    /// Build from points (all must share one dimensionality).
    ///
    /// # Panics
    /// Panics if points have inconsistent dimensions.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        if let Some(first) = points.first() {
            assert!(
                points.iter().all(|p| p.len() == first.len()),
                "all points must have equal dimension"
            );
        }
        DenseSpace { points }
    }

    /// The points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl ClusterSpace for DenseSpace {
    type Centroid = Vec<f64>;

    fn len(&self) -> usize {
        self.points.len()
    }

    fn centroid(&self, members: &[usize]) -> Vec<f64> {
        let dim = self.points.first().map_or(0, Vec::len);
        let mut c = vec![0.0; dim];
        for &m in members {
            for (ci, pi) in c.iter_mut().zip(&self.points[m]) {
                *ci += pi;
            }
        }
        let n = members.len().max(1) as f64;
        for ci in &mut c {
            *ci /= n;
        }
        c
    }

    fn similarity(&self, centroid: &Vec<f64>, item: usize) -> f64 {
        1.0 / (1.0 + Self::distance(centroid, &self.points[item]))
    }

    fn centroid_similarity(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        1.0 / (1.0 + Self::distance(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_centroid() {
        let s = DenseSpace::new(vec![vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(s.centroid(&[0, 1]), vec![1.0, 2.0]);
    }

    #[test]
    fn dense_similarity_bounds() {
        let s = DenseSpace::new(vec![vec![0.0], vec![100.0]]);
        let c = s.centroid(&[0]);
        assert_eq!(s.similarity(&c, 0), 1.0);
        let far = s.similarity(&c, 1);
        assert!(far > 0.0 && far < 0.05);
    }

    #[test]
    fn item_similarity_default_matches_centroids() {
        let s = DenseSpace::new(vec![vec![0.0], vec![3.0]]);
        let via_centroids = s.centroid_similarity(&s.centroid(&[0]), &s.centroid(&[1]));
        assert_eq!(s.item_similarity(0, 1), via_centroids);
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dense_rejects_ragged() {
        DenseSpace::new(vec![vec![0.0], vec![1.0, 2.0]]);
    }
}
