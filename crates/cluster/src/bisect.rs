//! Bisecting k-means (Steinbach, Karypis & Kumar, KDD TextMining 2000 —
//! the paper's reference \[31\] for document-clustering practice).
//!
//! Starts with everything in one cluster and repeatedly splits the largest
//! cluster with 2-means (taking the best of several trial splits), until
//! the target cluster count is reached. Often more robust than flat
//! k-means with random seeds, and a natural extra baseline next to the
//! paper's Table 2.

use crate::kmeans::{kmeans_obs, KMeansOptions};
use crate::partition::Partition;
use crate::space::ClusterSpace;
use cafc_exec::{par_reduce, ExecPolicy};
use cafc_obs::Obs;
use rand::seq::index::sample;
use rand::Rng;

/// Bisecting k-means options.
#[derive(Debug, Clone, Copy)]
pub struct BisectOptions {
    /// Target number of clusters.
    pub target_clusters: usize,
    /// Trial 2-means splits per bisection; the split with the highest
    /// within-cluster similarity wins (paper \[31\] uses a small constant).
    pub trials: usize,
    /// Options for the inner 2-means runs.
    pub kmeans: KMeansOptions,
}

impl Default for BisectOptions {
    fn default() -> Self {
        BisectOptions {
            target_clusters: 8,
            trials: 5,
            kmeans: KMeansOptions::default(),
        }
    }
}

/// Average similarity of members to their cluster centroid — the split
/// quality criterion ("overall similarity" in \[31\]). The sum is an
/// indexed-chunk reduction so it is bit-identical across policies.
fn cohesion<S>(space: &S, members: &[usize], policy: ExecPolicy) -> f64
where
    S: ClusterSpace + Sync,
    S::Centroid: Sync,
{
    if members.is_empty() {
        return 0.0;
    }
    let centroid = space.centroid(members);
    let sum = par_reduce(
        policy,
        members.len(),
        cafc_exec::DEFAULT_CHUNK,
        |range| {
            range
                .map(|i| space.similarity(&centroid, members[i]))
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0);
    sum / members.len() as f64
}

/// Run bisecting k-means over all items of `space`.
pub fn bisecting_kmeans<S, R>(space: &S, opts: &BisectOptions, rng: &mut R) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
    R: Rng,
{
    bisecting_kmeans_exec(space, opts, rng, ExecPolicy::Serial)
}

/// Run bisecting k-means under an explicit execution policy.
///
/// Identical semantics (and, for a fixed RNG seed, bit-identical output)
/// to [`bisecting_kmeans`], which delegates here with
/// [`ExecPolicy::Serial`]: the inner 2-means runs and the cohesion scoring
/// parallelize, while the RNG draws stay on the calling thread in a fixed
/// order.
pub fn bisecting_kmeans_exec<S, R>(
    space: &S,
    opts: &BisectOptions,
    rng: &mut R,
    policy: ExecPolicy,
) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
    R: Rng,
{
    bisecting_kmeans_obs(space, opts, rng, policy, &Obs::disabled())
}

/// Run bisecting k-means under an explicit execution policy with
/// instrumentation.
///
/// Identical semantics (and, for a fixed RNG seed, bit-identical output)
/// to [`bisecting_kmeans_exec`], which delegates here with
/// [`Obs::disabled`]. Emits, when `obs` has a sink: counters
/// `bisect.splits` / `bisect.trials` / `bisect.degenerate_splits`, a
/// `bisect.split` span per bisection (orchestrating thread; the inner
/// 2-means runs nest their `kmeans.*` spans underneath), and the inner
/// runs' `kmeans.*` metrics.
pub fn bisecting_kmeans_obs<S, R>(
    space: &S,
    opts: &BisectOptions,
    rng: &mut R,
    policy: ExecPolicy,
    obs: &Obs,
) -> Partition
where
    S: ClusterSpace + Sync,
    S::Centroid: Send + Sync,
    R: Rng,
{
    let n = space.len();
    let mut clusters: Vec<Vec<usize>> = vec![(0..n).collect()];
    if n == 0 {
        return Partition::new(clusters, 0);
    }
    while clusters.len() < opts.target_clusters {
        // Pick the largest splittable cluster.
        let Some(victim_idx) = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() >= 2)
            .max_by_key(|(_, c)| c.len())
            .map(|(i, _)| i)
        else {
            break; // nothing splittable left
        };
        let victim = clusters.swap_remove(victim_idx);
        let _split_span = obs.span("bisect.split");
        obs.incr("bisect.splits");

        // Trial 2-means splits on the victim's members; keep the best.
        let mut best: Option<(f64, Vec<usize>, Vec<usize>)> = None;
        for _ in 0..opts.trials.max(1) {
            obs.incr("bisect.trials");
            // Seeds are indices into the sub-space (0..victim.len()).
            let picks = sample(rng, victim.len(), 2.min(victim.len()));
            let seeds: Vec<Vec<usize>> = picks.into_iter().map(|i| vec![i]).collect();
            let sub = SubSpace {
                space,
                items: &victim,
            };
            let out = kmeans_obs(&sub, &seeds, &opts.kmeans, policy, obs);
            let halves = out.partition.clusters();
            let a: Vec<usize> = halves[0].iter().map(|&i| victim[i]).collect();
            let b: Vec<usize> = halves
                .get(1)
                .map(|h| h.iter().map(|&i| victim[i]).collect())
                .unwrap_or_default();
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let score = (cohesion(space, &a, policy) * a.len() as f64
                + cohesion(space, &b, policy) * b.len() as f64)
                / victim.len() as f64;
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, a, b));
            }
        }
        match best {
            Some((_, a, b)) => {
                clusters.push(a);
                clusters.push(b);
            }
            None => {
                // All trials degenerate (identical points): split arbitrarily.
                obs.incr("bisect.degenerate_splits");
                let mid = victim.len() / 2;
                clusters.push(victim[..mid].to_vec());
                clusters.push(victim[mid..].to_vec());
            }
        }
    }
    Partition::new(clusters, n)
}

/// A view of a sub-set of a space's items, re-indexed `0..items.len()`.
struct SubSpace<'a, S: ClusterSpace> {
    space: &'a S,
    items: &'a [usize],
}

impl<S: ClusterSpace> ClusterSpace for SubSpace<'_, S> {
    type Centroid = S::Centroid;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn centroid(&self, members: &[usize]) -> S::Centroid {
        let mapped: Vec<usize> = members.iter().map(|&m| self.items[m]).collect();
        self.space.centroid(&mapped)
    }

    fn similarity(&self, centroid: &S::Centroid, item: usize) -> f64 {
        self.space.similarity(centroid, self.items[item])
    }

    fn centroid_similarity(&self, a: &S::Centroid, b: &S::Centroid) -> f64 {
        self.space.centroid_similarity(a, b)
    }

    fn item_similarity(&self, a: usize, b: usize) -> f64 {
        self.space.item_similarity(self.items[a], self.items[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs3() -> DenseSpace {
        DenseSpace::new(vec![
            vec![0.0],
            vec![0.1],
            vec![10.0],
            vec![10.1],
            vec![20.0],
            vec![20.1],
        ])
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let space = blobs3();
        let opts = BisectOptions {
            target_clusters: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let baseline = bisecting_kmeans_exec(&space, &opts, &mut rng, ExecPolicy::Serial);
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let mut rng = StdRng::seed_from_u64(42);
            let p = bisecting_kmeans_exec(&space, &opts, &mut rng, policy);
            assert_eq!(p, baseline, "{policy:?}");
        }
    }

    #[test]
    fn splits_into_three_blobs() {
        let space = blobs3();
        let mut rng = StdRng::seed_from_u64(1);
        let p = bisecting_kmeans(
            &space,
            &BisectOptions {
                target_clusters: 3,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(p.num_clusters(), 3);
        let mut sorted: Vec<Vec<usize>> = p
            .clusters()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    fn k_one_returns_everything() {
        let space = blobs3();
        let mut rng = StdRng::seed_from_u64(2);
        let p = bisecting_kmeans(
            &space,
            &BisectOptions {
                target_clusters: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(p.num_clusters(), 1);
        assert_eq!(p.num_assigned(), 6);
    }

    #[test]
    fn k_larger_than_items_caps_at_singletons() {
        let space = DenseSpace::new(vec![vec![0.0], vec![1.0]]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = bisecting_kmeans(
            &space,
            &BisectOptions {
                target_clusters: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(p.num_clusters(), 2);
    }

    #[test]
    fn identical_points_still_split() {
        let space = DenseSpace::new(vec![vec![5.0]; 6]);
        let mut rng = StdRng::seed_from_u64(4);
        let p = bisecting_kmeans(
            &space,
            &BisectOptions {
                target_clusters: 3,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(p.num_clusters(), 3);
        assert_eq!(p.num_assigned(), 6);
    }

    #[test]
    fn empty_space() {
        let space = DenseSpace::new(vec![]);
        let mut rng = StdRng::seed_from_u64(5);
        let p = bisecting_kmeans(&space, &BisectOptions::default(), &mut rng);
        assert_eq!(p.num_assigned(), 0);
    }

    #[test]
    fn partitions_completely() {
        let space = blobs3();
        let mut rng = StdRng::seed_from_u64(6);
        let p = bisecting_kmeans(
            &space,
            &BisectOptions {
                target_clusters: 4,
                ..Default::default()
            },
            &mut rng,
        );
        let mut all: Vec<usize> = p.clusters().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }
}
