//! The [`Partition`] type: a clustering result.

/// A partition of items `0..n` into clusters.
///
/// Clusters may be empty (k-means can starve a seed); items appear in
/// exactly one cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    clusters: Vec<Vec<usize>>,
    num_items: usize,
}

impl Partition {
    /// Build from cluster member lists.
    ///
    /// # Panics
    /// Panics if any item index ≥ `num_items`, or an item appears twice.
    pub fn new(clusters: Vec<Vec<usize>>, num_items: usize) -> Self {
        let mut seen = vec![false; num_items];
        for c in &clusters {
            for &m in c {
                assert!(m < num_items, "item index {m} out of range {num_items}");
                assert!(!seen[m], "item {m} appears in two clusters");
                seen[m] = true;
            }
        }
        Partition {
            clusters,
            num_items,
        }
    }

    /// Build from an assignment array `item -> cluster index`.
    pub fn from_assignments(assignments: &[usize], num_clusters: usize) -> Self {
        let mut clusters = vec![Vec::new(); num_clusters];
        for (item, &c) in assignments.iter().enumerate() {
            assert!(
                c < num_clusters,
                "cluster index {c} out of range {num_clusters}"
            );
            clusters[c].push(item);
        }
        Partition {
            clusters,
            num_items: assignments.len(),
        }
    }

    /// The cluster member lists.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of clusters, including empty ones.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of non-empty clusters.
    pub fn num_nonempty(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// Total number of items in the underlying set.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of items assigned to some cluster.
    pub fn num_assigned(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// The inverse map `item -> cluster index`. Unassigned items (possible
    /// only for partial partitions built with [`Partition::new`]) map to
    /// `None`.
    pub fn assignments(&self) -> Vec<Option<usize>> {
        let mut a = vec![None; self.num_items];
        for (ci, members) in self.clusters.iter().enumerate() {
            for &m in members {
                a[m] = Some(ci);
            }
        }
        a
    }

    /// Drop empty clusters (renumbering the rest).
    pub fn without_empty(mut self) -> Partition {
        self.clusters.retain(|c| !c.is_empty());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_valid() {
        let p = Partition::new(vec![vec![0, 2], vec![1]], 3);
        assert_eq!(p.num_clusters(), 2);
        assert_eq!(p.num_assigned(), 3);
        assert_eq!(p.assignments(), vec![Some(0), Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        Partition::new(vec![vec![5]], 3);
    }

    #[test]
    #[should_panic(expected = "appears in two clusters")]
    fn new_rejects_duplicates() {
        Partition::new(vec![vec![0], vec![0]], 3);
    }

    #[test]
    fn from_assignments_roundtrip() {
        let p = Partition::from_assignments(&[1, 0, 1], 2);
        assert_eq!(p.clusters(), &[vec![1], vec![0, 2]]);
        assert_eq!(p.assignments(), vec![Some(1), Some(0), Some(1)]);
    }

    #[test]
    fn partial_partition_allowed() {
        let p = Partition::new(vec![vec![0]], 3);
        assert_eq!(p.num_assigned(), 1);
        assert_eq!(p.assignments()[2], None);
    }

    #[test]
    fn without_empty() {
        let p = Partition::new(vec![vec![], vec![0], vec![]], 1).without_empty();
        assert_eq!(p.num_clusters(), 1);
        assert_eq!(p.num_nonempty(), 1);
    }
}
