//! Internal cluster-validity indices — no gold labels required.
//!
//! The paper fixes `k = 8` because its gold standard has eight domains; a
//! deployed system does not know the domain count in advance. The
//! silhouette coefficient lets callers sweep `k` and pick the best value,
//! closing that gap (see [`choose_k`] and the `exp_choose_k` bench).

use crate::partition::Partition;
use crate::space::ClusterSpace;

/// Silhouette value of one item: `(b − a) / max(a, b)` where `a` is the
/// mean distance to its own cluster and `b` the mean distance to the
/// nearest other cluster. Distances are `1 − similarity`.
///
/// Returns `None` when the score is undefined — the item sits in a
/// singleton (or out-of-range) cluster, no other non-empty cluster exists,
/// or similarities are non-finite — so degenerate partitions cannot leak
/// NaN into a `k` sweep.
pub fn silhouette_of<S: ClusterSpace>(
    space: &S,
    partition: &Partition,
    item: usize,
    item_cluster: usize,
) -> Option<f64> {
    let clusters = partition.clusters();
    let own = clusters.get(item_cluster)?;
    if own.len() <= 1 {
        return None;
    }
    let a: f64 = own
        .iter()
        .filter(|&&m| m != item)
        .map(|&m| 1.0 - space.item_similarity(item, m))
        .sum::<f64>()
        / (own.len() - 1) as f64;
    let b = clusters
        .iter()
        .enumerate()
        .filter(|(ci, c)| *ci != item_cluster && !c.is_empty())
        .map(|(_, c)| {
            c.iter()
                .map(|&m| 1.0 - space.item_similarity(item, m))
                .sum::<f64>()
                / c.len() as f64
        })
        .fold(f64::INFINITY, f64::min);
    if !b.is_finite() || !a.is_finite() {
        return None; // only one non-empty cluster, or corrupt similarities
    }
    let denom = a.max(b);
    if denom == 0.0 {
        Some(0.0)
    } else {
        let s = (b - a) / denom;
        s.is_finite().then_some(s)
    }
}

/// Mean silhouette over all items with a defined score, in `[-1, 1]`;
/// higher is better. Returns `None` when no item has one (empty partition,
/// all-singleton clusters, or a single non-empty cluster).
pub fn mean_silhouette<S: ClusterSpace>(space: &S, partition: &Partition) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (ci, members) in partition.clusters().iter().enumerate() {
        for &m in members {
            if let Some(s) = silhouette_of(space, partition, m, ci) {
                sum += s;
                count += 1;
            }
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Result of [`choose_k`]: the winning `k`, its partition, and the full
/// `(k, silhouette)` sweep.
pub type KChoice = (usize, Partition, Vec<(usize, f64)>);

/// Sweep `k` over `k_range`, clustering with `cluster_at` and scoring with
/// mean silhouette. Returns `(best_k, best_partition, scores)` where
/// `scores[i]` pairs each tried `k` with its silhouette. Values of `k`
/// whose partition has no defined silhouette (e.g. everything collapsed
/// into one cluster) are skipped rather than scored as zero.
pub fn choose_k<S, F>(
    space: &S,
    k_range: std::ops::RangeInclusive<usize>,
    mut cluster_at: F,
) -> Option<KChoice>
where
    S: ClusterSpace,
    F: FnMut(usize) -> Partition,
{
    let mut best: Option<(usize, Partition, f64)> = None;
    let mut scores = Vec::new();
    for k in k_range {
        if k < 2 || k > space.len() {
            continue;
        }
        let partition = cluster_at(k);
        let Some(score) = mean_silhouette(space, &partition) else {
            continue;
        };
        scores.push((k, score));
        if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
            best = Some((k, partition, score));
        }
    }
    best.map(|(k, p, _)| (k, p, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansOptions};
    use crate::seed::random_singleton_seeds;
    use crate::space::DenseSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs2() -> DenseSpace {
        DenseSpace::new(vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![9.0],
            vec![9.1],
            vec![9.2],
        ])
    }

    #[test]
    fn good_clustering_scores_high() {
        let space = blobs2();
        let p = Partition::new(vec![vec![0, 1, 2], vec![3, 4, 5]], 6);
        assert!(mean_silhouette(&space, &p).expect("defined") > 0.5);
    }

    #[test]
    fn bad_clustering_scores_low() {
        let space = blobs2();
        let mixed = Partition::new(vec![vec![0, 3, 4], vec![1, 2, 5]], 6);
        let good = Partition::new(vec![vec![0, 1, 2], vec![3, 4, 5]], 6);
        assert!(mean_silhouette(&space, &mixed) < mean_silhouette(&space, &good));
    }

    #[test]
    fn silhouette_in_range() {
        let space = blobs2();
        for clusters in [
            vec![vec![0, 1, 2], vec![3, 4, 5]],
            vec![vec![0, 3], vec![1, 4], vec![2, 5]],
            vec![vec![0], vec![1, 2, 3, 4, 5]],
        ] {
            let p = Partition::new(clusters, 6);
            let s = mean_silhouette(&space, &p).expect("defined");
            assert!((-1.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn singleton_cluster_is_undefined() {
        let space = blobs2();
        let p = Partition::new(vec![vec![0], vec![1, 2, 3, 4, 5]], 6);
        assert_eq!(silhouette_of(&space, &p, 0, 0), None);
        // The partition-level mean still exists: the other five items score.
        assert!(mean_silhouette(&space, &p).is_some());
    }

    #[test]
    fn single_cluster_partition_is_undefined() {
        let space = blobs2();
        let p = Partition::new(vec![(0..6).collect()], 6);
        assert_eq!(mean_silhouette(&space, &p), None);
    }

    #[test]
    fn all_singletons_partition_is_undefined() {
        let space = blobs2();
        let p = Partition::new((0..6).map(|i| vec![i]).collect(), 6);
        assert_eq!(mean_silhouette(&space, &p), None);
    }

    #[test]
    fn choose_k_skips_undefined_scores() {
        let space = blobs2();
        // Every k collapses to a single cluster -> no k has a defined
        // silhouette -> no winner.
        let result = choose_k(&space, 2..=4, |_| Partition::new(vec![(0..6).collect()], 6));
        assert!(result.is_none());
    }

    #[test]
    fn choose_k_finds_two_blobs() {
        let space = blobs2();
        let (best_k, partition, scores) = choose_k(&space, 2..=5, |k| {
            let mut rng = StdRng::seed_from_u64(7);
            let seeds = random_singleton_seeds(&space, k, &mut rng);
            kmeans(
                &space,
                &seeds,
                &KMeansOptions::new()
                    .with_move_fraction_threshold(1e-9)
                    .with_max_iterations(50),
            )
            .partition
        })
        .expect("range non-empty");
        assert_eq!(best_k, 2, "scores: {scores:?}");
        assert_eq!(partition.num_nonempty(), 2);
        assert_eq!(scores.len(), 4);
    }

    #[test]
    fn choose_k_empty_range() {
        let space = blobs2();
        assert!(choose_k(&space, 9..=12, |_| unreachable!("no valid k")).is_none());
    }
}
