//! Property-based tests for the clustering algorithms.

use cafc_cluster::{
    greedy_distant_seeds, hac_from_singletons, kmeans, random_singleton_seeds, ClusterSpace,
    DenseSpace, HacOptions, KMeansOptions, Linkage,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec((0.0f64..100.0).prop_map(|x| vec![x]), 1..max)
}

proptest! {
    /// K-means always produces a complete partition: every item in exactly
    /// one cluster, cluster count = seed count.
    #[test]
    fn kmeans_partitions_everything(points in arb_points(40), k in 1usize..6, rng_seed in 0u64..100) {
        let space = DenseSpace::new(points);
        let k = k.min(space.len());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let seeds = random_singleton_seeds(&space, k, &mut rng);
        let out = kmeans(&space, &seeds, &KMeansOptions::default());
        prop_assert_eq!(out.partition.num_clusters(), k);
        prop_assert_eq!(out.partition.num_assigned(), space.len());
        let mut all: Vec<usize> = out.partition.clusters().iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..space.len()).collect();
        prop_assert_eq!(all, expect);
    }

    /// K-means terminates within the iteration cap.
    #[test]
    fn kmeans_terminates(points in arb_points(30), rng_seed in 0u64..100) {
        let space = DenseSpace::new(points);
        let k = 3.min(space.len());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let seeds = random_singleton_seeds(&space, k, &mut rng);
        let opts = KMeansOptions::new().with_move_fraction_threshold(1e-12).with_max_iterations(500);
        let out = kmeans(&space, &seeds, &opts);
        prop_assert!(out.iterations <= 500);
    }

    /// HAC yields exactly the target number of clusters (when feasible) and
    /// covers all items, for every linkage.
    #[test]
    fn hac_partitions_everything(points in arb_points(25), target in 1usize..6) {
        let space = DenseSpace::new(points);
        let target = target.min(space.len());
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Centroid] {
            let p = hac_from_singletons(&space, &HacOptions { target_clusters: target, linkage });
            prop_assert_eq!(p.num_clusters(), target);
            prop_assert_eq!(p.num_assigned(), space.len());
        }
    }

    /// HAC merge quality sanity: with two clearly separated blobs and
    /// target 2, no cluster mixes blobs (average linkage).
    #[test]
    fn hac_respects_separation(
        left in proptest::collection::vec(0.0f64..1.0, 2..6),
        right in proptest::collection::vec(1000.0f64..1001.0, 2..6),
    ) {
        let n_left = left.len();
        let points: Vec<Vec<f64>> = left.into_iter().chain(right).map(|x| vec![x]).collect();
        let space = DenseSpace::new(points);
        let p = hac_from_singletons(
            &space,
            &HacOptions { target_clusters: 2, linkage: Linkage::Average },
        );
        for c in p.clusters() {
            let all_left = c.iter().all(|&i| i < n_left);
            let all_right = c.iter().all(|&i| i >= n_left);
            prop_assert!(all_left || all_right, "mixed cluster {c:?}");
        }
    }

    /// Greedy seed selection returns k distinct candidate indices.
    #[test]
    fn greedy_seeds_distinct(points in arb_points(30), k in 2usize..6) {
        let space = DenseSpace::new(points);
        let candidates: Vec<Vec<usize>> = (0..space.len()).map(|i| vec![i]).collect();
        let k = k.min(candidates.len());
        let sel = greedy_distant_seeds(&space, &candidates, k);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
        prop_assert_eq!(sel.len(), k.min(candidates.len()));
        prop_assert!(sel.iter().all(|&c| c < candidates.len()));
    }

    /// The first two greedy selections are a most-distant pair.
    #[test]
    fn greedy_first_pair_is_max_distance(points in arb_points(15)) {
        let space = DenseSpace::new(points);
        if space.len() < 3 { return Ok(()); }
        let candidates: Vec<Vec<usize>> = (0..space.len()).map(|i| vec![i]).collect();
        let sel = greedy_distant_seeds(&space, &candidates, 2);
        let d_sel = 1.0 - space.item_similarity(sel[0], sel[1]);
        for i in 0..space.len() {
            for j in (i + 1)..space.len() {
                let d = 1.0 - space.item_similarity(i, j);
                prop_assert!(d <= d_sel + 1e-9, "pair ({i},{j}) is farther than selection");
            }
        }
    }
}
