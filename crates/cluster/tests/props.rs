//! `cafc-check` property suite for seed selection (Algorithm 3) and the
//! k-means loop over generated dense spaces. Runs offline on every commit.

use cafc_check::corpus::clustering;
use cafc_check::gen::{f64s, pairs, usizes, vecs, Gen};
use cafc_check::{check, require, require_eq, CheckConfig};
use cafc_cluster::{greedy_distant_seeds, kmeans, ClusterSpace, DenseSpace, KMeansOptions};

/// A selection problem: 2-D points, candidate seed clusters over them, and
/// a requested seed count.
type SelectionProblem = (Vec<Vec<f64>>, Vec<Vec<usize>>, usize);

/// `n` 2-D points (n in 2..=10) plus candidate seed clusters over them and
/// a requested seed count `k` in 2..=6.
fn selection_problem() -> Gen<SelectionProblem> {
    usizes(2, 10).flat_map(|&n| {
        let points = vecs(&vecs(&f64s(-3.0, 3.0), 2, 2), n, n);
        pairs(&pairs(&points, &clustering(n, 5)), &usizes(2, 6))
            .map(|((points, candidates), k)| (points.clone(), candidates.clone(), *k))
    })
}

/// Algorithm 3's selection half always returns `min(k, #candidates)`
/// mutually distinct candidate indices — when enough candidates exist, it
/// returns exactly `k` distinct hub clusters.
#[test]
fn greedy_selection_returns_k_distinct_candidates() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        let space = DenseSpace::new(points.clone());
        let picked = greedy_distant_seeds(&space, candidates, *k);
        require_eq!(picked.len(), (*k).min(candidates.len()));
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        require_eq!(sorted.len(), picked.len());
        require!(
            picked.iter().all(|&i| i < candidates.len()),
            "index out of range: {picked:?}"
        );
        Ok(())
    });
}

/// The greedy selection is deterministic: same space, same candidates,
/// same `k` — same indices in the same order.
#[test]
fn greedy_selection_deterministic() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        let space = DenseSpace::new(points.clone());
        require_eq!(
            greedy_distant_seeds(&space, candidates, *k),
            greedy_distant_seeds(&space, candidates, *k)
        );
        Ok(())
    });
}

/// k-means from arbitrary generated seed clusters yields a valid full
/// partition: every item in exactly one cluster, iteration count within the
/// configured cap, no more clusters than seeds. (Starved clusters may end
/// empty — that is allowed; losing or duplicating an item is not.)
#[test]
fn kmeans_yields_valid_partition() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        seeds,
        _,
    )| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let opts = KMeansOptions::default();
        let out = kmeans(&space, seeds, &opts);
        let mut assigned: Vec<usize> = out.partition.clusters().iter().flatten().copied().collect();
        assigned.sort_unstable();
        require_eq!(assigned, (0..n).collect::<Vec<_>>());
        require!(out.partition.num_clusters() <= seeds.len());
        require!(
            out.iterations <= opts.max_iterations.max(1),
            "iterations {} above cap",
            out.iterations
        );
        Ok(())
    });
}

/// Degenerate seeds fall back instead of panicking: all-empty seed lists
/// produce the single-cluster fallback holding every item.
#[test]
fn kmeans_degenerate_seeds_fall_back() {
    let points = usizes(1, 8).flat_map(|&n| vecs(&vecs(&f64s(-3.0, 3.0), 2, 2), n, n));
    check!(CheckConfig::new(), points, |points: &Vec<Vec<f64>>| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let empty_seeds: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
        let out = kmeans(&space, &empty_seeds, &KMeansOptions::default());
        require_eq!(out.partition.num_clusters(), 1);
        require_eq!(out.partition.clusters()[0].len(), n);
        Ok(())
    });
}

/// Selection respects the space: the two seeds picked first are a pair at
/// maximal centroid distance (sanity link between Algorithm 3 and the
/// similarity space).
#[test]
fn greedy_selection_starts_with_a_farthest_pair() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        if candidates.len() <= *k {
            return Ok(()); // all candidates returned; no selection ran
        }
        let space = DenseSpace::new(points.clone());
        let picked = greedy_distant_seeds(&space, candidates, *k);
        let centroids: Vec<Vec<f64>> = candidates.iter().map(|c| space.centroid(c)).collect();
        let d = |i: usize, j: usize| 1.0 - space.centroid_similarity(&centroids[i], &centroids[j]);
        let first = d(picked[0], picked[1]);
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                require!(
                    d(i, j) <= first + 1e-9,
                    "pair ({i},{j}) at {} beats the chosen pair at {first}",
                    d(i, j)
                );
            }
        }
        Ok(())
    });
}
