//! `cafc-check` property suite for seed selection (Algorithm 3) and the
//! k-means loop over generated dense spaces. Runs offline on every commit.

use cafc_check::corpus::clustering;
use cafc_check::gen::{f64s, pairs, usizes, vecs, Gen};
use cafc_check::{check, require, require_eq, CheckConfig};
use cafc_cluster::{greedy_distant_seeds, kmeans, ClusterSpace, DenseSpace, KMeansOptions};

/// A selection problem: 2-D points, candidate seed clusters over them, and
/// a requested seed count.
type SelectionProblem = (Vec<Vec<f64>>, Vec<Vec<usize>>, usize);

/// `n` 2-D points (n in 2..=10) plus candidate seed clusters over them and
/// a requested seed count `k` in 2..=6.
fn selection_problem() -> Gen<SelectionProblem> {
    usizes(2, 10).flat_map(|&n| {
        let points = vecs(&vecs(&f64s(-3.0, 3.0), 2, 2), n, n);
        pairs(&pairs(&points, &clustering(n, 5)), &usizes(2, 6))
            .map(|((points, candidates), k)| (points.clone(), candidates.clone(), *k))
    })
}

/// Algorithm 3's selection half always returns `min(k, #candidates)`
/// mutually distinct candidate indices — when enough candidates exist, it
/// returns exactly `k` distinct hub clusters.
#[test]
fn greedy_selection_returns_k_distinct_candidates() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        let space = DenseSpace::new(points.clone());
        let picked = greedy_distant_seeds(&space, candidates, *k);
        require_eq!(picked.len(), (*k).min(candidates.len()));
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        require_eq!(sorted.len(), picked.len());
        require!(
            picked.iter().all(|&i| i < candidates.len()),
            "index out of range: {picked:?}"
        );
        Ok(())
    });
}

/// The greedy selection is deterministic: same space, same candidates,
/// same `k` — same indices in the same order.
#[test]
fn greedy_selection_deterministic() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        let space = DenseSpace::new(points.clone());
        require_eq!(
            greedy_distant_seeds(&space, candidates, *k),
            greedy_distant_seeds(&space, candidates, *k)
        );
        Ok(())
    });
}

/// k-means from arbitrary generated seed clusters yields a valid full
/// partition: every item in exactly one cluster, iteration count within the
/// configured cap, no more clusters than seeds. (Starved clusters may end
/// empty — that is allowed; losing or duplicating an item is not.)
#[test]
fn kmeans_yields_valid_partition() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        seeds,
        _,
    )| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let opts = KMeansOptions::default();
        let out = kmeans(&space, seeds, &opts);
        let mut assigned: Vec<usize> = out.partition.clusters().iter().flatten().copied().collect();
        assigned.sort_unstable();
        require_eq!(assigned, (0..n).collect::<Vec<_>>());
        require!(out.partition.num_clusters() <= seeds.len());
        require!(
            out.iterations <= opts.max_iterations.max(1),
            "iterations {} above cap",
            out.iterations
        );
        Ok(())
    });
}

/// Degenerate seeds fall back instead of panicking: all-empty seed lists
/// produce the single-cluster fallback holding every item.
#[test]
fn kmeans_degenerate_seeds_fall_back() {
    let points = usizes(1, 8).flat_map(|&n| vecs(&vecs(&f64s(-3.0, 3.0), 2, 2), n, n));
    check!(CheckConfig::new(), points, |points: &Vec<Vec<f64>>| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let empty_seeds: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
        let out = kmeans(&space, &empty_seeds, &KMeansOptions::default());
        require_eq!(out.partition.num_clusters(), 1);
        require_eq!(out.partition.clusters()[0].len(), n);
        Ok(())
    });
}

/// Selection respects the space: the two seeds picked first are a pair at
/// maximal centroid distance (sanity link between Algorithm 3 and the
/// similarity space).
#[test]
fn greedy_selection_starts_with_a_farthest_pair() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        candidates,
        k,
    )| {
        if candidates.len() <= *k {
            return Ok(()); // all candidates returned; no selection ran
        }
        let space = DenseSpace::new(points.clone());
        let picked = greedy_distant_seeds(&space, candidates, *k);
        let centroids: Vec<Vec<f64>> = candidates.iter().map(|c| space.centroid(c)).collect();
        let d = |i: usize, j: usize| 1.0 - space.centroid_similarity(&centroids[i], &centroids[j]);
        let first = d(picked[0], picked[1]);
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                require!(
                    d(i, j) <= first + 1e-9,
                    "pair ({i},{j}) at {} beats the chosen pair at {first}",
                    d(i, j)
                );
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// Scaling kernels (the 10^5–10^6-page PR): sparse assignment and
// mini-batch k-means against their exact-reference counterparts.
// ---------------------------------------------------------------------

use cafc_cluster::{
    kmeans_minibatch, kmeans_sparse, kmeans_sparse_exec, ExecPolicy, MiniBatchOptions,
    SparseClusterSpace,
};

/// A term-set space: each item is a set of `u64` term keys, an item's
/// vector is the indicator over its terms, and similarity is cosine. The
/// key contract property holds exactly: disjoint supports ⇒ dot = 0 ⇒
/// similarity exactly `0.0`.
struct TermSets {
    docs: Vec<Vec<u64>>, // each sorted + deduped
}

impl ClusterSpace for TermSets {
    type Centroid = Vec<(u64, f64)>; // sorted by term, non-zero weights

    fn len(&self) -> usize {
        self.docs.len()
    }

    fn centroid(&self, members: &[usize]) -> Self::Centroid {
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &m in members {
            for &t in &self.docs[m] {
                *acc.entry(t).or_insert(0.0) += 1.0;
            }
        }
        let n = members.len().max(1) as f64;
        acc.into_iter().map(|(t, w)| (t, w / n)).collect()
    }

    fn similarity(&self, centroid: &Self::Centroid, item: usize) -> f64 {
        let doc = &self.docs[item];
        let dot: f64 = centroid
            .iter()
            .filter(|(t, _)| doc.binary_search(t).is_ok())
            .map(|&(_, w)| w)
            .sum();
        let nc: f64 = centroid.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let nd = (doc.len() as f64).sqrt();
        if nc == 0.0 || nd == 0.0 {
            0.0
        } else {
            (dot / (nc * nd)).clamp(0.0, 1.0)
        }
    }

    fn centroid_similarity(&self, a: &Self::Centroid, b: &Self::Centroid) -> f64 {
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let na: f64 = a.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

impl SparseClusterSpace for TermSets {
    fn for_each_item_term(&self, item: usize, f: &mut dyn FnMut(u64)) {
        for &t in &self.docs[item] {
            f(t);
        }
    }

    fn for_each_centroid_term(&self, centroid: &Self::Centroid, f: &mut dyn FnMut(u64)) {
        for &(t, _) in centroid {
            f(t);
        }
    }
}

/// Documents as term sets, plus seed clusters over them.
type SparseProblem = (Vec<Vec<u64>>, Vec<Vec<usize>>);

/// A sparse clustering problem: documents as small term sets — including
/// empty documents and documents isolated onto a private term range (zero
/// overlap with everything else) — plus seed clusters over them.
fn sparse_problem() -> Gen<SparseProblem> {
    usizes(2, 9).flat_map(|&n| {
        // Per doc: a term set in 0..12, possibly empty, and an isolation
        // flag that moves the doc onto a disjoint private range.
        let doc = pairs(&vecs(&usizes(0, 11), 0, 4), &cafc_check::gen::bools());
        pairs(&vecs(&doc, n, n), &clustering(n, 4)).map(|(docs, seeds)| {
            let docs: Vec<Vec<u64>> = docs
                .iter()
                .enumerate()
                .map(|(i, (terms, isolated))| {
                    let offset = if *isolated { 1_000 + 100 * i as u64 } else { 0 };
                    let mut v: Vec<u64> = terms.iter().map(|&t| t as u64 + offset).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            (docs, seeds.clone())
        })
    })
}

/// The sparse kernel is a pure optimization: over any sparse corpus —
/// zero-overlap and empty documents included — `kmeans_sparse` is
/// bit-identical to dense `kmeans` from the same seeds, and invariant
/// across execution policies.
#[test]
fn sparse_assignment_matches_dense_reference() {
    check!(CheckConfig::new(), sparse_problem(), |(docs, seeds)| {
        let space = TermSets { docs: docs.clone() };
        let opts = KMeansOptions::default();
        let dense = kmeans(&space, seeds, &opts);
        let sparse = kmeans_sparse(&space, seeds, &opts);
        require_eq!(dense.partition.clusters(), sparse.partition.clusters());
        require_eq!(dense.iterations, sparse.iterations);
        require_eq!(dense.converged, sparse.converged);
        let parallel =
            kmeans_sparse_exec(&space, seeds, &opts, ExecPolicy::Parallel { threads: 3 });
        require_eq!(sparse.partition.clusters(), parallel.partition.clusters());
        Ok(())
    });
}

/// Mini-batch with `batch_size >= n` degenerates to full-batch k-means
/// exactly — every iteration scores every item, so the outcome must be
/// bit-identical whatever the seed of the batch sampler.
#[test]
fn minibatch_full_batch_is_exact_kmeans() {
    let problem = pairs(&selection_problem(), &usizes(0, u64::MAX as usize >> 1));
    check!(CheckConfig::new(), problem, |(
        (points, seeds, _),
        mb_seed,
    )| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let opts = KMeansOptions::default();
        let full = kmeans(&space, seeds, &opts);
        let mb = MiniBatchOptions::new()
            .with_batch_size(n)
            .with_seed(*mb_seed as u64);
        let mini = kmeans_minibatch(&space, seeds, &opts, &mb);
        require_eq!(full.partition.clusters(), mini.partition.clusters());
        require_eq!(full.iterations, mini.iterations);
        require_eq!(full.converged, mini.converged);
        Ok(())
    });
}

/// Small mini-batches still produce a valid full partition: every item in
/// exactly one cluster, no more clusters than seeds.
#[test]
fn minibatch_small_batches_keep_partition_valid() {
    check!(CheckConfig::new(), selection_problem(), |(
        points,
        seeds,
        _,
    )| {
        let n = points.len();
        let space = DenseSpace::new(points.clone());
        let mb = MiniBatchOptions::new().with_batch_size(2).with_seed(5);
        let out = kmeans_minibatch(&space, seeds, &KMeansOptions::default(), &mb);
        let mut assigned: Vec<usize> = out.partition.clusters().iter().flatten().copied().collect();
        assigned.sort_unstable();
        require_eq!(assigned, (0..n).collect::<Vec<_>>());
        require!(out.partition.num_clusters() <= seeds.len().max(1));
        Ok(())
    });
}
