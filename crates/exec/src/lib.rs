//! # cafc-exec
//!
//! A deterministic parallel execution layer on `std::thread` — no external
//! dependencies, no work stealing, no result reordering.
//!
//! Form-page clustering is embarrassingly parallel per page and per pair,
//! but a naive fan-out destroys reproducibility: float accumulation order
//! depends on the thread schedule and the answer changes with the core
//! count. Every primitive here is built around one rule instead:
//!
//! > **Work is split at *fixed chunk boundaries* that depend only on the
//! > item count, never on the thread count, and partial results are merged
//! > in chunk-index order.**
//!
//! Threads race only for *which chunk to compute next* (an atomic ticket),
//! never for where a result lands. The output of every primitive is
//! therefore bit-identical across [`ExecPolicy::Serial`],
//! [`ExecPolicy::Parallel`] at any thread count, and [`ExecPolicy::Auto`]
//! — the serial path runs the exact same chunked code single-threaded.
//!
//! * [`par_chunks`] — the core primitive: apply a closure to each fixed
//!   index chunk, return per-chunk results in chunk order.
//! * [`par_map`] / [`par_map_slice`] — order-preserving element-wise map.
//! * [`par_reduce`] — indexed-chunk reduction: per-chunk partials merged
//!   left-to-right in chunk order (deterministic float sums).

#![warn(missing_docs)]

use cafc_obs::Obs;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How a parallelizable stage executes.
///
/// Every policy produces bit-identical results (see the crate docs); the
/// policy only chooses how many OS threads do the work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Single-threaded, on the calling thread. The default everywhere.
    #[default]
    Serial,
    /// A fixed number of worker threads (clamped to at least 1).
    Parallel {
        /// Worker thread count.
        threads: usize,
    },
    /// One thread per available core (`std::thread::available_parallelism`),
    /// falling back to serial when the core count cannot be determined.
    Auto,
}

impl ExecPolicy {
    /// The resolved worker-thread count for this policy (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { threads } => threads.max(1),
            ExecPolicy::Auto => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        }
    }

    /// True when this policy resolves to more than one thread.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }
}

/// Default chunk length for element-wise maps. Fixed — never derived from
/// the thread count — so chunk boundaries (and thus merge order) are a pure
/// function of the item count.
pub const DEFAULT_CHUNK: usize = 64;

/// The `c`-th fixed chunk of `0..n` at chunk length `chunk_len`.
fn chunk_range(c: usize, n: usize, chunk_len: usize) -> Range<usize> {
    let lo = c * chunk_len;
    lo..((lo + chunk_len).min(n))
}

/// Apply `f` to every fixed chunk of `0..n` and return the per-chunk
/// results **in chunk order**.
///
/// Chunk boundaries are `[0, chunk_len)`, `[chunk_len, 2·chunk_len)`, …
/// regardless of `policy`; parallel workers pull chunk tickets from an
/// atomic counter and send results home tagged with their chunk index, so
/// the returned `Vec` is independent of scheduling. `chunk_len` is clamped
/// to at least 1.
pub fn par_chunks<A, F>(policy: ExecPolicy, n: usize, chunk_len: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    let chunk_len = chunk_len.max(1);
    let num_chunks = n.div_ceil(chunk_len);
    let threads = policy.threads().min(num_chunks);
    if threads <= 1 {
        return (0..num_chunks)
            .map(|c| f(chunk_range(c, n, chunk_len)))
            .collect();
    }

    let ticket = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, A)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let ticket = &ticket;
            let f = &f;
            scope.spawn(move || loop {
                let c = ticket.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let out = f(chunk_range(c, n, chunk_len));
                if tx.send((c, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<A>> = (0..num_chunks).map(|_| None).collect();
    for (c, out) in rx {
        slots[c] = Some(out);
    }
    // A missing slot cannot happen (the scope joins every worker and worker
    // panics propagate out of it), but recompute rather than panic if the
    // impossible occurs.
    slots
        .into_iter()
        .enumerate()
        .map(|(c, slot)| slot.unwrap_or_else(|| f(chunk_range(c, n, chunk_len))))
        .collect()
}

/// Order-preserving parallel map over `0..n`: returns
/// `vec![f(0), f(1), …, f(n-1)]` for every policy.
pub fn par_map<R, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = par_chunks(policy, n, DEFAULT_CHUNK, |range| {
        range.map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Order-preserving parallel map over a slice: returns
/// `vec![f(0, &items[0]), …]` for every policy.
pub fn par_map_slice<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(policy, items.len(), |i| f(i, &items[i]))
}

/// [`par_chunks`] with per-chunk instrumentation under `label`:
///
/// * counter `{label}.chunks` — chunks dispatched (`⌈n / chunk_len⌉`);
/// * counter `{label}.items` — items covered (`n`);
/// * histogram `{label}.chunk_us` — per-chunk wall clock, observed by the
///   worker that computed the chunk.
///
/// Chunk boundaries, merge order, and results are exactly those of
/// [`par_chunks`]; instrumentation never influences scheduling. Chunk
/// counts depend only on `n` and `chunk_len`, and under a logical clock
/// every duration is 0, so snapshots stay byte-identical across policies.
/// A disabled `obs` skips even the metric-name formatting.
pub fn par_chunks_obs<A, F>(
    policy: ExecPolicy,
    n: usize,
    chunk_len: usize,
    obs: &Obs,
    label: &str,
    f: F,
) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    if !obs.is_enabled() {
        return par_chunks(policy, n, chunk_len, f);
    }
    let chunk_len = chunk_len.max(1);
    obs.add(&format!("{label}.chunks"), n.div_ceil(chunk_len) as u64);
    obs.add(&format!("{label}.items"), n as u64);
    let chunk_metric = format!("{label}.chunk_us");
    par_chunks(policy, n, chunk_len, |range| {
        let t0 = obs.start_timer();
        let out = f(range);
        obs.observe_since(&chunk_metric, t0);
        out
    })
}

/// [`par_map`] with per-chunk instrumentation under `label` — see
/// [`par_chunks_obs`] for the metrics emitted.
pub fn par_map_obs<R, F>(policy: ExecPolicy, n: usize, obs: &Obs, label: &str, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = par_chunks_obs(policy, n, DEFAULT_CHUNK, obs, label, |range| {
        range.map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Indexed-chunk reduction: compute a partial result per fixed chunk of
/// `0..n`, then merge the partials **left to right in chunk order**.
///
/// Because chunk boundaries depend only on `n` and `chunk_len`, and the
/// merge order is fixed, floating-point reductions are bit-identical across
/// policies and thread counts. Returns `None` when `n == 0`.
pub fn par_reduce<A, F, M>(
    policy: ExecPolicy,
    n: usize,
    chunk_len: usize,
    map: F,
    merge: M,
) -> Option<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let partials = par_chunks(policy, n, chunk_len, map);
    partials.into_iter().reduce(merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICIES: [ExecPolicy; 5] = [
        ExecPolicy::Serial,
        ExecPolicy::Parallel { threads: 1 },
        ExecPolicy::Parallel { threads: 3 },
        ExecPolicy::Parallel { threads: 7 },
        ExecPolicy::Auto,
    ];

    #[test]
    fn threads_resolution() {
        assert_eq!(ExecPolicy::Serial.threads(), 1);
        assert_eq!(ExecPolicy::Parallel { threads: 4 }.threads(), 4);
        assert_eq!(ExecPolicy::Parallel { threads: 0 }.threads(), 1);
        assert!(ExecPolicy::Auto.threads() >= 1);
        assert!(!ExecPolicy::Serial.is_parallel());
    }

    #[test]
    fn par_map_preserves_order_for_every_policy() {
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for policy in POLICIES {
            assert_eq!(par_map(policy, 1000, |i| i * i), expect, "{policy:?}");
        }
    }

    #[test]
    fn par_map_slice_matches_serial() {
        let items: Vec<String> = (0..300).map(|i| format!("x{i}")).collect();
        let expect: Vec<usize> = items.iter().enumerate().map(|(i, s)| i + s.len()).collect();
        for policy in POLICIES {
            assert_eq!(
                par_map_slice(policy, &items, |i, s| i + s.len()),
                expect,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn par_chunks_boundaries_are_fixed() {
        for policy in POLICIES {
            let ranges = par_chunks(policy, 10, 4, |r| r);
            assert_eq!(ranges, vec![0..4, 4..8, 8..10], "{policy:?}");
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_policies() {
        // A sum that is sensitive to association order: all policies must
        // produce the exact same bits because they share chunk boundaries.
        let value = |i: usize| 1.0 / (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 };
        let sum = |policy| {
            par_reduce(
                policy,
                10_000,
                128,
                |r| r.map(value).sum::<f64>(),
                |a, b| a + b,
            )
            .map(f64::to_bits)
        };
        let serial = sum(ExecPolicy::Serial);
        assert!(serial.is_some());
        for policy in POLICIES {
            assert_eq!(sum(policy), serial, "{policy:?}");
        }
    }

    #[test]
    fn reduce_empty_is_none() {
        for policy in POLICIES {
            assert_eq!(
                par_reduce(policy, 0, 8, |r| r.len(), |a, b| a + b),
                None,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn zero_and_tiny_inputs() {
        for policy in POLICIES {
            assert_eq!(par_map(policy, 0, |i| i), Vec::<usize>::new());
            assert_eq!(par_map(policy, 1, |i| i + 41), vec![41]);
        }
    }

    #[test]
    fn chunk_len_zero_is_clamped() {
        assert_eq!(
            par_chunks(ExecPolicy::Serial, 3, 0, |r| r.len()),
            vec![1; 3]
        );
    }

    #[test]
    fn more_threads_than_chunks() {
        let out = par_map(ExecPolicy::Parallel { threads: 64 }, 5, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn obs_variants_match_uninstrumented_results() {
        let expect: Vec<usize> = (0..500).map(|i| i * 3).collect();
        for policy in POLICIES {
            for obs in [Obs::disabled(), Obs::enabled()] {
                assert_eq!(
                    par_map_obs(policy, 500, &obs, "t", |i| i * 3),
                    expect,
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn obs_chunk_metrics_are_policy_invariant() {
        let run = |policy| {
            let obs = Obs::with_clock(std::sync::Arc::new(cafc_obs::ManualClock::new()));
            par_chunks_obs(policy, 10, 4, &obs, "stage", |r| r.len());
            obs.snapshot().render_json()
        };
        let serial = run(ExecPolicy::Serial);
        assert!(serial.contains("\"stage.chunks\": 3"), "{serial}");
        assert!(serial.contains("\"stage.items\": 10"), "{serial}");
        assert!(serial.contains("stage.chunk_us"), "{serial}");
        for policy in POLICIES {
            assert_eq!(run(policy), serial, "{policy:?}");
        }
    }
}
