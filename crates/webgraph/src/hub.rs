//! Hub-cluster construction (§3.1 and §3.3 of the paper).
//!
//! A *hub* is a page with a backlink to one or more of the target form
//! pages; the set of targets it co-cites is a *hub cluster*. The paper's
//! pipeline, reproduced here:
//!
//! 1. retrieve up to `backlink_limit` backlinks per form page (the paper
//!    used 100, via the AltaVista `link:` API);
//! 2. for form pages with no backlinks (over 15 % in the paper's crawl),
//!    fall back to the backlinks of the *site root* page;
//! 3. eliminate intra-site hubs ("backlinks \[that\] belong to the same site
//!    as the page they point to ... do not add much information");
//! 4. deduplicate identical co-citation sets — the paper reports 3,450
//!    distinct hub clusters;
//! 5. drop clusters below a minimum cardinality (Figure 3 sweeps this
//!    threshold; the headline configuration uses 8, shrinking the pool to
//!    164 clusters and with it the greedy-selection search space).

use crate::graph::{PageId, WebGraph};
use std::collections::HashMap;

/// Options controlling hub-cluster construction.
#[derive(Debug, Clone, Copy)]
pub struct HubClusterOptions {
    /// Maximum backlinks retrieved per form page (paper: 100).
    pub backlink_limit: usize,
    /// Minimum number of co-cited form pages for a cluster to survive
    /// (paper's headline configuration: 8). `0` or `1` disables filtering.
    pub min_cardinality: usize,
    /// Fall back to site-root backlinks when a page has none (paper: yes).
    pub root_fallback: bool,
    /// Eliminate hubs on the same site as the page they point to.
    pub drop_intra_site: bool,
}

impl Default for HubClusterOptions {
    fn default() -> Self {
        HubClusterOptions {
            backlink_limit: 100,
            min_cardinality: 8,
            root_fallback: true,
            drop_intra_site: true,
        }
    }
}

/// A group of target form pages co-cited by (at least) one hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubCluster {
    /// Indices into the `targets` slice passed to [`hub_clusters`],
    /// sorted ascending, without duplicates.
    pub members: Vec<usize>,
    /// One representative hub page that induced this cluster.
    pub hub: PageId,
}

impl HubCluster {
    /// Cluster size.
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }
}

/// Statistics of the construction, mirroring the numbers reported in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HubStats {
    /// Number of target form pages.
    pub total_targets: usize,
    /// Targets with zero direct backlinks (pre-fallback) — paper: >15 %.
    pub targets_without_backlinks: usize,
    /// Targets still uncovered after the root fallback.
    pub targets_uncovered: usize,
    /// Distinct co-citation sets before cardinality filtering — paper: 3,450.
    pub distinct_clusters: usize,
    /// Clusters surviving the cardinality filter — paper: 164 at ≥8.
    pub clusters_after_filter: usize,
}

/// Build hub clusters for `targets` over `graph`.
///
/// Returns the surviving clusters (deterministic order: by first member,
/// then lexicographically) and construction statistics.
pub fn hub_clusters(
    graph: &WebGraph,
    targets: &[PageId],
    opts: &HubClusterOptions,
) -> (Vec<HubCluster>, HubStats) {
    let mut stats = HubStats {
        total_targets: targets.len(),
        ..HubStats::default()
    };
    // hub page -> sorted target indices
    let mut by_hub: HashMap<PageId, Vec<usize>> = HashMap::new();
    let mut covered = vec![false; targets.len()];

    for (idx, &target) in targets.iter().enumerate() {
        let direct = graph.backlinks(target, opts.backlink_limit);
        let mut hubs: Vec<PageId> = direct
            .iter()
            .copied()
            .filter(|&h| !opts.drop_intra_site || !graph.url(h).same_site(graph.url(target)))
            .collect();
        // The paper's "AltaVista returned no backlinks for over 15% of
        // forms": no usable (external) backlink evidence before fallback.
        if hubs.is_empty() {
            stats.targets_without_backlinks += 1;
        }
        if hubs.is_empty() && opts.root_fallback {
            // "we also retrieved backlinks to the root page of the site
            // where the form is located"
            let root = graph.url(target).site_root();
            if let Some(root_id) = graph.page_id(&root) {
                if root_id != target {
                    hubs = graph
                        .backlinks(root_id, opts.backlink_limit)
                        .iter()
                        .copied()
                        .filter(|&h| {
                            !opts.drop_intra_site || !graph.url(h).same_site(graph.url(target))
                        })
                        .collect();
                }
            }
        }
        for hub in hubs {
            by_hub.entry(hub).or_default().push(idx);
            covered[idx] = true;
        }
    }
    stats.targets_uncovered = covered.iter().filter(|&&c| !c).count();

    // Deduplicate identical member sets ("distinct sets of pages that are
    // co-cited by a hub").
    let mut distinct: HashMap<Vec<usize>, PageId> = HashMap::new();
    for (hub, mut members) in by_hub {
        members.sort_unstable();
        members.dedup();
        distinct.entry(members).or_insert(hub);
    }
    stats.distinct_clusters = distinct.len();

    let min = opts.min_cardinality.max(1);
    let mut clusters: Vec<HubCluster> = distinct
        .into_iter()
        .filter(|(members, _)| members.len() >= min)
        .map(|(members, hub)| HubCluster { members, hub })
        .collect();
    clusters.sort_by(|a, b| a.members.cmp(&b.members));
    stats.clusters_after_filter = clusters.len();
    (clusters, stats)
}

/// Fraction of clusters whose members all carry the same label — the
/// paper's hub-cluster homogeneity measure ("69 % were homogeneous").
///
/// `labels[i]` is the gold class of target `i`. Returns `None` when there
/// are no clusters.
pub fn homogeneity<L: PartialEq>(clusters: &[HubCluster], labels: &[L]) -> Option<f64> {
    if clusters.is_empty() {
        return None;
    }
    let homogeneous = clusters
        .iter()
        .filter(|c| {
            let first = &labels[c.members[0]];
            c.members.iter().all(|&m| &labels[m] == first)
        })
        .count();
    Some(homogeneous as f64 / clusters.len() as f64)
}

/// Number of distinct labels that appear in at least one *homogeneous*
/// cluster — the paper's "representative homogeneous hub clusters in all
/// domains" check.
pub fn domains_covered<L: PartialEq + Clone>(clusters: &[HubCluster], labels: &[L]) -> usize {
    let mut seen: Vec<L> = Vec::new();
    for c in clusters {
        let first = &labels[c.members[0]];
        if c.members.iter().all(|&m| &labels[m] == first) && !seen.contains(first) {
            seen.push(first.clone());
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    /// Graph: two hubs; hub1 -> t0,t1 ; hub2 -> t1,t2 ; t3 has no backlinks
    /// but its site root does (hub2 -> root3).
    fn fixture() -> (WebGraph, Vec<PageId>) {
        let mut g = WebGraph::new();
        let t0 = g.intern(url("http://s0.com/form"));
        let t1 = g.intern(url("http://s1.com/form"));
        let t2 = g.intern(url("http://s2.com/form"));
        let t3 = g.intern(url("http://s3.com/form"));
        let root3 = g.intern(url("http://s3.com/"));
        let hub1 = g.intern(url("http://hub1.com/dir"));
        let hub2 = g.intern(url("http://hub2.com/dir"));
        g.add_link(hub1, t0);
        g.add_link(hub1, t1);
        g.add_link(hub2, t1);
        g.add_link(hub2, t2);
        g.add_link(hub2, root3);
        (g, vec![t0, t1, t2, t3])
    }

    fn opts(min: usize) -> HubClusterOptions {
        HubClusterOptions {
            min_cardinality: min,
            ..HubClusterOptions::default()
        }
    }

    #[test]
    fn co_citation_groups() {
        let (g, targets) = fixture();
        let (clusters, stats) = hub_clusters(&g, &targets, &opts(1));
        // hub1 co-cites {0,1}; hub2 co-cites {1,2,3} (3 via root fallback).
        let sets: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
        assert!(sets.contains(&vec![0, 1]), "sets = {sets:?}");
        assert!(sets.contains(&vec![1, 2, 3]), "sets = {sets:?}");
        assert_eq!(stats.total_targets, 4);
        assert_eq!(stats.targets_without_backlinks, 1); // t3
        assert_eq!(stats.targets_uncovered, 0);
        assert_eq!(stats.distinct_clusters, 2);
    }

    #[test]
    fn root_fallback_can_be_disabled() {
        let (g, targets) = fixture();
        let o = HubClusterOptions {
            root_fallback: false,
            ..opts(1)
        };
        let (clusters, stats) = hub_clusters(&g, &targets, &o);
        let sets: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
        assert!(sets.contains(&vec![1, 2]), "sets = {sets:?}");
        assert!(!sets.iter().any(|s| s.contains(&3)));
        assert_eq!(stats.targets_uncovered, 1);
    }

    #[test]
    fn intra_site_hubs_eliminated() {
        let mut g = WebGraph::new();
        let t = g.intern(url("http://s.com/form"));
        let nav = g.intern(url("http://s.com/nav")); // same site
        let ext = g.intern(url("http://other.com/links"));
        g.add_link(nav, t);
        g.add_link(ext, t);
        let (clusters, _) = hub_clusters(&g, &[t], &opts(1));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].hub, ext);
    }

    #[test]
    fn intra_site_elimination_can_be_disabled() {
        let mut g = WebGraph::new();
        let t = g.intern(url("http://s.com/form"));
        let nav = g.intern(url("http://s.com/nav"));
        g.add_link(nav, t);
        let o = HubClusterOptions {
            drop_intra_site: false,
            ..opts(1)
        };
        let (clusters, _) = hub_clusters(&g, &[t], &o);
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn cardinality_filter() {
        let (g, targets) = fixture();
        let (clusters, stats) = hub_clusters(&g, &targets, &opts(3));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members, vec![1, 2, 3]);
        assert_eq!(stats.distinct_clusters, 2);
        assert_eq!(stats.clusters_after_filter, 1);
    }

    #[test]
    fn duplicate_cocitation_sets_deduped() {
        let mut g = WebGraph::new();
        let t0 = g.intern(url("http://s0.com/f"));
        let t1 = g.intern(url("http://s1.com/f"));
        let h1 = g.intern(url("http://h1.com/"));
        let h2 = g.intern(url("http://h2.com/"));
        for h in [h1, h2] {
            g.add_link(h, t0);
            g.add_link(h, t1);
        }
        let (clusters, stats) = hub_clusters(&g, &[t0, t1], &opts(1));
        assert_eq!(clusters.len(), 1);
        assert_eq!(stats.distinct_clusters, 1);
    }

    #[test]
    fn backlink_limit_respected() {
        let mut g = WebGraph::new();
        let t = g.intern(url("http://t.com/f"));
        for i in 0..5 {
            let h = g.intern(url(&format!("http://h{i}.com/")));
            g.add_link(h, t);
        }
        let o = HubClusterOptions {
            backlink_limit: 2,
            ..opts(1)
        };
        let (clusters, _) = hub_clusters(&g, &[t], &o);
        // Only the first 2 backlinks are seen, each inducing the singleton
        // {0}; dedup collapses them to one cluster.
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn homogeneity_measure() {
        let clusters = vec![
            HubCluster {
                members: vec![0, 1],
                hub: PageId(0),
            },
            HubCluster {
                members: vec![2, 3],
                hub: PageId(1),
            },
        ];
        let labels = ["a", "a", "a", "b"];
        assert_eq!(homogeneity(&clusters, &labels), Some(0.5));
        assert_eq!(homogeneity::<&str>(&[], &labels), None);
    }

    #[test]
    fn domains_covered_counts_homogeneous_only() {
        let clusters = vec![
            HubCluster {
                members: vec![0, 1],
                hub: PageId(0),
            }, // homogeneous "a"
            HubCluster {
                members: vec![2, 3],
                hub: PageId(1),
            }, // mixed
            HubCluster {
                members: vec![3],
                hub: PageId(2),
            }, // homogeneous "b"
        ];
        let labels = ["a", "a", "a", "b"];
        assert_eq!(domains_covered(&clusters, &labels), 2);
    }

    #[test]
    fn empty_targets() {
        let g = WebGraph::new();
        let (clusters, stats) = hub_clusters(&g, &[], &opts(1));
        assert!(clusters.is_empty());
        assert_eq!(stats.total_targets, 0);
    }
}
