//! HITS (Kleinberg's hubs-and-authorities) over the web graph.
//!
//! The paper's §6 lists "the quality of hub pages" among the link features
//! it plans to exploit, and its related-work section discusses the
//! hub/authority machinery used to find web communities \[12, 24\]. This
//! module provides the standard iterative HITS computation so hub pages
//! can be ranked by link-structural quality — used by the
//! `exp_hub_quality` ablation to weight hub clusters by their inducing
//! hub's score.

use crate::graph::{PageId, WebGraph};

/// Per-page HITS scores.
#[derive(Debug, Clone)]
pub struct HitsScores {
    hub: Vec<f64>,
    authority: Vec<f64>,
    /// Number of update iterations performed.
    pub iterations: usize,
}

impl HitsScores {
    /// Hub score of a page (how well it points at good authorities).
    pub fn hub(&self, id: PageId) -> f64 {
        self.hub.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Authority score of a page (how well good hubs point at it).
    pub fn authority(&self, id: PageId) -> f64 {
        self.authority.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Pages sorted by descending hub score.
    pub fn top_hubs(&self, k: usize) -> Vec<(PageId, f64)> {
        let mut v: Vec<(PageId, f64)> = self
            .hub
            .iter()
            .enumerate()
            .map(|(i, &s)| (PageId(i as u32), s)) // score vectors are indexed by u32 PageIds
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v.truncate(k);
        v
    }
}

/// HITS options.
#[derive(Debug, Clone, Copy)]
pub struct HitsOptions {
    /// Maximum update iterations.
    pub max_iterations: usize,
    /// Stop when the L1 change of both vectors drops below this.
    pub tolerance: f64,
}

impl Default for HitsOptions {
    fn default() -> Self {
        HitsOptions {
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Run HITS over the whole graph.
///
/// Scores are L2-normalized each iteration; an empty graph yields empty
/// score vectors.
pub fn hits(graph: &WebGraph, opts: &HitsOptions) -> HitsScores {
    let n = graph.len();
    let mut hub = vec![1.0f64; n];
    let mut authority = vec![1.0f64; n];
    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        iterations += 1;
        // authority(p) = sum of hub scores of pages linking to p
        let mut new_auth = vec![0.0f64; n];
        for (i, a) in new_auth.iter_mut().enumerate() {
            let id = PageId(i as u32);
            *a = graph.in_links(id).iter().map(|q| hub[q.index()]).sum();
        }
        // hub(p) = sum of authority scores of pages p links to
        let mut new_hub = vec![0.0f64; n];
        for (i, h) in new_hub.iter_mut().enumerate() {
            let id = PageId(i as u32);
            *h = graph
                .out_links(id)
                .iter()
                .map(|q| new_auth[q.index()])
                .sum();
        }
        normalize(&mut new_auth);
        normalize(&mut new_hub);
        let delta: f64 = new_auth
            .iter()
            .zip(&authority)
            .chain(new_hub.iter().zip(&hub))
            .map(|(a, b)| (a - b).abs())
            .sum();
        authority = new_auth;
        hub = new_hub;
        if delta < opts.tolerance {
            break;
        }
    }
    HitsScores {
        hub,
        authority,
        iterations,
    }
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    /// Two hubs pointing at two authorities; hub1 points at both, hub2 at
    /// one. hub1 must out-score hub2; the doubly-cited authority must
    /// out-score the other.
    fn fixture() -> (WebGraph, PageId, PageId, PageId, PageId) {
        let mut g = WebGraph::new();
        let h1 = g.intern(url("http://h1.org/"));
        let h2 = g.intern(url("http://h2.org/"));
        let a1 = g.intern(url("http://a1.com/"));
        let a2 = g.intern(url("http://a2.com/"));
        g.add_link(h1, a1);
        g.add_link(h1, a2);
        g.add_link(h2, a1);
        (g, h1, h2, a1, a2)
    }

    #[test]
    fn hub_and_authority_ordering() {
        let (g, h1, h2, a1, a2) = fixture();
        let scores = hits(&g, &HitsOptions::default());
        assert!(scores.hub(h1) > scores.hub(h2));
        assert!(scores.authority(a1) > scores.authority(a2));
        // Authorities are not hubs and vice versa in this graph.
        assert!(scores.hub(a1) == 0.0);
        assert!(scores.authority(h1) == 0.0);
    }

    #[test]
    fn converges_quickly() {
        let (g, ..) = fixture();
        let scores = hits(&g, &HitsOptions::default());
        assert!(
            scores.iterations < 100,
            "did not converge: {}",
            scores.iterations
        );
    }

    #[test]
    fn top_hubs_sorted() {
        let (g, h1, ..) = fixture();
        let scores = hits(&g, &HitsOptions::default());
        let top = scores.top_hubs(2);
        assert_eq!(top[0].0, h1);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn empty_graph() {
        let g = WebGraph::new();
        let scores = hits(&g, &HitsOptions::default());
        assert!(scores.top_hubs(5).is_empty());
    }

    #[test]
    fn disconnected_pages_score_zero() {
        let mut g = WebGraph::new();
        let isolated = g.intern(url("http://alone.com/"));
        let h = g.intern(url("http://h.org/"));
        let a = g.intern(url("http://a.com/"));
        g.add_link(h, a);
        let scores = hits(&g, &HitsOptions::default());
        assert_eq!(scores.hub(isolated), 0.0);
        assert_eq!(scores.authority(isolated), 0.0);
    }

    #[test]
    fn scores_normalized() {
        let (g, ..) = fixture();
        let scores = hits(&g, &HitsOptions::default());
        let hub_norm: f64 = (0..g.len())
            .map(|i| scores.hub(PageId(i as u32)).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!((hub_norm - 1.0).abs() < 1e-9);
    }
}
