//! An in-memory web graph with a backlink index.
//!
//! Pages are interned by URL into dense [`PageId`]s; each page can carry an
//! HTML payload (the synthetic corpus stores generated pages here, and the
//! crawler fetches from it). Directed links maintain both adjacency
//! directions incrementally, so `backlinks()` — the stand-in for the search
//! engines' `link:` API used in §3.1 — is an O(1) slice lookup.

use crate::url::Url;
use std::collections::HashMap;

/// Dense identifier of a page in a [`WebGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct PageEntry {
    url: Url,
    html: Option<String>,
    out: Vec<PageId>,
    inc: Vec<PageId>,
}

/// A directed web graph over interned URLs.
#[derive(Debug, Clone, Default)]
pub struct WebGraph {
    pages: Vec<PageEntry>,
    by_url: HashMap<Url, PageId>,
}

impl WebGraph {
    /// An empty graph.
    pub fn new() -> Self {
        WebGraph::default()
    }

    /// Intern `url`, creating a content-less page if new.
    pub fn intern(&mut self, url: Url) -> PageId {
        if let Some(&id) = self.by_url.get(&url) {
            return id;
        }
        let id = PageId(u32::try_from(self.pages.len()).expect("fewer than 4Gi pages"));
        self.pages.push(PageEntry {
            url: url.clone(),
            html: None,
            out: Vec::new(),
            inc: Vec::new(),
        });
        self.by_url.insert(url, id);
        id
    }

    /// Intern `url` and attach HTML content (replacing any previous content).
    pub fn add_page(&mut self, url: Url, html: String) -> PageId {
        let id = self.intern(url);
        self.pages[id.index()].html = Some(html);
        id
    }

    /// Add a directed link `from → to`. Parallel edges are deduplicated.
    pub fn add_link(&mut self, from: PageId, to: PageId) {
        if self.pages[from.index()].out.contains(&to) {
            return;
        }
        self.pages[from.index()].out.push(to);
        self.pages[to.index()].inc.push(from);
    }

    /// Look up a page by URL.
    pub fn page_id(&self, url: &Url) -> Option<PageId> {
        self.by_url.get(url).copied()
    }

    /// The URL of a page.
    pub fn url(&self, id: PageId) -> &Url {
        &self.pages[id.index()].url
    }

    /// The stored HTML of a page, if any (None for link-only placeholders).
    pub fn html(&self, id: PageId) -> Option<&str> {
        self.pages[id.index()].html.as_deref()
    }

    /// Out-links of a page.
    pub fn out_links(&self, id: PageId) -> &[PageId] {
        &self.pages[id.index()].out
    }

    /// In-links of a page — the full backlink set.
    pub fn in_links(&self, id: PageId) -> &[PageId] {
        &self.pages[id.index()].inc
    }

    /// The `link:` API substitute: up to `limit` backlinks of `id`, in
    /// insertion order (the engines return an arbitrary incomplete sample;
    /// the paper extracted "a maximum of 100 backlinks" per page).
    pub fn backlinks(&self, id: PageId, limit: usize) -> &[PageId] {
        let inc = &self.pages[id.index()].inc;
        &inc[..inc.len().min(limit)]
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the graph has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total number of directed links.
    pub fn num_links(&self) -> usize {
        self.pages.iter().map(|p| p.out.len()).sum()
    }

    /// Iterate all page ids.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> {
        (0..self.pages.len()).map(|i| PageId(i as u32)) // ids assigned as u32 in intern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    #[test]
    fn intern_dedupes() {
        let mut g = WebGraph::new();
        let a = g.intern(url("http://a.com/"));
        let b = g.intern(url("http://a.com/"));
        assert_eq!(a, b);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn add_page_stores_html() {
        let mut g = WebGraph::new();
        let id = g.add_page(url("http://a.com/p"), "<p>x</p>".into());
        assert_eq!(g.html(id), Some("<p>x</p>"));
        assert_eq!(g.url(id), &url("http://a.com/p"));
    }

    #[test]
    fn placeholder_has_no_html() {
        let mut g = WebGraph::new();
        let id = g.intern(url("http://a.com/p"));
        assert_eq!(g.html(id), None);
    }

    #[test]
    fn links_maintain_both_directions() {
        let mut g = WebGraph::new();
        let hub = g.intern(url("http://hub.com/"));
        let p1 = g.intern(url("http://a.com/f"));
        let p2 = g.intern(url("http://b.com/f"));
        g.add_link(hub, p1);
        g.add_link(hub, p2);
        assert_eq!(g.out_links(hub), &[p1, p2]);
        assert_eq!(g.in_links(p1), &[hub]);
        assert_eq!(g.num_links(), 2);
    }

    #[test]
    fn parallel_edges_deduped() {
        let mut g = WebGraph::new();
        let a = g.intern(url("http://a.com/"));
        let b = g.intern(url("http://b.com/"));
        g.add_link(a, b);
        g.add_link(a, b);
        assert_eq!(g.num_links(), 1);
        assert_eq!(g.in_links(b).len(), 1);
    }

    #[test]
    fn backlinks_respect_limit() {
        let mut g = WebGraph::new();
        let target = g.intern(url("http://t.com/f"));
        for i in 0..10 {
            let h = g.intern(url(&format!("http://h{i}.com/")));
            g.add_link(h, target);
        }
        assert_eq!(g.backlinks(target, 100).len(), 10);
        assert_eq!(g.backlinks(target, 3).len(), 3);
        assert_eq!(g.backlinks(target, 0).len(), 0);
    }

    #[test]
    fn page_id_lookup() {
        let mut g = WebGraph::new();
        let id = g.intern(url("http://a.com/x"));
        assert_eq!(g.page_id(&url("http://a.com/x")), Some(id));
        assert_eq!(g.page_id(&url("http://a.com/y")), None);
    }

    #[test]
    fn page_ids_iterates_all() {
        let mut g = WebGraph::new();
        g.intern(url("http://a.com/"));
        g.intern(url("http://b.com/"));
        assert_eq!(g.page_ids().count(), 2);
    }
}
