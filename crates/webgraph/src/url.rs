//! A minimal URL type sufficient for web-graph bookkeeping.
//!
//! We need exactly three things from URLs: a canonical string identity for
//! page lookup, *site* identity (host) for intra-site hub elimination and
//! the root-page fallback of §3.1, and relative-reference resolution for the
//! crawler. Full RFC 3986 generality (userinfo, IPv6 literals, ports in
//! site identity, percent-encoding normalization) is intentionally out of
//! scope; the synthetic web only produces `http`/`https` URLs of the shape
//! `scheme://host/path?query`.

use std::fmt;

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    scheme: String,
    host: String,
    /// Always begins with `/`; includes the query string if any.
    path: String,
}

impl Url {
    /// Parse an absolute URL. Returns `None` unless it has an `http` or
    /// `https` scheme and a non-empty host.
    pub fn parse(s: &str) -> Option<Url> {
        let s = s.trim();
        let (scheme, rest) = s.split_once("://")?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return None;
        }
        // Strip fragment.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() || host.contains(char::is_whitespace) {
            return None;
        }
        Some(Url {
            scheme,
            host: host.to_ascii_lowercase(),
            path: if path.is_empty() {
                "/".to_owned()
            } else {
                path.to_owned()
            },
        })
    }

    /// Build a URL from parts (used by the synthetic-web generator).
    ///
    /// Parts are normalized the same way [`Url::parse`] would: scheme and
    /// host lowercased, path given a leading `/`. Parts that could never
    /// parse are coerced instead of panicking — a non-http(s) scheme
    /// becomes `http`, whitespace is stripped from the host, and an empty
    /// host becomes `invalid.local` (a reserved-TLD marker host).
    pub fn from_parts(scheme: &str, host: &str, path: &str) -> Url {
        let scheme = scheme.to_ascii_lowercase();
        let scheme = if scheme == "https" {
            scheme
        } else {
            "http".to_owned()
        };
        let host: String = host
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase();
        let host = if host.is_empty() {
            "invalid.local".to_owned()
        } else {
            host
        };
        let path = if path.starts_with('/') {
            path.to_owned()
        } else {
            format!("/{path}")
        };
        Url { scheme, host, path }
    }

    /// The scheme (`http` or `https`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The lowercased host — the paper's notion of *site*.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Path plus query, starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The site root page (`scheme://host/`) — the fallback target when a
    /// form page has no backlinks (§3.1).
    pub fn site_root(&self) -> Url {
        Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            path: "/".to_owned(),
        }
    }

    /// Whether two URLs belong to the same site (same host).
    pub fn same_site(&self, other: &Url) -> bool {
        self.host == other.host
    }

    /// True if this URL *is* a site root.
    pub fn is_site_root(&self) -> bool {
        self.path == "/"
    }

    /// Resolve an `href` against this base URL (crawler support).
    ///
    /// Handles absolute URLs, host-relative (`/a/b`), directory-relative
    /// (`a/b`, resolved against the base path's directory) and
    /// protocol-relative (`//host/p`) references. Returns `None` for
    /// non-http(s) schemes (`mailto:`, `javascript:`) and empty hrefs.
    pub fn resolve(&self, href: &str) -> Option<Url> {
        let href = href.trim();
        if href.is_empty() || href.starts_with('#') {
            return None;
        }
        if let Some(rest) = href.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        if href.contains("://") {
            return Url::parse(href);
        }
        if let Some(scheme_end) = href.find(':') {
            // A scheme like mailto:/javascript: (colon before any slash).
            if !href[..scheme_end].contains('/') {
                return None;
            }
        }
        if href.starts_with('/') {
            return Url::parse(&format!("{}://{}{}", self.scheme, self.host, href));
        }
        // Directory-relative: replace everything after the last '/' of the
        // base path (query dropped first).
        let base_path = self.path.split('?').next().unwrap_or("/");
        let dir_end = base_path.rfind('/').unwrap_or(0);
        let dir = &base_path[..=dir_end];
        Url::parse(&format!("{}://{}{}{}", self.scheme, self.host, dir, href))
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = Url::parse("http://example.com/jobs/search?q=1").expect("parses");
        assert_eq!(u.scheme(), "http");
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.path(), "/jobs/search?q=1");
    }

    #[test]
    fn parse_no_path_gets_slash() {
        let u = Url::parse("https://example.com").expect("parses");
        assert_eq!(u.path(), "/");
        assert!(u.is_site_root());
    }

    #[test]
    fn host_lowercased() {
        let u = Url::parse("http://Example.COM/X").expect("parses");
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.path(), "/X"); // path case preserved
    }

    #[test]
    fn fragment_stripped() {
        let u = Url::parse("http://a.com/p#frag").expect("parses");
        assert_eq!(u.path(), "/p");
    }

    #[test]
    fn rejects_non_http() {
        assert!(Url::parse("ftp://a.com/x").is_none());
        assert!(Url::parse("mailto:me@a.com").is_none());
        assert!(Url::parse("not a url").is_none());
        assert!(Url::parse("http:///nohost").is_none());
    }

    #[test]
    fn display_roundtrip() {
        let s = "http://a.com/b?c=d";
        assert_eq!(Url::parse(s).expect("parses").to_string(), s);
    }

    #[test]
    fn site_root_and_same_site() {
        let a = Url::parse("http://a.com/deep/page").expect("parses");
        let b = Url::parse("http://a.com/other").expect("parses");
        let c = Url::parse("http://c.com/other").expect("parses");
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
        assert_eq!(a.site_root().to_string(), "http://a.com/");
    }

    #[test]
    fn resolve_absolute() {
        let base = Url::parse("http://a.com/x/y").expect("parses");
        assert_eq!(
            base.resolve("http://b.com/z")
                .expect("resolves")
                .to_string(),
            "http://b.com/z"
        );
    }

    #[test]
    fn resolve_host_relative() {
        let base = Url::parse("http://a.com/x/y").expect("parses");
        assert_eq!(
            base.resolve("/z").expect("resolves").to_string(),
            "http://a.com/z"
        );
    }

    #[test]
    fn resolve_dir_relative() {
        let base = Url::parse("http://a.com/x/y").expect("parses");
        assert_eq!(
            base.resolve("z.html").expect("resolves").to_string(),
            "http://a.com/x/z.html"
        );
        let root = Url::parse("http://a.com/").expect("parses");
        assert_eq!(
            root.resolve("z").expect("resolves").to_string(),
            "http://a.com/z"
        );
    }

    #[test]
    fn resolve_protocol_relative() {
        let base = Url::parse("https://a.com/p").expect("parses");
        assert_eq!(
            base.resolve("//b.com/q").expect("resolves").to_string(),
            "https://b.com/q"
        );
    }

    #[test]
    fn resolve_rejects_script_and_fragment() {
        let base = Url::parse("http://a.com/p").expect("parses");
        assert!(base.resolve("javascript:void(0)").is_none());
        assert!(base.resolve("mailto:x@y.com").is_none());
        assert!(base.resolve("#top").is_none());
        assert!(base.resolve("").is_none());
    }

    #[test]
    fn resolve_relative_with_base_query() {
        let base = Url::parse("http://a.com/dir/page?x=1").expect("parses");
        assert_eq!(
            base.resolve("next").expect("resolves").to_string(),
            "http://a.com/dir/next"
        );
    }

    #[test]
    fn from_parts() {
        let u = Url::from_parts("http", "site0.example.org", "forms/1.html");
        assert_eq!(u.to_string(), "http://site0.example.org/forms/1.html");
    }
}
