//! # cafc-webgraph
//!
//! The hyperlink substrate for CAFC-CH. The paper obtains link structure
//! from the `link:` facility of search engines (AltaVista/Google/Yahoo) and
//! "crawls backward one step" from each form page; this crate provides the
//! equivalent machinery over an in-memory web graph:
//!
//! * a minimal [`url::Url`] type with site identity and relative resolution;
//! * a [`graph::WebGraph`] arena of pages and directed links with an
//!   incrementally maintained backlink index (the `link:` API substitute);
//! * [`hub`] — construction of *hub clusters*: groups of target form pages
//!   co-cited by a common backlink, after intra-site hub elimination and
//!   with the paper's root-page fallback for pages without backlinks (§3.1),
//!   plus the cardinality filtering and homogeneity statistics of §3.3/§4.2.

#![warn(missing_docs)]

pub mod graph;
pub mod hits;
pub mod hub;
pub mod url;

pub use graph::{PageId, WebGraph};
pub use hits::{hits, HitsOptions, HitsScores};
pub use hub::{hub_clusters, HubCluster, HubClusterOptions, HubStats};
pub use url::Url;
