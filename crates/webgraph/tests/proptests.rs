//! Property-based tests for the web-graph substrate.
//!
//! The always-on half runs on `cafc-check` (offline, dependency-free); the
//! original `proptest` suite is preserved behind the `networked` feature
//! for registry-connected environments:
//! `cargo test -p cafc-webgraph --features networked --test proptests`.

use cafc_check::corpus::{any_text, edge_list, url};
use cafc_check::gen::{pairs, usizes};
use cafc_check::{check, require, CheckConfig};
use cafc_webgraph::hub::{homogeneity, hub_clusters};
use cafc_webgraph::{HubClusterOptions, PageId, Url, WebGraph};

/// URL parse/display round-trips for well-formed URLs.
#[test]
fn url_roundtrip() {
    check!(CheckConfig::new(), url(), |s: &String| {
        let u = Url::parse(s).ok_or_else(|| format!("well-formed URL fails to parse: {s}"))?;
        require!(u.to_string() == *s, "round-trip changed: {s} -> {u}");
        Ok(())
    });
}

/// Url::parse never panics on arbitrary input.
#[test]
fn url_parse_total() {
    check!(CheckConfig::new(), any_text(40), |s: &String| {
        let _ = Url::parse(s);
        Ok(())
    });
}

/// resolve() output, when Some, always parses back and stays http(s).
#[test]
fn resolve_closed_under_parse() {
    let cases = pairs(&url(), &any_text(20));
    check!(CheckConfig::new(), cases, |(base, href)| {
        let base = Url::parse(base).ok_or_else(|| format!("base does not parse: {base}"))?;
        if let Some(u) = base.resolve(href) {
            require!(
                Url::parse(&u.to_string()).is_some(),
                "resolved URL does not reparse: {u}"
            );
            require!(u.scheme() == "http" || u.scheme() == "https", "scheme: {u}");
        }
        Ok(())
    });
}

/// Graph link bookkeeping: in/out degree totals always match, and
/// backlinks are consistent with out-links.
#[test]
fn graph_degree_invariants() {
    check!(CheckConfig::new(), edge_list(12, 12, 40), |edges| {
        let mut g = WebGraph::new();
        let ids: Vec<PageId> = (0..12)
            .map(|i| g.intern(Url::parse(&format!("http://s{i}.com/")).expect("url")))
            .collect();
        for &(a, b) in edges {
            g.add_link(ids[a], ids[b]);
        }
        let out_total: usize = g.page_ids().map(|p| g.out_links(p).len()).sum();
        let in_total: usize = g.page_ids().map(|p| g.in_links(p).len()).sum();
        require!(out_total == in_total, "{out_total} != {in_total}");
        require!(out_total == g.num_links());
        // Every backlink is mirrored by an out-link.
        for p in g.page_ids() {
            for &q in g.in_links(p) {
                require!(g.out_links(q).contains(&p), "unmirrored backlink");
            }
        }
        Ok(())
    });
}

/// Hub clusters only ever contain valid target indices, sorted and
/// deduplicated, and all satisfy the cardinality floor.
#[test]
fn hub_cluster_invariants() {
    let cases = pairs(&edge_list(6, 8, 60), &usizes(1, 3));
    check!(CheckConfig::new(), cases, |(edges, min_card)| {
        let mut g = WebGraph::new();
        let hubs: Vec<PageId> = (0..6)
            .map(|i| g.intern(Url::parse(&format!("http://hub{i}.org/")).expect("url")))
            .collect();
        let targets: Vec<PageId> = (0..8)
            .map(|i| g.intern(Url::parse(&format!("http://site{i}.com/f")).expect("url")))
            .collect();
        for &(h, t) in edges {
            g.add_link(hubs[h], targets[t]);
        }
        let opts = HubClusterOptions {
            min_cardinality: *min_card,
            ..Default::default()
        };
        let (clusters, stats) = hub_clusters(&g, &targets, &opts);
        require!(clusters.len() <= stats.distinct_clusters);
        for c in &clusters {
            require!(c.cardinality() >= *min_card, "cardinality floor violated");
            require!(
                c.members.windows(2).all(|w| w[0] < w[1]),
                "unsorted/dup members: {:?}",
                c.members
            );
            require!(c.members.iter().all(|&m| m < targets.len()));
        }
        // Homogeneity (with arbitrary labels) is within [0, 1].
        let labels: Vec<usize> = (0..targets.len()).map(|i| i % 3).collect();
        if let Some(h) = homogeneity(&clusters, &labels) {
            require!((0.0..=1.0).contains(&h), "homogeneity {h} out of range");
        }
        Ok(())
    });
}

/// The original proptest suite, unchanged — needs the real `proptest`
/// crate, so it only compiles with `--features networked`.
#[cfg(feature = "networked")]
mod networked {
    use cafc_webgraph::hub::{homogeneity, hub_clusters};
    use cafc_webgraph::{HubClusterOptions, PageId, Url, WebGraph};
    use proptest::prelude::*;

    fn arb_host() -> impl Strategy<Value = String> {
        "[a-z]{2,8}\\.(com|org|net)"
    }

    proptest! {
        /// URL parse/display round-trips for well-formed URLs.
        #[test]
        fn url_roundtrip(host in arb_host(), path in "(/[a-z0-9]{1,6}){0,3}") {
            let s = format!("http://{host}{}", if path.is_empty() { "/".into() } else { path.clone() });
            let u = Url::parse(&s).expect("well-formed URL parses");
            prop_assert_eq!(u.to_string(), s);
        }

        /// Url::parse never panics on arbitrary input.
        #[test]
        fn url_parse_total(s in ".{0,120}") {
            let _ = Url::parse(&s);
        }

        /// resolve() output, when Some, always parses back and stays http(s).
        #[test]
        fn resolve_closed_under_parse(host in arb_host(), href in ".{0,60}") {
            let base = Url::parse(&format!("http://{host}/a/b")).expect("base parses");
            if let Some(u) = base.resolve(&href) {
                let reparsed = Url::parse(&u.to_string());
                prop_assert!(reparsed.is_some(), "resolved URL does not reparse: {u}");
                prop_assert!(u.scheme() == "http" || u.scheme() == "https");
            }
        }

        /// Graph link bookkeeping: in/out degree totals always match, and
        /// backlinks are consistent with out-links.
        #[test]
        fn graph_degree_invariants(edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)) {
            let mut g = WebGraph::new();
            let ids: Vec<PageId> = (0..12)
                .map(|i| g.intern(Url::parse(&format!("http://s{i}.com/")).expect("url")))
                .collect();
            for &(a, b) in &edges {
                g.add_link(ids[a as usize], ids[b as usize]);
            }
            let out_total: usize = g.page_ids().map(|p| g.out_links(p).len()).sum();
            let in_total: usize = g.page_ids().map(|p| g.in_links(p).len()).sum();
            prop_assert_eq!(out_total, in_total);
            prop_assert_eq!(out_total, g.num_links());
            // Every backlink is mirrored by an out-link.
            for p in g.page_ids() {
                for &q in g.in_links(p) {
                    prop_assert!(g.out_links(q).contains(&p));
                }
            }
        }

        /// Hub clusters only ever contain valid target indices, sorted and
        /// deduplicated, and all satisfy the cardinality floor.
        #[test]
        fn hub_cluster_invariants(
            edges in proptest::collection::vec((0u32..6, 0u32..8), 0..60),
            min_card in 1usize..4,
        ) {
            let mut g = WebGraph::new();
            let hubs: Vec<PageId> = (0..6)
                .map(|i| g.intern(Url::parse(&format!("http://hub{i}.org/")).expect("url")))
                .collect();
            let targets: Vec<PageId> = (0..8)
                .map(|i| g.intern(Url::parse(&format!("http://site{i}.com/f")).expect("url")))
                .collect();
            for &(h, t) in &edges {
                g.add_link(hubs[h as usize], targets[t as usize]);
            }
            let opts = HubClusterOptions { min_cardinality: min_card, ..Default::default() };
            let (clusters, stats) = hub_clusters(&g, &targets, &opts);
            prop_assert!(clusters.len() <= stats.distinct_clusters);
            for c in &clusters {
                prop_assert!(c.cardinality() >= min_card);
                prop_assert!(c.members.windows(2).all(|w| w[0] < w[1]), "unsorted/dup members");
                prop_assert!(c.members.iter().all(|&m| m < targets.len()));
            }
            // Homogeneity (with arbitrary labels) is within [0, 1].
            let labels: Vec<usize> = (0..targets.len()).map(|i| i % 3).collect();
            if let Some(h) = homogeneity(&clusters, &labels) {
                prop_assert!((0.0..=1.0).contains(&h));
            }
        }
    }
}
