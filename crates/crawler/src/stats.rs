//! Crawl accounting: every fetch attempt, retry, breaker event and
//! abandoned URL is tallied so a faulty crawl can be audited after the
//! fact.
//!
//! The core invariant (checked by [`CrawlStats::is_accounted`]) is that
//! every attempt is classified exactly once:
//!
//! ```text
//! attempts = successes + retries + abandoned
//! ```
//!
//! where a *retry* is a failed attempt the crawler followed up on (either
//! immediately with backoff, or later by parking the page until its host's
//! breaker reopened), and an *abandoned* attempt is a final failure that
//! sent the page to the dead-letter list.

use cafc_webgraph::Url;
use std::fmt;

/// Why a URL ended up on the dead-letter list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbandonReason {
    /// The fetch failed with a permanent error (404/410); retrying is
    /// pointless.
    Permanent,
    /// Every retry was consumed by transient failures.
    RetriesExhausted,
    /// The host's circuit breaker kept rejecting the page until its
    /// parking budget ran out.
    HostCircuitOpen,
}

impl fmt::Display for AbandonReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AbandonReason::Permanent => "permanent error",
            AbandonReason::RetriesExhausted => "retries exhausted",
            AbandonReason::HostCircuitOpen => "host circuit open",
        };
        f.write_str(name)
    }
}

/// One abandoned URL.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The page's URL.
    pub url: Url,
    /// Why it was given up on.
    pub reason: AbandonReason,
    /// Fetch attempts made before giving up (0 when the breaker never let
    /// an attempt through).
    pub attempts: u32,
}

/// Full accounting of a resilient crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// Calls made to the fetcher.
    pub attempts: u64,
    /// Attempts that returned a page.
    pub successes: u64,
    /// Failed attempts that were followed up on (backoff retry or parking).
    pub retries: u64,
    /// Final-failure attempts — the page went to the dead-letter list.
    pub abandoned: u64,
    /// Attempts that failed with a transient error.
    pub transient_failures: u64,
    /// Attempts that failed with a permanent error.
    pub permanent_failures: u64,
    /// Successful responses whose body was cut off.
    pub truncated_pages: u64,
    /// Fetches that were redirected to another page.
    pub redirects_followed: u64,
    /// Circuit-breaker trips across all hosts.
    pub breaker_trips: u64,
    /// Dequeues rejected because the host's breaker was open (no fetch
    /// attempt was made).
    pub breaker_rejections: u64,
    /// Pages parked to wait out an open breaker (counted per parking).
    pub parked: u64,
    /// Simulated wall-clock duration of the crawl in milliseconds.
    pub sim_elapsed_ms: u64,
    /// URLs the crawler gave up on, in abandonment order.
    pub dead_letter: Vec<DeadLetter>,
    /// Hosts whose breaker was still open when the crawl ended, sorted.
    pub abandoned_hosts: Vec<String>,
}

impl CrawlStats {
    /// The accounting identity: every attempt is exactly one of success,
    /// retry, or abandonment.
    pub fn is_accounted(&self) -> bool {
        self.attempts == self.successes + self.retries + self.abandoned
    }

    /// Dead letters with a given reason.
    pub fn abandoned_with(&self, reason: AbandonReason) -> usize {
        self.dead_letter
            .iter()
            .filter(|d| d.reason == reason)
            .count()
    }
}

impl fmt::Display for CrawlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crawl stats (simulated {:.1}s):",
            self.sim_elapsed_ms as f64 / 1000.0
        )?;
        writeln!(
            f,
            "  fetches: {} attempts = {} successes + {} retries + {} abandoned{}",
            self.attempts,
            self.successes,
            self.retries,
            self.abandoned,
            if self.is_accounted() {
                ""
            } else {
                "  (UNBALANCED!)"
            },
        )?;
        writeln!(
            f,
            "  faults:  {} transient, {} permanent, {} truncated bodies, {} redirects",
            self.transient_failures,
            self.permanent_failures,
            self.truncated_pages,
            self.redirects_followed,
        )?;
        writeln!(
            f,
            "  breaker: {} trips, {} rejections, {} parkings, {} host(s) still open",
            self.breaker_trips,
            self.breaker_rejections,
            self.parked,
            self.abandoned_hosts.len(),
        )?;
        write!(f, "  dead letter: {} page(s)", self.dead_letter.len())?;
        for host in &self.abandoned_hosts {
            write!(f, "\n  abandoned host: {host}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity() {
        let mut stats = CrawlStats {
            attempts: 10,
            successes: 7,
            retries: 2,
            ..Default::default()
        };
        assert!(!stats.is_accounted());
        stats.abandoned = 1;
        assert!(stats.is_accounted());
    }

    #[test]
    fn report_mentions_the_key_numbers() {
        let stats = CrawlStats {
            attempts: 12,
            successes: 9,
            retries: 2,
            abandoned: 1,
            breaker_trips: 1,
            abandoned_hosts: vec!["dead.com".into()],
            dead_letter: vec![DeadLetter {
                url: Url::parse("http://dead.com/f").expect("url"),
                reason: AbandonReason::HostCircuitOpen,
                attempts: 3,
            }],
            ..Default::default()
        };
        let report = stats.to_string();
        assert!(report.contains("12 attempts"), "{report}");
        assert!(report.contains("dead.com"), "{report}");
        assert!(!report.contains("UNBALANCED"), "{report}");
        assert_eq!(stats.abandoned_with(AbandonReason::HostCircuitOpen), 1);
        assert_eq!(stats.abandoned_with(AbandonReason::Permanent), 0);
    }
}
